//! Workspace-level umbrella crate: re-exports the public API of the Piccolo reproduction
//! for the examples and integration tests at the repository root.
//!
//! The workspace crates are available directly (`piccolo`, `piccolo_graph`,
//! `piccolo_algo`, `piccolo_io`, ...); see `examples/external_dataset.rs` for the
//! real-graph ingestion path end to end.
//!
//! # Example
//!
//! ```
//! use piccolo_repro::{Simulation, SystemKind};
//! use piccolo_algo::Bfs;
//! use piccolo_graph::generate;
//!
//! let graph = generate::kronecker(9, 4, 1);
//! let report = Simulation::new(SystemKind::Piccolo).run(&graph, &Bfs::new(0));
//! assert!(report.run.accel_cycles > 0);
//! ```

#![forbid(unsafe_code)]
pub use piccolo::{Simulation, SystemKind};
