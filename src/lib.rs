//! Workspace-level umbrella crate: re-exports the public API of the Piccolo reproduction
//! for the examples and integration tests at the repository root.
pub use piccolo::{Simulation, SystemKind};
