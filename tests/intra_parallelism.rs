//! Intra-run parallelism determinism (ISSUE PR 6 acceptance).
//!
//! The accelerator pipeline may split the scatter and apply phases of one simulation
//! across worker threads, but every observable output — functional values, simulated
//! cycle counts, memory statistics, per-phase breakdown — must be byte-identical for
//! any worker count, on both traversal orders. These tests pin that contract by
//! comparing the full `Debug` rendering of `RunResult` across intra-thread counts
//! {1, 2, 4, 8}.

use piccolo_accel::{
    resolve_tiling, set_intra_jobs, simulate, simulate_edge_centric, RunResult, SimConfig,
    SystemKind,
};
use piccolo_algo::{Bfs, PageRank, Sssp, VertexProgram};
use piccolo_graph::{generate, Csr};
use std::sync::Mutex;

/// Serializes tests that touch the process-global intra-jobs knob so concurrently
/// running tests cannot stomp each other's worker count.
static KNOB: Mutex<()> = Mutex::new(());

fn knob_lock() -> std::sync::MutexGuard<'static, ()> {
    KNOB.lock().unwrap_or_else(|e| e.into_inner())
}

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn assert_identical_across_thread_counts<P>(
    label: &str,
    graph: &Csr,
    program: &P,
    cfg: &SimConfig,
    run: impl Fn(&Csr, &P, &SimConfig) -> RunResult,
) where
    P: VertexProgram + Sync,
    P::Value: Send + Sync,
{
    let _guard = knob_lock();
    let mut baseline: Option<String> = None;
    for jobs in THREAD_COUNTS {
        set_intra_jobs(jobs);
        let result = run(graph, program, cfg);
        assert!(
            result.phases.scatter_mem_clocks > 0,
            "{label}: scatter phase must account for memory clocks at {jobs} jobs"
        );
        assert!(
            result.phases.total() >= result.phases.scatter_mem_clocks,
            "{label}: phase total must cover all phases at {jobs} jobs"
        );
        let rendered = format!("{result:?}");
        match &baseline {
            None => baseline = Some(rendered),
            Some(expected) => assert_eq!(
                expected, &rendered,
                "{label}: RunResult diverged between 1 and {jobs} intra jobs"
            ),
        }
    }
    set_intra_jobs(1);
}

#[test]
fn vertex_centric_results_identical_across_intra_thread_counts() {
    let g = generate::kronecker(13, 6, 11);
    let cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(4);
    assert!(
        resolve_tiling(&cfg, g.num_vertices()).num_tiles() > 1,
        "test graph must span multiple tiles or the parallel path is never exercised"
    );
    assert_identical_across_thread_counts("vc/pagerank", &g, &PageRank::default(), &cfg, simulate);
    assert_identical_across_thread_counts("vc/bfs", &g, &Bfs::new(0), &cfg, simulate);
}

#[test]
fn vertex_centric_sparse_frontier_identical_across_intra_thread_counts() {
    // SSSP keeps the frontier sparse for many iterations, exercising the sparse
    // frontier-read path and partially-active tiles under parallel scatter.
    let g = generate::kronecker(12, 5, 3);
    let cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(8);
    assert_identical_across_thread_counts("vc/sssp", &g, &Sssp::new(0), &cfg, simulate);
}

#[test]
fn edge_centric_results_identical_across_intra_thread_counts() {
    let g = generate::kronecker(12, 6, 4);
    let cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(3);
    assert_identical_across_thread_counts(
        "ec/pagerank",
        &g,
        &PageRank::default(),
        &cfg,
        simulate_edge_centric,
    );
    assert_identical_across_thread_counts("ec/bfs", &g, &Bfs::new(0), &cfg, simulate_edge_centric);
}

#[test]
fn conventional_systems_identical_across_intra_thread_counts() {
    // Baseline (non-fine-grained) systems share the same pipeline interior; pin one.
    let g = generate::kronecker(12, 6, 9);
    let cfg = SimConfig::for_system(SystemKind::GraphDynsCache, 12).with_max_iterations(3);
    assert_identical_across_thread_counts(
        "conv/pagerank",
        &g,
        &PageRank::default(),
        &cfg,
        simulate,
    );
}

#[test]
fn zero_requests_available_parallelism() {
    // `set_intra_jobs(0)` resolves to the machine's available parallelism and still
    // produces identical results.
    let _guard = knob_lock();
    let g = generate::kronecker(11, 5, 2);
    let cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(3);
    set_intra_jobs(1);
    let serial = format!("{:?}", simulate(&g, &PageRank::default(), &cfg));
    set_intra_jobs(0);
    assert!(piccolo_accel::intra_jobs() >= 1);
    let auto = format!("{:?}", simulate(&g, &PageRank::default(), &cfg));
    set_intra_jobs(1);
    assert_eq!(serial, auto);
}
