//! Workspace-level integration tests for the external-dataset path: a SNAP-style file
//! on disk flows through the `piccolo-io` snapshot cache, the `piccolo-graph` external
//! registry, and the campaign scheduler, with deterministic output for any worker
//! count and a guaranteed snapshot-cache hit on the second load.

use piccolo::experiments::{external_spec, Scale};
use piccolo::report::results_json;
use piccolo::sweep::SweepRunner;
use piccolo_graph::{external, generate};
use piccolo_io::{load_graph_with, SnapshotStatus};
use std::io::Write as _;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("piccolo-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn external_file_runs_the_campaign_deterministically_and_hits_the_cache() {
    let dir = scratch("external");
    let edge_file = dir.join("e2e.tsv");
    let cache_dir = dir.join("snaps");

    // A deterministic "real" graph on disk, SNAP-style with header comments.
    let graph = generate::kronecker(11, 6, 77);
    {
        let mut f = std::fs::File::create(&edge_file).unwrap();
        writeln!(
            f,
            "# Nodes: {} Edges: {}",
            graph.num_vertices(),
            graph.num_edges()
        )
        .unwrap();
        for e in graph.iter_edges() {
            writeln!(f, "{}\t{}\t{}", e.src, e.dst, e.weight).unwrap();
        }
    }

    // First load parses and snapshots; second load must hit the cache and agree.
    let first = load_graph_with(&edge_file, None, &cache_dir).unwrap();
    assert_eq!(first.status, SnapshotStatus::Miss);
    assert_eq!(first.graph, graph, "text round trip is the identity");
    let second = load_graph_with(&edge_file, None, &cache_dir).unwrap();
    assert_eq!(second.status, SnapshotStatus::Hit);
    assert_eq!(second.graph, graph, "snapshot round trip is the identity");

    // Registered as an external dataset, the graph runs PR+BFS on both engines via
    // the campaign — with byte-identical results.json for any worker count.
    let ds = external::register("e2e-external", second.graph);
    let scale = Scale {
        scale_shift: 13,
        seed: 7,
        max_iterations: 2,
    };
    let specs = [external_spec(scale, &[ds])];
    let sequential = SweepRunner::sequential().run_campaign(&specs);
    let doc = results_json(scale, &sequential.figures);
    for jobs in [2, 8] {
        let parallel = SweepRunner::new(jobs).run_campaign(&specs);
        assert_eq!(
            results_json(scale, &parallel.figures),
            doc,
            "jobs={jobs} must be byte-identical to jobs=1"
        );
    }
    // The external graph was fetched once and evicted when its last consumer finished.
    assert_eq!(sequential.stats.graphs_built, 1);
    assert_eq!(sequential.stats.graphs_evicted, 1);
    // 2 algorithms x 2 engines x 2 systems.
    assert_eq!(sequential.figures[0].points.len(), 8);
    assert!(sequential.figures[0]
        .points
        .iter()
        .all(|p| p.label.contains("e2e-external") && p.value > 0.0));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graphtool_equivalent_conversion_matches_the_cache_snapshot() {
    // `graphtool convert` and the snapshot cache must produce interchangeable .pcsr
    // bytes for the same source: both route through write_pcsr, whose output is
    // deterministic per graph.
    let dir = scratch("convert");
    let edge_file = dir.join("conv.txt");
    let graph = generate::uniform(500, 2500, 13);
    {
        let mut f = std::fs::File::create(&edge_file).unwrap();
        for e in graph.iter_edges() {
            writeln!(f, "{} {} {}", e.src, e.dst, e.weight).unwrap();
        }
    }
    // What graphtool convert does:
    let converted = dir.join("conv.pcsr");
    let parsed = piccolo_io::load_text(&edge_file, piccolo_io::TextFormat::EdgeList)
        .unwrap()
        .to_csr();
    piccolo_io::save_pcsr(&converted, &parsed).unwrap();
    // What the snapshot cache writes:
    let cached = load_graph_with(&edge_file, None, &dir.join("snaps")).unwrap();
    let snapshot = cached.snapshot.unwrap();
    assert_eq!(
        std::fs::read(&converted).unwrap(),
        std::fs::read(&snapshot).unwrap(),
        "deterministic serialization: converted file == cache snapshot"
    );
    assert_eq!(parsed, graph);

    let _ = std::fs::remove_dir_all(&dir);
}
