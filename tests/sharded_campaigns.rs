//! Workspace-level determinism tests for sharded and resumable campaigns: the merged
//! output of any shard count, and the final output of any resume split (including
//! resumes over corrupted journals), must be **byte-identical** to a single-process
//! `--jobs 1` run — the invariant the sharded CI repro matrix enforces on the full
//! quick campaign, pinned here at test scale with property-style (Rng64-seeded) loops.

use piccolo::campaign::{merge_shards, Shard};
use piccolo::experiments::{self, Scale};
use piccolo::report::results_json;
use piccolo::sweep::{ExperimentSpec, SweepRunner};
use piccolo_algo::Algorithm;
use piccolo_graph::rng::Rng64;
use piccolo_graph::Dataset;
use std::path::PathBuf;

/// A small multi-figure campaign: sim grids that share graphs across figures plus a
/// measure-only figure, so shard projections hit every unit kind.
fn specs_for(scale: Scale) -> Vec<ExperimentSpec> {
    let ds = [Dataset::Sinaweibo];
    let algs = [Algorithm::Bfs];
    vec![
        experiments::fig10_spec(scale, &ds, &algs),
        experiments::fig12_spec(scale, &ds, &algs),
        experiments::table2_spec(scale),
    ]
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("piccolo-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn merged_shards_match_the_jobs1_run_for_every_shard_count() {
    // Property-style loop: random scales (seed/iteration cap) from a deterministic
    // Rng64 stream, and for each, merge(shard 0/N .. N-1/N) must be byte-for-byte the
    // sequential single-process run, for N in {1, 2, 3, 5} (5 > the smallest figure's
    // unit count, so some figures contribute nothing to some shards).
    let mut rng = Rng64::seed_from_u64(0x5eed_5a4d);
    for trial in 0..3 {
        let scale = Scale {
            scale_shift: 15,
            seed: rng.next_u64() % 64,
            max_iterations: 1 + (rng.next_u64() % 2) as u32,
        };
        let specs = specs_for(scale);
        let reference = SweepRunner::sequential().run_campaign(&specs);
        let expected = results_json(scale, &reference.figures);
        for count in [1usize, 2, 3, 5] {
            let mut docs = Vec::new();
            let mut executed = 0;
            for index in 0..count {
                let jobs = 1 + (rng.next_u64() % 3) as usize; // worker count never matters
                let run = SweepRunner::new(jobs).run_campaign_shard(
                    scale,
                    &specs,
                    Shard { index, count },
                );
                executed += run.num_units();
                // Each shard builds only what its own units need and evicts all of it.
                assert_eq!(run.stats.graphs_evicted, run.stats.graphs_built);
                docs.push(run.to_json());
            }
            assert_eq!(
                executed,
                reference.stats.sim_runs + reference.stats.measure_units,
                "trial {trial}: shards 0..{count} partition the unit grid"
            );
            let merged = merge_shards(scale, &specs, &docs)
                .unwrap_or_else(|e| panic!("trial {trial}, {count} shards: {e}"));
            assert_eq!(
                results_json(scale, &merged),
                expected,
                "trial {trial}: merge of {count} shards must be byte-identical"
            );
        }
    }
}

#[test]
fn resume_finishes_a_truncated_journal_with_identical_bytes() {
    let dir = scratch("resume");
    let scale = Scale {
        scale_shift: 15,
        seed: 11,
        max_iterations: 2,
    };
    let specs = specs_for(scale);
    let runner = SweepRunner::new(2);

    // A full journaled run is the reference: one line per unit.
    let journal = dir.join("journal.jsonl");
    let full = runner
        .run_campaign_resumed(scale, &specs, &journal)
        .unwrap();
    let expected = results_json(scale, &full.run.figures);
    let total = full.executed;
    let lines: Vec<String> = std::fs::read_to_string(&journal)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(
        lines.len(),
        total + full.run.stats.graphs_built,
        "one journal line per completed unit or graph build"
    );

    // Killing the campaign after any prefix of completed lines (here: several Rng64-
    // chosen truncation points) must leave a journal that resumes to the same bytes.
    // A prefix holds a mix of unit and graph-build lines; only the units replay.
    let mut rng = Rng64::seed_from_u64(42);
    for trial in 0..3 {
        let keep = (rng.next_u64() as usize) % lines.len();
        let kept_units = lines[..keep]
            .iter()
            .filter(|l| !l.contains("\"built\":"))
            .count();
        let part = dir.join(format!("journal-trunc-{trial}.jsonl"));
        std::fs::write(&part, format!("{}\n", lines[..keep].join("\n"))).unwrap();
        let resumed = runner.run_campaign_resumed(scale, &specs, &part).unwrap();
        assert_eq!(resumed.replayed, kept_units, "trial {trial} (keep {keep})");
        assert_eq!(resumed.executed, total - kept_units);
        assert_eq!(resumed.corrupt, 0);
        assert_eq!(
            results_json(scale, &resumed.run.figures),
            expected,
            "trial {trial}: resume after {keep}/{total} units must be byte-identical"
        );
        // The journal is now complete again: a further resume replays everything.
        let again = runner.run_campaign_resumed(scale, &specs, &part).unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.replayed, total);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_journal_entries_are_ignored_and_rerun() {
    let dir = scratch("corrupt");
    let scale = Scale {
        scale_shift: 15,
        seed: 29,
        max_iterations: 2,
    };
    let specs = specs_for(scale);
    let runner = SweepRunner::new(2);

    let journal = dir.join("journal.jsonl");
    let full = runner
        .run_campaign_resumed(scale, &specs, &journal)
        .unwrap();
    let expected = results_json(scale, &full.run.figures);
    let total = full.executed;
    let lines: Vec<String> = std::fs::read_to_string(&journal)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();

    // Flip one checksum nibble in a few Rng64-chosen *unit* lines: each corrupted
    // entry must be ignored (never a wrong result), its unit re-run, and the output
    // unchanged. (Build lines are exercised separately below — they carry no replay
    // obligation, so corrupting one must not re-run anything.)
    let mut rng = Rng64::seed_from_u64(7);
    for trial in 0..3 {
        let n_corrupt = 1 + (rng.next_u64() as usize) % 3;
        let mut damaged = lines.clone();
        let mut hit = std::collections::BTreeSet::new();
        while hit.len() < n_corrupt {
            let i = (rng.next_u64() as usize) % damaged.len();
            if !damaged[i].contains("\"built\":") {
                hit.insert(i);
            }
        }
        for &i in &hit {
            let mut bytes = damaged[i].clone().into_bytes();
            bytes[0] = if bytes[0] == b'0' { b'1' } else { b'0' };
            damaged[i] = String::from_utf8(bytes).unwrap();
        }
        let path = dir.join(format!("journal-corrupt-{trial}.jsonl"));
        std::fs::write(&path, format!("{}\n", damaged.join("\n"))).unwrap();
        let resumed = runner.run_campaign_resumed(scale, &specs, &path).unwrap();
        assert_eq!(resumed.corrupt, n_corrupt, "trial {trial}");
        assert_eq!(resumed.executed, n_corrupt, "corrupt entries are re-run");
        assert_eq!(resumed.replayed, total - n_corrupt);
        assert_eq!(
            results_json(scale, &resumed.run.figures),
            expected,
            "trial {trial}: {n_corrupt} corrupt line(s) must not change a byte"
        );
    }

    // A corrupted graph-*build* line costs nothing: it is dropped as corrupt, but no
    // unit re-runs and every graph build is still skipped via the surviving units.
    if let Some(build_idx) = lines.iter().position(|l| l.contains("\"built\":")) {
        let mut damaged = lines.clone();
        let mut bytes = damaged[build_idx].clone().into_bytes();
        bytes[0] = if bytes[0] == b'0' { b'1' } else { b'0' };
        damaged[build_idx] = String::from_utf8(bytes).unwrap();
        let path = dir.join("journal-corrupt-build.jsonl");
        std::fs::write(&path, format!("{}\n", damaged.join("\n"))).unwrap();
        let resumed = runner.run_campaign_resumed(scale, &specs, &path).unwrap();
        assert_eq!(resumed.corrupt, 1);
        assert_eq!(resumed.executed, 0, "no unit re-runs for a lost build line");
        assert_eq!(resumed.replayed, total);
        assert_eq!(results_json(scale, &resumed.run.figures), expected);
    }

    // Foreign garbage appended to a journal is also just skipped.
    let mut with_garbage = lines;
    with_garbage.push("0123456789abcdef not-a-real-entry".to_string());
    with_garbage.push("trailing noise without a checksum".to_string());
    let path = dir.join("journal-garbage.jsonl");
    std::fs::write(&path, format!("{}\n", with_garbage.join("\n"))).unwrap();
    let resumed = runner.run_campaign_resumed(scale, &specs, &path).unwrap();
    assert_eq!(resumed.replayed, total);
    assert_eq!(resumed.executed, 0);
    assert_eq!(results_json(scale, &resumed.run.figures), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_files_from_a_different_plan_never_merge() {
    // The guard CI relies on: shard files can only merge into the exact plan (figure
    // set + scale + code revision) that produced them.
    let scale_a = Scale {
        scale_shift: 15,
        seed: 3,
        max_iterations: 2,
    };
    let scale_b = Scale {
        scale_shift: 15,
        seed: 4,
        max_iterations: 2,
    };
    let specs_full = specs_for(scale_a);
    let docs: Vec<String> = (0..2)
        .map(|index| {
            SweepRunner::sequential()
                .run_campaign_shard(scale_a, &specs_full, Shard { index, count: 2 })
                .to_json()
        })
        .collect();
    // Different scale: rejected. Different figure subset: rejected.
    assert!(merge_shards(scale_b, &specs_full, &docs)
        .unwrap_err()
        .contains("plan hash"));
    assert!(merge_shards(scale_a, &specs_full[..2], &docs)
        .unwrap_err()
        .contains("plan hash"));
    // The matching plan still merges fine.
    assert!(merge_shards(scale_a, &specs_full, &docs).is_ok());
}

#[test]
fn shard_and_resume_compose_to_identical_bytes() {
    // `--shard I/N --resume JOURNAL` composes: journal entries carry global unit
    // indices, so a shard projection replays exactly its own journaled slots and
    // executes only the rest. Property-style: truncate a full run's journal at
    // Rng64-chosen points, then finish the campaign as N resumed shards *sharing*
    // that journal — the merge must be byte-identical to the sequential run, and a
    // second pass over the (now complete) journal must execute nothing.
    let dir = scratch("shard-resume");
    let scale = Scale {
        scale_shift: 15,
        seed: 17,
        max_iterations: 2,
    };
    let specs = specs_for(scale);
    let runner = SweepRunner::new(2);

    let journal = dir.join("journal.jsonl");
    let full = runner
        .run_campaign_resumed(scale, &specs, &journal)
        .unwrap();
    let expected = results_json(scale, &full.run.figures);
    let total = full.executed;
    let lines: Vec<String> = std::fs::read_to_string(&journal)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();

    let mut rng = Rng64::seed_from_u64(0xc0de);
    for trial in 0..3 {
        let count = 2 + (rng.next_u64() as usize) % 2; // 2 or 3 shards
        let keep = (rng.next_u64() as usize) % lines.len();
        let kept_units = lines[..keep]
            .iter()
            .filter(|l| !l.contains("\"built\":"))
            .count();
        let part = dir.join(format!("journal-{trial}.jsonl"));
        std::fs::write(&part, format!("{}\n", lines[..keep].join("\n"))).unwrap();

        let mut docs = Vec::new();
        let mut replayed = 0;
        let mut executed = 0;
        for index in 0..count {
            let shard = Shard { index, count };
            let resumed = runner
                .run_campaign_shard_resumed(scale, &specs, shard, &part)
                .unwrap();
            assert_eq!(resumed.corrupt, 0, "trial {trial} shard {shard}");
            replayed += resumed.replayed;
            executed += resumed.executed;
            docs.push(resumed.run.to_json());
        }
        // Shards partition the grid, so their replayed/executed counts partition
        // the journal's units and the remainder. (Later shards never replay an
        // earlier shard's appends: those units belong to other projections.)
        assert_eq!(replayed, kept_units, "trial {trial}");
        assert_eq!(executed, total - kept_units, "trial {trial}");
        let merged = merge_shards(scale, &specs, &docs).unwrap();
        assert_eq!(
            results_json(scale, &merged),
            expected,
            "trial {trial}: {count} resumed shards over a journal cut at {keep} \
             must merge to the sequential bytes"
        );

        // The shared journal is complete now: every shard replays, none executes.
        for index in 0..count {
            let again = runner
                .run_campaign_shard_resumed(scale, &specs, Shard { index, count }, &part)
                .unwrap();
            assert_eq!(again.executed, 0, "trial {trial}: complete journal");
            assert_eq!(again.run.stats.graphs_built, 0);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
