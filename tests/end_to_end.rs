//! Workspace-level integration tests spanning every crate: graphs -> algorithms ->
//! caches/MSHR -> DRAM -> end-to-end reports.

use piccolo::{Simulation, SystemKind};
use piccolo_algo::{reference, run_vcm, Bfs, PageRank, Sssp};
use piccolo_graph::{generate, Dataset};

/// A high-degree source, so traversal actually reaches a large fraction of the graph
/// (the paper likewise picks sources inside the giant component).
fn busiest_vertex(graph: &piccolo_graph::Csr) -> u32 {
    (0..graph.num_vertices())
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap_or(0)
}

#[test]
fn piccolo_outperforms_baseline_on_sparse_workload() {
    let graph = generate::kronecker(13, 8, 21);
    let src = busiest_vertex(&graph);
    let base = Simulation::new(SystemKind::GraphDynsCache)
        .configure(|c| c.with_max_iterations(40))
        .run(&graph, &Sssp::new(src));
    let pic = Simulation::new(SystemKind::Piccolo)
        .configure(|c| c.with_max_iterations(40))
        .run(&graph, &Sssp::new(src));
    assert!(
        pic.speedup_over(&base) > 1.0,
        "Piccolo speedup {:.2} should exceed 1.0",
        pic.speedup_over(&base)
    );
    assert!(
        pic.run.accel_cycles < base.run.accel_cycles,
        "Piccolo accel_cycles {} must beat GraphDyns (Cache) {}",
        pic.run.accel_cycles,
        base.run.accel_cycles
    );
    assert!(pic.run.mem_stats.offchip_bytes < base.run.mem_stats.offchip_bytes);
    assert!(pic.energy_ratio_over(&base) < 1.0);
}

#[test]
fn social_network_pr_cc_workload_is_pinned() {
    // Regression pin for the `social_network_analytics` example's PR+CC workload
    // (ROADMAP open item). The investigated 0.88x had two components: (1) the `Best`
    // tiling policy used a fixed 2x factor for Piccolo, which is the *sparse*-frontier
    // sweet spot — the dense-frontier PR/CC pair wants tiles that just fit, and `Best`
    // now searches the candidate factors and keeps the fastest, recovering ~3%; (2) at
    // scale shift 13 the on-chip cache clamps to its 8 KiB minimum, so the
    // working-set-to-cache ratio is 4-8x instead of the paper's ~40x — a regime where
    // dense updates give a conventional 64 B cache full spatial locality, a scale
    // artifact rather than a model error. Result: 0.90x, pinned here.
    use piccolo::{SimConfig, TilingPolicy};
    use piccolo_algo::ConnectedComponents;

    let graph = Dataset::Sinaweibo.build(13, 7);
    let total_for = |cfg: SimConfig| {
        let sim = Simulation::with_config(cfg.with_max_iterations(5));
        sim.run(&graph, &PageRank::default()).run.accel_cycles
            + sim
                .run(&graph, &ConnectedComponents::new())
                .run
                .accel_cycles
    };
    let base = total_for(SimConfig::for_system(SystemKind::GraphDynsCache, 13));
    let pic_best = total_for(SimConfig::for_system(SystemKind::Piccolo, 13));
    let ratio = base as f64 / pic_best as f64;
    assert!(
        ratio > 0.89,
        "PR+CC Piccolo-vs-cache-baseline regressed to {ratio:.3}x (was 0.90x)"
    );

    // `Best` must never lose to any fixed candidate factor on this workload — that is
    // the definition of the search (the old fixed factor 2 violated it by ~3%).
    for factor in piccolo_accel::BEST_TILING_FACTORS {
        let fixed = total_for(
            SimConfig::for_system(SystemKind::Piccolo, 13)
                .with_tiling(TilingPolicy::Scaled(factor)),
        );
        assert!(
            pic_best <= fixed,
            "Best tiling ({pic_best} cycles) lost to fixed factor {factor} ({fixed} cycles)"
        );
    }
}

#[test]
fn all_systems_agree_on_functional_results() {
    // The simulator executes the algorithm functionally, so its iteration count matches
    // the plain functional driver regardless of the simulated system.
    let graph = Dataset::UciUni.build(14, 5);
    let expected = run_vcm(&graph, &Bfs::new(0), 40);
    for system in SystemKind::ALL {
        let r = Simulation::new(system)
            .configure(|c| c.with_max_iterations(40))
            .run(&graph, &Bfs::new(0));
        assert_eq!(r.run.iterations, expected.iterations, "{}", system.name());
        assert_eq!(
            r.run.edges_processed,
            expected.total_edges_traversed(),
            "{}",
            system.name()
        );
    }
}

#[test]
fn dataset_standins_run_pagerank_and_match_reference_shape() {
    let graph = Dataset::Sinaweibo.build(14, 9);
    // epsilon = 0 keeps every vertex active so both sides run exactly 15 iterations.
    let pr = PageRank {
        damping: 0.85,
        epsilon: 0.0,
    };
    let vcm = run_vcm(&graph, &pr, 15);
    let ranks = pr.ranks(&graph, vcm.props.as_slice());
    let reference = reference::pagerank(&graph, 0.85, 15);
    for v in 0..graph.num_vertices() as usize {
        assert!((ranks[v] - reference[v]).abs() < 1e-6);
    }
}

#[test]
fn energy_and_area_reports_are_consistent() {
    let a = piccolo::area_report();
    assert!(a.piccolo_accelerator_mm2 > a.baseline_accelerator_mm2);
    let graph = generate::uniform(4000, 20_000, 3);
    let rep = Simulation::new(SystemKind::Piccolo)
        .configure(|c| c.with_max_iterations(10))
        .run(&graph, &Bfs::new(0));
    let e = rep.energy;
    assert!(e.total_nj() > 0.0);
    assert!(e.dram_io_nj >= 0.0 && e.others_nj > 0.0);
}
