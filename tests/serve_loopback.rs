//! Loopback networked campaigns: a `piccolo-serve` coordinator plus in-process
//! workers over 127.0.0.1 must produce `results.json` **byte-identical** to a
//! local sequential run — through worker death mid-lease, duplicate result
//! delivery, and a coordinator restart that resumes from its streamed journal
//! without re-executing a single completed unit. This is the test-scale pin of
//! the CI `serve-smoke` job (which exercises the same story through the real
//! binaries and `kill -9`).

use piccolo::campaign::PlannedCampaign;
use piccolo::json::Json;
use piccolo::report::results_json;
use piccolo::sweep::SweepRunner;
use piccolo_bench::cli::{build_campaign, CommonOpts, FlagSet};
use piccolo_serve::protocol;
use piccolo_serve::{run_worker, Coordinator, CoordinatorConfig, WorkerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

/// The campaign options every side (reference run, coordinator, workers)
/// derives its plan from: two measure-only figures at quick scale — 13 grid
/// units, no graph builds, so the whole loopback dance stays fast.
fn campaign_opts() -> CommonOpts {
    let mut opts = CommonOpts::new(FlagSet::all());
    opts.figures = vec!["fig09".to_string(), "table2".to_string()];
    opts.quick = true;
    opts
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("piccolo-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("malformed HTTP response: {response:?}"));
    (head.to_string(), body.to_string())
}

/// A hand-rolled worker that dies mid-lease: completes the handshake, takes a
/// lease, streams its **first** unit's result twice (the duplicate-delivery
/// case), then drops the socket while still holding the rest of the lease (the
/// killed-mid-unit case). Returns the abandoned unit count.
fn saboteur_worker(addr: SocketAddr, campaign: &PlannedCampaign) -> usize {
    let mut stream = TcpStream::connect(addr).unwrap();
    protocol::send_msg(&mut stream, &protocol::hello_msg("saboteur")).unwrap();
    let job = protocol::recv_msg(&mut stream).unwrap().unwrap();
    let (kind, _) = protocol::parse_msg(&job).unwrap();
    assert_eq!(kind, "job");
    protocol::send_msg(&mut stream, &protocol::ready_msg(&campaign.plan_hex())).unwrap();
    protocol::send_msg(&mut stream, &protocol::next_msg()).unwrap();
    let reply = protocol::recv_msg(&mut stream).unwrap().unwrap();
    let (kind, doc) = protocol::parse_msg(&reply).unwrap();
    assert_eq!(kind, "lease", "a fresh grid must lease immediately");
    let units = protocol::lease_units(&doc).unwrap();
    assert!(
        units.len() > 1,
        "need a multi-unit lease to abandon part of it"
    );

    // Execute only the first leased unit, locally and sequentially.
    let first = units[0];
    let result = std::sync::Mutex::new(String::new());
    campaign
        .execute_units(1, &[first], &|_, result_json| {
            result.lock().unwrap().push_str(result_json);
        })
        .unwrap();
    let result = result.into_inner().unwrap();
    // Deliver it twice: at-least-once delivery means the second, byte-identical
    // copy must be discarded by slot, not double-counted.
    protocol::send_msg(&mut stream, &protocol::result_msg(first, &result)).unwrap();
    protocol::send_msg(&mut stream, &protocol::result_msg(first, &result)).unwrap();
    // The socket drops here with the remaining lease units unfinished — the
    // coordinator must release and re-dispatch them.
    units.len() - 1
}

#[test]
fn networked_campaign_survives_worker_death_with_identical_bytes() {
    let dir = scratch("loopback");

    // The reference: the same plan, run locally and sequentially.
    let opts = campaign_opts();
    let setup = build_campaign(&opts).unwrap();
    let reference = SweepRunner::sequential().run_campaign(&setup.specs);
    let expected = results_json(setup.scale, &reference.figures);
    let num_units = reference.stats.sim_runs + reference.stats.measure_units;

    let setup = build_campaign(&opts).unwrap();
    let coordinator = Coordinator::start(
        PlannedCampaign::new(setup.scale, setup.specs),
        &opts.to_wire_json(),
        CoordinatorConfig {
            lease_size: 2,
            journal: dir.join("serve.journal"),
            results_out: dir.join("results.json"),
            bench_out: Some(dir.join("BENCH.json")),
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let addr = coordinator.addr();

    // Before any worker: HTTP status serves, results do not (503).
    let (head, body) = http_get(addr, "/status");
    assert!(head.starts_with("HTTP/1.1 200"), "status head: {head}");
    assert!(body.contains("\"done\":false") && body.contains("\"completed\":0"));
    let (head, _) = http_get(addr, "/results.json");
    assert!(
        head.starts_with("HTTP/1.1 503"),
        "incomplete campaign: {head}"
    );
    let (head, _) = http_get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"));

    // A worker dies mid-lease first (deterministically, before anyone else can
    // drain the grid), then two healthy workers finish the campaign.
    let local_setup = build_campaign(&opts).unwrap();
    let local_campaign = PlannedCampaign::new(local_setup.scale, local_setup.specs);
    let abandoned = saboteur_worker(addr, &local_campaign);
    assert!(abandoned >= 1);

    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                run_worker(
                    &addr,
                    &WorkerConfig {
                        jobs: 1 + i,
                        name: format!("loopback-{i}"),
                        ..WorkerConfig::default()
                    },
                )
            })
        })
        .collect();

    let outcome = coordinator.wait_complete().unwrap();
    assert_eq!(
        outcome.results_doc, expected,
        "networked == sequential bytes"
    );
    assert_eq!(outcome.replayed, 0);
    assert_eq!(outcome.executed, num_units);
    assert_eq!(outcome.duplicates, 1, "the saboteur's double delivery");
    assert_eq!(outcome.workers, 3, "saboteur + two healthy workers");

    let mut healthy_units = 0;
    for worker in workers {
        let summary = worker.join().unwrap().unwrap();
        healthy_units += summary.units;
    }
    // The healthy workers executed everything except the saboteur's one unit —
    // including the lease units it abandoned mid-flight.
    assert_eq!(healthy_units, num_units - 1);

    // The served document is the written document is the reference document.
    let (head, body) = http_get(addr, "/results.json");
    assert!(head.starts_with("HTTP/1.1 200"));
    assert_eq!(body, expected);
    assert_eq!(
        std::fs::read_to_string(dir.join("results.json")).unwrap(),
        expected
    );
    let (_, status) = http_get(addr, "/status");
    assert!(status.contains("\"done\":true"));
    let (head, bench) = http_get(addr, "/BENCH.json");
    assert!(head.starts_with("HTTP/1.1 200"));
    assert!(bench.contains("\"schema\":\"piccolo-bench/v1\""));
    coordinator.shutdown();

    // Restart: the streamed journal alone must finalize the campaign — zero
    // units re-executed — and serve/write the same bytes.
    let setup = build_campaign(&opts).unwrap();
    let restarted = Coordinator::start(
        PlannedCampaign::new(setup.scale, setup.specs),
        &opts.to_wire_json(),
        CoordinatorConfig {
            journal: dir.join("serve.journal"),
            results_out: dir.join("results-restart.json"),
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let outcome = restarted.wait_complete().unwrap();
    assert_eq!(
        outcome.replayed, num_units,
        "everything replays from journal"
    );
    assert_eq!(outcome.executed, 0, "zero re-executed completed units");
    assert_eq!(outcome.results_doc, expected);
    assert_eq!(
        std::fs::read_to_string(dir.join("results-restart.json")).unwrap(),
        expected
    );
    // A late worker is told the campaign is done and exits clean and idle.
    let late = run_worker(
        &restarted.addr().to_string(),
        &WorkerConfig {
            name: "late".to_string(),
            ..WorkerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(late.units, 0);
    restarted.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coordinator_rejects_plan_and_version_mismatches() {
    let dir = scratch("reject");
    let opts = campaign_opts();
    let setup = build_campaign(&opts).unwrap();
    let coordinator = Coordinator::start(
        PlannedCampaign::new(setup.scale, setup.specs),
        &opts.to_wire_json(),
        CoordinatorConfig {
            journal: dir.join("serve.journal"),
            results_out: dir.join("results.json"),
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let addr = coordinator.addr();

    // A worker whose plan hash differs (different figures, scale, code) must be
    // rejected before it can take a lease.
    let mut stream = TcpStream::connect(addr).unwrap();
    protocol::send_msg(&mut stream, &protocol::hello_msg("wrong-plan")).unwrap();
    let job = protocol::recv_msg(&mut stream).unwrap().unwrap();
    assert_eq!(protocol::parse_msg(&job).unwrap().0, "job");
    protocol::send_msg(&mut stream, &protocol::ready_msg("0000000000000000")).unwrap();
    let reply = protocol::recv_msg(&mut stream).unwrap().unwrap();
    let (kind, doc) = protocol::parse_msg(&reply).unwrap();
    assert_eq!(kind, "reject");
    assert!(doc
        .get("reason")
        .and_then(Json::as_str)
        .unwrap()
        .contains("plan mismatch"));

    // A wrong protocol version is rejected at hello.
    let mut stream = TcpStream::connect(addr).unwrap();
    protocol::send_msg(
        &mut stream,
        r#"{"type":"hello","version":999,"worker":"future"}"#,
    )
    .unwrap();
    let reply = protocol::recv_msg(&mut stream).unwrap().unwrap();
    let (kind, _) = protocol::parse_msg(&reply).unwrap();
    assert_eq!(kind, "reject");

    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
