//! Workspace-level tests for the observability invariant: attaching any
//! `piccolo-obs` sink, at any `--jobs` / shard / resume split, must not change a
//! single byte of `results.json`, the run journal, or a shard merge — while the
//! captured event log itself must be schema-valid, checksum-clean, and
//! span-balanced (`docs/observability.md`).
//!
//! The obs dispatcher and metrics registry are process-global, so every test
//! here serializes on a file-local mutex.

use piccolo::campaign::{merge_shards, Shard};
use piccolo::experiments::{self, Scale};
use piccolo::report::results_json;
use piccolo::sweep::{ExperimentSpec, SweepRunner};
use piccolo_algo::Algorithm;
use piccolo_graph::Dataset;
use piccolo_obs as obs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    // A panicking test must not wedge the others; the registry is left clean
    // by every path that can poison the lock.
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A small multi-figure campaign (shared graphs + a measure-only figure), the
/// same shape the sharded-campaign determinism tests pin.
fn specs_for(scale: Scale) -> Vec<ExperimentSpec> {
    let ds = [Dataset::Sinaweibo];
    let algs = [Algorithm::Bfs];
    vec![
        experiments::fig10_spec(scale, &ds, &algs),
        experiments::fig12_spec(scale, &ds, &algs),
        experiments::table2_spec(scale),
    ]
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("piccolo-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_clean(report: &obs::check::EventsReport) {
    assert!(
        report.clean(),
        "event log must check clean: {report}\n{}",
        report.errors.join("\n")
    );
}

#[test]
fn event_capture_never_changes_a_result_byte() {
    let _g = lock();
    let dir = scratch("identity");
    let scale = Scale {
        scale_shift: 15,
        seed: 9,
        max_iterations: 2,
    };
    let specs = specs_for(scale);
    let reference = SweepRunner::sequential().run_campaign(&specs);
    let expected = results_json(scale, &reference.figures);
    let planned = reference.stats.sim_runs + reference.stats.measure_units;

    for jobs in [1usize, 2, 8] {
        // Sink off: the plain run at this worker count.
        let plain = SweepRunner::new(jobs).run_campaign(&specs);
        assert_eq!(
            results_json(scale, &plain.figures),
            expected,
            "jobs {jobs}: plain run must match the sequential reference"
        );

        // Sink on: same run with the full event stream captured.
        let events = dir.join(format!("events-{jobs}.jsonl"));
        let id = obs::add_events_file(&events).unwrap();
        let traced = SweepRunner::new(jobs).run_campaign(&specs);
        obs::flush_sinks();
        obs::remove_sink(id);
        assert_eq!(
            results_json(scale, &traced.figures),
            expected,
            "jobs {jobs}: tracing must not change a result byte"
        );

        // And the capture itself is valid: balanced spans, one closed unit
        // span per planned unit, checksums good.
        let report = obs::check::check_events(&events).unwrap();
        assert_clean(&report);
        assert_eq!(report.spans_opened, report.spans_closed);
        assert_eq!(report.unit_spans, planned, "jobs {jobs}");
        assert_eq!(report.campaign_units, Some(planned as u64));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharding_and_resume_stay_byte_identical_under_tracing() {
    let _g = lock();
    let dir = scratch("splits");
    let scale = Scale {
        scale_shift: 15,
        seed: 23,
        max_iterations: 2,
    };
    let specs = specs_for(scale);
    let expected = results_json(
        scale,
        &SweepRunner::sequential().run_campaign(&specs).figures,
    );

    // Untraced sequential journal run: the reference journal bytes. (Worker
    // counts > 1 interleave journal lines by completion order, so the
    // byte-for-byte journal comparison pins the sequential path.)
    let plain_journal = dir.join("plain-journal.jsonl");
    let plain = SweepRunner::sequential()
        .run_campaign_resumed(scale, &specs, &plain_journal)
        .unwrap();
    assert_eq!(results_json(scale, &plain.run.figures), expected);

    let events = dir.join("events.jsonl");
    let id = obs::add_events_file(&events).unwrap();

    // Traced sharded run merges to the same bytes.
    let docs: Vec<String> = (0..2)
        .map(|index| {
            SweepRunner::new(2)
                .run_campaign_shard(scale, &specs, Shard { index, count: 2 })
                .to_json()
        })
        .collect();
    let merged = merge_shards(scale, &specs, &docs).unwrap();
    assert_eq!(
        results_json(scale, &merged),
        expected,
        "traced shard merge must be byte-identical"
    );

    // Traced journal run: results AND journal bytes match the untraced run.
    let traced_journal = dir.join("traced-journal.jsonl");
    let traced = SweepRunner::sequential()
        .run_campaign_resumed(scale, &specs, &traced_journal)
        .unwrap();
    assert_eq!(results_json(scale, &traced.run.figures), expected);
    assert_eq!(
        std::fs::read(&traced_journal).unwrap(),
        std::fs::read(&plain_journal).unwrap(),
        "tracing must not change a journal byte"
    );

    // Traced resume over a truncated journal still finishes to the same bytes.
    let lines: Vec<String> = std::fs::read_to_string(&traced_journal)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    let keep = lines.len() / 2;
    let part = dir.join("truncated-journal.jsonl");
    std::fs::write(&part, format!("{}\n", lines[..keep].join("\n"))).unwrap();
    let resumed = SweepRunner::new(2)
        .run_campaign_resumed(scale, &specs, &part)
        .unwrap();
    assert_eq!(
        results_json(scale, &resumed.run.figures),
        expected,
        "traced resume must be byte-identical"
    );

    obs::flush_sinks();
    obs::remove_sink(id);

    // Everything above went into one event log: shard campaigns, journal
    // replays, the shard merge — all spans balanced, every planned unit
    // accounted for exactly once across the campaigns.
    let report = obs::check::check_events(&events).unwrap();
    assert_clean(&report);
    assert_eq!(report.spans_opened, report.spans_closed);
    assert_eq!(report.campaign_units, Some(report.unit_spans as u64));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sim_metrics_are_identical_for_every_worker_split() {
    let _g = lock();
    let scale = Scale {
        scale_shift: 15,
        seed: 31,
        max_iterations: 2,
    };
    let specs = specs_for(scale);
    let mut snapshots: Vec<String> = Vec::new();
    for jobs in [1usize, 2, 8] {
        obs::metrics::reset_metrics();
        SweepRunner::new(jobs).run_campaign(&specs);
        snapshots.push(obs::metrics::metrics_json());
    }
    assert_eq!(
        snapshots[0], snapshots[1],
        "sim/* counters must not depend on the worker count"
    );
    assert_eq!(snapshots[0], snapshots[2]);
    for key in [
        "\"sim/edges_processed\"",
        "\"sim/dram_activations\"",
        "\"campaign/units_executed\"",
        "\"campaign/graphs_built\"",
        "piccolo-metrics/v1",
    ] {
        assert!(snapshots[0].contains(key), "metrics.json missing {key}");
    }
    // The document round-trips through the parser used by BENCH.json folding.
    let parsed = obs::metrics::parse_metrics_json(&snapshots[0]).unwrap();
    assert!(!parsed.is_empty());
    obs::metrics::reset_metrics();
}

#[test]
fn a_corrupt_event_line_is_tolerated_but_reported() {
    let _g = lock();
    let dir = scratch("corrupt");
    let scale = Scale {
        scale_shift: 15,
        seed: 2,
        max_iterations: 1,
    };
    let specs = vec![experiments::table2_spec(scale)];
    let events = dir.join("events.jsonl");
    let id = obs::add_events_file(&events).unwrap();
    SweepRunner::sequential().run_campaign(&specs);
    obs::flush_sinks();
    obs::remove_sink(id);

    let clean = obs::check::check_events(&events).unwrap();
    assert_clean(&clean);

    // Flip one checksum nibble in a non-structural line (a log or point —
    // damaging an open/close would unbalance the spans, which is the point of
    // a *separate* checker error). Here: corrupt the final close line and
    // expect the checker to flag the then-unclosed span too.
    let text = std::fs::read_to_string(&events).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let last = lines.len() - 1;
    let mut bytes = lines[last].clone().into_bytes();
    bytes[0] = if bytes[0] == b'0' { b'1' } else { b'0' };
    lines[last] = String::from_utf8(bytes).unwrap();
    std::fs::write(&events, format!("{}\n", lines.join("\n"))).unwrap();

    let report = obs::check::check_events(&events).unwrap();
    assert_eq!(report.corrupt, 1, "exactly the damaged line is corrupt");
    assert!(!report.clean());
    assert_eq!(
        report.events,
        clean.events - 1,
        "the other lines still parse"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
