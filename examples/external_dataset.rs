//! End-to-end external-dataset walkthrough: generate an edge-list file, round-trip it
//! through the `.pcsr` snapshot format, and run PR + BFS on both traversal engines.
//!
//! ```text
//! cargo run --release --example external_dataset
//! ```

#![forbid(unsafe_code)]

use piccolo::{Simulation, SystemKind};
use piccolo_algo::{Bfs, PageRank};
use piccolo_graph::generate;
use piccolo_io::{load_graph_with, load_pcsr, SnapshotStatus};
use std::io::Write as _;

fn main() {
    let dir = std::env::temp_dir().join(format!("piccolo-external-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let edge_file = dir.join("example.tsv");
    let cache_dir = dir.join("snapshots");

    // 1. Write a SNAP-style edge list to disk (in real use this file comes from a
    //    dataset archive; here a seeded generator stands in).
    let graph = generate::kronecker(12, 8, 2025);
    {
        let mut f = std::fs::File::create(&edge_file).expect("create edge file");
        writeln!(f, "# SNAP-style edge list: src<TAB>dst<TAB>weight").unwrap();
        for e in graph.iter_edges() {
            writeln!(f, "{}\t{}\t{}", e.src, e.dst, e.weight).unwrap();
        }
    }
    println!(
        "wrote {} ({} vertices, {} edges)",
        edge_file.display(),
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Load it through the snapshot cache: the first load parses the text and
    //    writes a .pcsr snapshot, the second skips parsing entirely.
    let first = load_graph_with(&edge_file, None, &cache_dir).expect("first load");
    assert_eq!(first.status, SnapshotStatus::Miss);
    let second = load_graph_with(&edge_file, None, &cache_dir).expect("second load");
    assert_eq!(second.status, SnapshotStatus::Hit);
    assert_eq!(first.graph, second.graph);
    let snapshot = second.snapshot.expect("cached loads have a snapshot");
    println!(
        "snapshot cache: first load = {}, second load = {} ({})",
        first.status,
        second.status,
        snapshot.display()
    );

    // 3. The snapshot is a standalone, checksummed binary CSR — reading it back gives
    //    the exact same graph the text parser produced.
    let from_snapshot = load_pcsr(&snapshot).expect("snapshot is valid");
    assert_eq!(from_snapshot, first.graph);
    println!(
        "round trip: .pcsr == parsed text ({} edges)",
        from_snapshot.num_edges()
    );

    // 4. Run PR and BFS on both engines, conventional baseline vs Piccolo.
    let loaded = first.graph;
    println!("\n{:<26} {:>14} {:>14}", "workload", "cycles", "speedup");
    for (alg_name, edge_centric) in [("PR", false), ("PR", true), ("BFS", false), ("BFS", true)] {
        let run = |system: SystemKind| {
            let sim = Simulation::new(system).configure(|c| c.with_max_iterations(5));
            let report = match (alg_name, edge_centric) {
                ("PR", false) => sim.run(&loaded, &PageRank::default()),
                ("PR", true) => sim.run_edge_centric(&loaded, &PageRank::default()),
                ("BFS", false) => sim.run(&loaded, &Bfs::new(0)),
                _ => sim.run_edge_centric(&loaded, &Bfs::new(0)),
            };
            report.run.accel_cycles
        };
        let base = run(SystemKind::GraphDynsCache);
        let pic = run(SystemKind::Piccolo);
        let engine = if edge_centric { "EC" } else { "VC" };
        println!(
            "{:<26} {:>14} {:>13.2}x",
            format!("{alg_name}/{engine}/Piccolo"),
            pic,
            base as f64 / pic.max(1) as f64
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
