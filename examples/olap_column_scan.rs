//! In-memory database scenario (Fig. 19b): OLAP column scans with and without
//! Piccolo-FIM.
//!
//! Run with: `cargo run --release --example olap_column_scan`

#![forbid(unsafe_code)]

use piccolo::olap::{run_conventional, run_piccolo, OlapQuery};
use piccolo_dram::DramConfig;

fn main() {
    let cfg = DramConfig::ddr4_2400_x16();
    println!(
        "{:<4} {:>14} {:>14} {:>9}",
        "qry", "conv clocks", "piccolo clocks", "speedup"
    );
    for q in OlapQuery::suite(200_000) {
        let conv = run_conventional(&q, cfg);
        let pic = run_piccolo(&q, cfg);
        println!(
            "{:<4} {:>14} {:>14} {:>8.2}x",
            q.name,
            conv.clocks,
            pic.clocks,
            conv.clocks as f64 / pic.clocks.max(1) as f64
        );
    }
}
