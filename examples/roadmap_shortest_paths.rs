//! Path-finding scenario: SSSP and SSWP (widest path) on a weighted small-world network,
//! validating the accelerator results against textbook CPU implementations and reporting
//! Piccolo's advantage on these frontier-driven workloads.
//!
//! Run with: `cargo run --release --example roadmap_shortest_paths`

#![forbid(unsafe_code)]

use piccolo::{Simulation, SystemKind};
use piccolo_algo::{reference, run_vcm, Sssp, Sswp};
use piccolo_graph::generate;

fn main() {
    let graph = generate::watts_strogatz(14, 6, 0.2, 9);
    let source = 0;

    // Functional check first: the vertex programs agree with Dijkstra-style references.
    let sssp = run_vcm(&graph, &Sssp::new(source), 10_000);
    assert_eq!(
        sssp.props.as_slice(),
        reference::dijkstra(&graph, source).as_slice()
    );
    let sswp = run_vcm(&graph, &Sswp::new(source), 10_000);
    assert_eq!(
        sswp.props.as_slice(),
        reference::widest_path(&graph, source).as_slice()
    );
    println!("functional check passed: SSSP and SSWP match the reference implementations");

    for system in [
        SystemKind::GraphDynsCache,
        SystemKind::Nmp,
        SystemKind::Piccolo,
    ] {
        let sim = Simulation::new(system).configure(|c| c.with_max_iterations(40));
        let r_sssp = sim.run(&graph, &Sssp::new(source));
        let r_sswp = sim.run(&graph, &Sswp::new(source));
        println!(
            "{:<18} SSSP {:>11} cycles ({:>4.1} GB/s off-chip)   SSWP {:>11} cycles",
            system.name(),
            r_sssp.run.accel_cycles,
            r_sssp.run.offchip_bandwidth_gbps(),
            r_sswp.run.accel_cycles,
        );
    }
}
