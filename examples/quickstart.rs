//! Quickstart: run BFS on a synthetic power-law graph through the baseline accelerator
//! and through Piccolo, and print the speedup, traffic reduction and energy saving.
//!
//! Run with: `cargo run --release --example quickstart`

#![forbid(unsafe_code)]

use piccolo::{Simulation, SystemKind};
use piccolo_algo::Bfs;
use piccolo_graph::generate;

fn main() {
    let graph = generate::kronecker(14, 8, 42);
    println!(
        "graph: {} vertices, {} edges (avg degree {:.1})",
        graph.num_vertices(),
        graph.num_edges(),
        graph.average_degree()
    );

    let baseline = Simulation::new(SystemKind::GraphDynsCache).run(&graph, &Bfs::new(0));
    let piccolo = Simulation::new(SystemKind::Piccolo).run(&graph, &Bfs::new(0));

    println!(
        "baseline (GraphDyns Cache): {:>12} cycles, {:>10} off-chip bytes, {:>10.1} uJ",
        baseline.run.accel_cycles,
        baseline.run.mem_stats.offchip_bytes,
        baseline.energy.total_nj() / 1000.0
    );
    println!(
        "piccolo                   : {:>12} cycles, {:>10} off-chip bytes, {:>10.1} uJ",
        piccolo.run.accel_cycles,
        piccolo.run.mem_stats.offchip_bytes,
        piccolo.energy.total_nj() / 1000.0
    );
    println!(
        "speedup {:.2}x, traffic {:.1} % of baseline, energy {:.1} % of baseline",
        piccolo.speedup_over(&baseline),
        100.0 * piccolo.run.mem_stats.offchip_bytes as f64
            / baseline.run.mem_stats.offchip_bytes.max(1) as f64,
        100.0 * piccolo.energy_ratio_over(&baseline)
    );
}
