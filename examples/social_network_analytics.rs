//! Social-network analytics scenario: PageRank and Connected Components on stand-ins of
//! the paper's social graphs (Sinaweibo, Friendster), comparing every evaluated system.
//!
//! Run with: `cargo run --release --example social_network_analytics`

#![forbid(unsafe_code)]

use piccolo::{SimConfig, Simulation, SystemKind};
use piccolo_algo::{ConnectedComponents, PageRank};
use piccolo_graph::Dataset;

fn main() {
    for dataset in [Dataset::Sinaweibo, Dataset::Friendster] {
        let graph = dataset.build(13, 7);
        println!(
            "== {} stand-in: {} vertices, {} edges ==",
            dataset.short_name(),
            graph.num_vertices(),
            graph.num_edges()
        );
        let total_for = |system: SystemKind| {
            let sim =
                Simulation::with_config(SimConfig::for_system(system, 13).with_max_iterations(5));
            let pr = sim.run(&graph, &PageRank::default());
            let cc = sim.run(&graph, &ConnectedComponents::new());
            pr.run.accel_cycles + cc.run.accel_cycles
        };
        // The baseline runs first: every row (including the ones listed before it in
        // SystemKind::ALL) is normalized against it.
        let baseline_cycles = total_for(SystemKind::GraphDynsCache);
        for system in SystemKind::ALL {
            let total = if system == SystemKind::GraphDynsCache {
                baseline_cycles
            } else {
                total_for(system)
            };
            println!(
                "  {:<18} PR+CC cycles {:>12}   speedup vs cache baseline {:>5.2}x",
                system.name(),
                total,
                baseline_cycles as f64 / total as f64
            );
        }
        println!();
    }
}
