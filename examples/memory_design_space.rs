//! Memory design-space exploration (Figs. 15-17 in miniature): memory type, channel/rank
//! count and tile-size sensitivity of Piccolo vs the baseline on one dataset.
//!
//! Run with: `cargo run --release --example memory_design_space`

#![forbid(unsafe_code)]

use piccolo::experiments::{fig15, fig16, fig17, Scale};
use piccolo_algo::Algorithm;
use piccolo_graph::Dataset;

fn main() {
    let scale = Scale {
        scale_shift: 13,
        seed: 7,
        max_iterations: 3,
    };
    let algs = [Algorithm::PageRank];
    println!("-- memory type sensitivity (cycles) --");
    for p in fig15(scale, Dataset::Sinaweibo, &algs) {
        println!("{p}");
    }
    println!("\n-- channel/rank sensitivity (cycles) --");
    for p in fig16(scale, Dataset::Sinaweibo, &algs) {
        println!("{p}");
    }
    println!("\n-- tile-size sensitivity (normalized cycles) --");
    for p in fig17(scale, Dataset::Sinaweibo, &algs) {
        println!("{p}");
    }
}
