//! Lossless JSON codec for completed grid units.
//!
//! Shard result files (`piccolo-results-shard/v1`) and the run journal both carry raw
//! [`UnitResult`]s across process boundaries, and the campaign's headline property —
//! merged / resumed output byte-identical to a single-process run — holds only if every
//! value round-trips *exactly*. Two rules make that true:
//!
//! * `f64` fields ride as JSON numbers: the writer ([`crate::json`]) prints the
//!   shortest round-trip form, so parsing returns the identical bits.
//! * `u64` counters ride as **decimal strings**: a JSON number is an `f64` in this
//!   pipeline and would silently round counters above 2^53 — cycle and byte counts at
//!   production scale can get there, so they never touch floating point.

use crate::experiments::Point;
use crate::json::Json;
use crate::sweep::UnitResult;
use piccolo_accel::{PhaseBreakdown, RunResult, SystemKind};
use piccolo_cache::CacheStats;
use piccolo_dram::MemStats;

fn u64_json(v: u64) -> Json {
    Json::str(v.to_string())
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    field(obj, key)?
        .as_str()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("field '{key}' is not a u64 string"))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, String> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))
}

fn u32_field(obj: &Json, key: &str) -> Result<u32, String> {
    let n = f64_field(obj, key)?;
    if n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&n) {
        Ok(n as u32)
    } else {
        Err(format!("field '{key}' is not a u32"))
    }
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    field(obj, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

fn mem_stats_json(m: &MemStats) -> Json {
    Json::obj([
        ("activations", u64_json(m.activations)),
        ("precharges", u64_json(m.precharges)),
        ("read_bursts", u64_json(m.read_bursts)),
        ("write_bursts", u64_json(m.write_bursts)),
        ("fim_gathers", u64_json(m.fim_gathers)),
        ("fim_scatters", u64_json(m.fim_scatters)),
        ("nmp_ops", u64_json(m.nmp_ops)),
        ("pim_updates", u64_json(m.pim_updates)),
        ("offchip_bytes", u64_json(m.offchip_bytes)),
        ("useful_offchip_bytes", u64_json(m.useful_offchip_bytes)),
        ("internal_bytes", u64_json(m.internal_bytes)),
        ("read_transactions", u64_json(m.read_transactions)),
        ("write_transactions", u64_json(m.write_transactions)),
        ("row_hits", u64_json(m.row_hits)),
        ("row_misses", u64_json(m.row_misses)),
    ])
}

fn mem_stats_from_json(v: &Json) -> Result<MemStats, String> {
    Ok(MemStats {
        activations: u64_field(v, "activations")?,
        precharges: u64_field(v, "precharges")?,
        read_bursts: u64_field(v, "read_bursts")?,
        write_bursts: u64_field(v, "write_bursts")?,
        fim_gathers: u64_field(v, "fim_gathers")?,
        fim_scatters: u64_field(v, "fim_scatters")?,
        nmp_ops: u64_field(v, "nmp_ops")?,
        pim_updates: u64_field(v, "pim_updates")?,
        offchip_bytes: u64_field(v, "offchip_bytes")?,
        useful_offchip_bytes: u64_field(v, "useful_offchip_bytes")?,
        internal_bytes: u64_field(v, "internal_bytes")?,
        read_transactions: u64_field(v, "read_transactions")?,
        write_transactions: u64_field(v, "write_transactions")?,
        row_hits: u64_field(v, "row_hits")?,
        row_misses: u64_field(v, "row_misses")?,
    })
}

fn cache_stats_json(c: &CacheStats) -> Json {
    Json::obj([
        ("accesses", u64_json(c.accesses)),
        ("hits", u64_json(c.hits)),
        ("misses", u64_json(c.misses)),
        ("line_evictions", u64_json(c.line_evictions)),
        ("sector_evictions", u64_json(c.sector_evictions)),
        ("writeback_bytes", u64_json(c.writeback_bytes)),
        ("fill_bytes", u64_json(c.fill_bytes)),
    ])
}

fn cache_stats_from_json(v: &Json) -> Result<CacheStats, String> {
    Ok(CacheStats {
        accesses: u64_field(v, "accesses")?,
        hits: u64_field(v, "hits")?,
        misses: u64_field(v, "misses")?,
        line_evictions: u64_field(v, "line_evictions")?,
        sector_evictions: u64_field(v, "sector_evictions")?,
        writeback_bytes: u64_field(v, "writeback_bytes")?,
        fill_bytes: u64_field(v, "fill_bytes")?,
    })
}

fn phases_json(p: &PhaseBreakdown) -> Json {
    Json::obj([
        ("scatter_mem_clocks", u64_json(p.scatter_mem_clocks)),
        ("apply_mem_clocks", u64_json(p.apply_mem_clocks)),
        ("flush_mem_clocks", u64_json(p.flush_mem_clocks)),
    ])
}

fn phases_from_json(v: &Json) -> Result<PhaseBreakdown, String> {
    Ok(PhaseBreakdown {
        scatter_mem_clocks: u64_field(v, "scatter_mem_clocks")?,
        apply_mem_clocks: u64_field(v, "apply_mem_clocks")?,
        flush_mem_clocks: u64_field(v, "flush_mem_clocks")?,
    })
}

fn run_result_json(r: &RunResult) -> Json {
    Json::obj([
        ("system", Json::str(r.system.name())),
        ("accel_cycles", u64_json(r.accel_cycles)),
        ("compute_cycles", u64_json(r.compute_cycles)),
        ("mem_ns", Json::Num(r.mem_ns)),
        ("elapsed_ns", Json::Num(r.elapsed_ns)),
        ("iterations", Json::Num(r.iterations as f64)),
        ("edges_processed", u64_json(r.edges_processed)),
        ("mem_stats", mem_stats_json(&r.mem_stats)),
        ("cache_stats", cache_stats_json(&r.cache_stats)),
        ("tile_width", Json::Num(r.tile_width as f64)),
        ("num_tiles", Json::Num(r.num_tiles as f64)),
        ("phases", phases_json(&r.phases)),
    ])
}

fn run_result_from_json(v: &Json) -> Result<RunResult, String> {
    let system_name = str_field(v, "system")?;
    let system = SystemKind::ALL
        .into_iter()
        .find(|s| s.name() == system_name)
        .ok_or_else(|| format!("unknown system '{system_name}'"))?;
    Ok(RunResult {
        system,
        accel_cycles: u64_field(v, "accel_cycles")?,
        compute_cycles: u64_field(v, "compute_cycles")?,
        mem_ns: f64_field(v, "mem_ns")?,
        elapsed_ns: f64_field(v, "elapsed_ns")?,
        iterations: u32_field(v, "iterations")?,
        edges_processed: u64_field(v, "edges_processed")?,
        mem_stats: mem_stats_from_json(field(v, "mem_stats")?)?,
        cache_stats: cache_stats_from_json(field(v, "cache_stats")?)?,
        tile_width: u32_field(v, "tile_width")?,
        num_tiles: u32_field(v, "num_tiles")?,
        phases: phases_from_json(field(v, "phases")?)?,
    })
}

/// Serializes one completed unit: a tagged object, `kind` either `run` (a full
/// simulation's [`RunResult`]) or `points` (a measure unit's rows).
pub(crate) fn unit_result_to_json(r: &UnitResult) -> Json {
    match r {
        UnitResult::Run(run) => {
            let Json::Obj(mut pairs) = run_result_json(run) else {
                unreachable!("run_result_json builds an object")
            };
            pairs.insert(0, ("kind".to_string(), Json::str("run")));
            Json::Obj(pairs)
        }
        UnitResult::Points(points) => Json::obj([
            ("kind", Json::str("points")),
            (
                "points",
                Json::Arr(
                    points
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("label", Json::str(&p.label)),
                                ("value", Json::Num(p.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Parses a serialized unit back; the inverse of [`unit_result_to_json`].
pub(crate) fn unit_result_from_json(v: &Json) -> Result<UnitResult, String> {
    match str_field(v, "kind")? {
        "run" => Ok(UnitResult::Run(Box::new(run_result_from_json(v)?))),
        "points" => {
            let items = field(v, "points")?
                .as_array()
                .ok_or("'points' is not an array")?;
            let mut points = Vec::with_capacity(items.len());
            for item in items {
                points.push(Point {
                    label: str_field(item, "label")?.to_string(),
                    value: f64_field(item, "value")?,
                });
            }
            Ok(UnitResult::Points(points))
        }
        other => Err(format!("unknown unit kind '{other}'")),
    }
}

/// `true` when a serialized unit's kind tag matches a grid unit's kind — the check
/// shard merge and journal replay run before trusting a foreign result for a slot.
pub(crate) fn kind_matches(v: &Json, unit: &crate::sweep::Unit) -> bool {
    matches!(
        (v.get("kind").and_then(Json::as_str), unit),
        (Some("run"), crate::sweep::Unit::Sim(_))
            | (Some("points"), crate::sweep::Unit::Measure(_))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo_accel::{simulate, SimConfig};
    use piccolo_algo::Bfs;
    use piccolo_graph::generate;

    #[test]
    fn run_results_roundtrip_exactly() {
        let g = generate::kronecker(10, 4, 5);
        for system in SystemKind::ALL {
            let cfg = SimConfig::for_system(system, 14).with_max_iterations(2);
            let run = simulate(&g, &Bfs::new(0), &cfg);
            let json = run_result_json(&run);
            let text = json.to_string();
            let back = run_result_from_json(&crate::json::parse(&text).unwrap()).unwrap();
            // RunResult has no PartialEq; serialized equality is the property the
            // pipeline actually needs (byte-identical derived output).
            assert_eq!(run_result_json(&back).to_string(), text);
            assert_eq!(back.accel_cycles, run.accel_cycles);
            assert_eq!(back.elapsed_ns.to_bits(), run.elapsed_ns.to_bits());
            assert_eq!(back.mem_stats, run.mem_stats);
            assert_eq!(back.cache_stats, run.cache_stats);
            assert_eq!(back.phases, run.phases);
        }
    }

    #[test]
    fn u64_counters_survive_beyond_f64_precision() {
        let big = (1u64 << 53) + 1; // not representable as f64
        let json = u64_json(big).to_string();
        let v = crate::json::parse(&json).unwrap();
        assert_eq!(v.as_str().unwrap().parse::<u64>().unwrap(), big);
    }

    #[test]
    fn points_roundtrip_and_bad_documents_are_rejected() {
        let r = UnitResult::Points(vec![Point {
            label: "GM/Piccolo".to_string(),
            value: std::f64::consts::PI,
        }]);
        let text = unit_result_to_json(&r).to_string();
        let back = unit_result_from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(unit_result_to_json(&back).to_string(), text);
        match back {
            UnitResult::Points(pts) => {
                assert_eq!(pts[0].value.to_bits(), std::f64::consts::PI.to_bits());
            }
            UnitResult::Run(_) => panic!("kind flipped"),
        }
        for bad in [
            r#"{"kind":"nope"}"#,
            r#"{"points":[]}"#,
            r#"{"kind":"run","system":"NoSuchSystem"}"#,
            r#"{"kind":"points","points":[{"label":"x"}]}"#,
        ] {
            assert!(unit_result_from_json(&crate::json::parse(bad).unwrap()).is_err());
        }
    }
}
