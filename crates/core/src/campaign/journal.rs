//! The campaign run journal: one checksummed line per completed grid unit, so a
//! killed or partially-failed campaign resumes in the time of its *missing* units.
//!
//! Each line (format: [`piccolo_io::journal`], FNV-checksummed like `.pcsr` sections)
//! carries a compact JSON payload — a completed unit, or a graph build:
//!
//! ```text
//! {"plan":"<16-hex plan hash>","unit":<global unit index>,"result":{...}}
//! {"plan":"<16-hex plan hash>","built":"<graph key spec>"}
//! ```
//!
//! `plan` is [`super::plan_hash`] over the campaign's scale and spec list — an entry
//! replays **only** into the exact plan that wrote it; entries from a different figure
//! set, scale, or spec revision are counted and ignored. `result` is the lossless
//! unit codec ([`super::codec`]), so a replayed slot is byte-for-byte the slot the
//! original process would have produced, and `repro --resume` output is identical to
//! an uninterrupted run. Corrupt lines (torn tail from a kill, flipped bytes) fail
//! their checksum and simply cost a re-run of that unit.
//!
//! `built` entries record which graphs an invocation materialized. Replayed units
//! never schedule a build (builds are keyed off the units actually executed), so these
//! entries carry no replay obligation — they exist so a resumed invocation can report
//! how many journaled builds it *skipped* (graphs whose every unit replayed), making
//! the out-of-core win visible in the resume summary.
//!
//! Appends happen from worker threads behind a mutex, one line per completed unit or
//! build, in completion order — ordering never matters because every unit entry names
//! its slot.

use super::codec::{kind_matches, unit_result_from_json, unit_result_to_json};
use super::plan_hex;
use crate::json::{parse, Json};
use crate::sweep::{ExperimentSpec, UnitResult};
use piccolo_io::journal as lines;
use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::path::Path;
use std::sync::Mutex;

/// What a journal scan recovered for one campaign plan.
#[derive(Debug, Default)]
pub(crate) struct Replay {
    /// Verified entries by global unit index (first entry per slot wins; results are
    /// deterministic, so duplicates are necessarily identical).
    pub entries: BTreeMap<usize, UnitResult>,
    /// Lines dropped by the checksum / framing check.
    pub corrupt: usize,
    /// Well-formed entries for a *different* plan hash, an out-of-range slot, or a
    /// kind-mismatched slot — ignored, never replayed.
    pub mismatched: usize,
    /// Graph-key specs of `built` entries that verified against this plan, deduplicated
    /// (a graph rebuilt by a partially-resumed invocation is journaled again).
    pub builds: Vec<String>,
}

/// Scans `path` and returns every entry that verifies against `plan` and the spec
/// list's grid shape. A missing file is an empty journal, not an error.
pub(crate) fn read_replay(
    path: &Path,
    plan: u64,
    specs: &[ExperimentSpec],
    unit_index: &[(usize, usize)],
) -> std::io::Result<Replay> {
    let scanned = match lines::read_lines(path) {
        Ok(scanned) => scanned,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(e),
    };
    let mut replay = Replay {
        corrupt: scanned.corrupt,
        ..Replay::default()
    };
    let expected_plan = plan_hex(plan);
    for payload in &scanned.payloads {
        let Ok(doc) = parse(payload) else {
            replay.corrupt += 1;
            continue;
        };
        let plan_ok = doc.get("plan").and_then(Json::as_str) == Some(expected_plan.as_str());
        if let Some(spec) = doc.get("built").and_then(Json::as_str) {
            if !plan_ok {
                replay.mismatched += 1;
            } else if !replay.builds.iter().any(|b| b == spec) {
                replay.builds.push(spec.to_string());
            }
            continue;
        }
        let unit = doc
            .get("unit")
            .and_then(Json::as_f64)
            .filter(|n| n.fract() == 0.0 && *n >= 0.0)
            .map(|n| n as usize);
        let result = doc.get("result");
        let (Some(unit), Some(result)) = (unit, result) else {
            replay.mismatched += 1;
            continue;
        };
        let in_grid = unit < unit_index.len() && {
            let (figure, u) = unit_index[unit];
            kind_matches(result, &specs[figure].units()[u])
        };
        if !plan_ok || !in_grid {
            replay.mismatched += 1;
            continue;
        }
        if let std::collections::btree_map::Entry::Vacant(slot) = replay.entries.entry(unit) {
            match unit_result_from_json(result) {
                Ok(r) => {
                    slot.insert(r);
                }
                Err(_) => replay.mismatched += 1,
            }
        }
    }
    Ok(replay)
}

/// Thread-safe appender: one encoded line per completed unit.
pub(crate) struct Writer {
    file: Mutex<std::fs::File>,
    plan: String,
}

impl Writer {
    /// Opens (or creates) `path` for appending under `plan`.
    pub fn append_to(path: &Path, plan: u64) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        Ok(Self {
            file: Mutex::new(file),
            plan: plan_hex(plan),
        })
    }

    /// Records one completed unit. Called from worker threads; a failed write panics
    /// (loudly aborting the campaign) rather than silently producing a journal that
    /// would re-run completed units on resume.
    pub fn record(&self, unit: usize, result: &UnitResult) {
        let payload = Json::obj([
            ("plan", Json::str(&self.plan)),
            ("unit", Json::Num(unit as f64)),
            ("result", unit_result_to_json(result)),
        ])
        .to_string();
        let mut file = self.file.lock().unwrap();
        lines::append_line(&mut *file, &payload)
            .unwrap_or_else(|e| panic!("cannot append to run journal: {e}"));
    }

    /// Records one completed unit given its **already-canonical** codec JSON bytes —
    /// the coordinator path, where the result arrived over a wire and was normalized
    /// by validation rather than produced in-process. The written line is
    /// byte-identical to what [`Writer::record`] would produce for the same slot:
    /// the JSON writer emits compact output (no spaces) with integer-valued numbers
    /// printed as integers, so the manual framing here matches `Json::obj` exactly.
    pub fn record_raw(&self, unit: usize, result_json: &str) {
        let payload = format!(
            "{{\"plan\":\"{}\",\"unit\":{unit},\"result\":{result_json}}}",
            self.plan
        );
        let mut file = self.file.lock().unwrap();
        lines::append_line(&mut *file, &payload)
            .unwrap_or_else(|e| panic!("cannot append to run journal: {e}"));
    }

    /// Records one completed graph build (its [`super::build_spec`] string). Same
    /// failure policy as [`Writer::record`].
    pub fn record_build(&self, spec: &str) {
        let payload =
            Json::obj([("plan", Json::str(&self.plan)), ("built", Json::str(spec))]).to_string();
        let mut file = self.file.lock().unwrap();
        lines::append_line(&mut *file, &payload)
            .unwrap_or_else(|e| panic!("cannot append to run journal: {e}"));
    }
}

impl std::fmt::Debug for Writer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Writer").field("plan", &self.plan).finish()
    }
}
