//! OLAP column-scan workload (Fig. 19b, Section VIII-A).
//!
//! The paper evaluates four OLAP-style select queries (Qa–Qd) from RCNVMBench: scans over
//! 4/8 B columns of a row-oriented table, i.e. strided accesses with the stride set by the
//! row (tuple) width. Piccolo-FIM gathers the scanned column values in-row, so the
//! conventional system pays one 64 B burst per tuple while Piccolo pays ~8 B.

use piccolo_dram::{AddressMapper, DramConfig, MemRequest, MemorySystem, Region, RowId};

/// One OLAP query class: a column scan over a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OlapQuery {
    /// Query name (Qa..Qd).
    pub name: &'static str,
    /// Tuple (row) width in bytes — the scan stride.
    pub tuple_bytes: u64,
    /// Number of tuples scanned.
    pub tuples: u64,
    /// Number of 8 B columns the query touches per tuple.
    pub columns: u64,
}

impl OlapQuery {
    /// The four queries of Fig. 19b (select-heavy scans with different tuple widths and
    /// projected column counts).
    pub fn suite(tuples: u64) -> [OlapQuery; 4] {
        [
            OlapQuery {
                name: "Qa",
                tuple_bytes: 64,
                tuples,
                columns: 1,
            },
            OlapQuery {
                name: "Qb",
                tuple_bytes: 128,
                tuples,
                columns: 1,
            },
            OlapQuery {
                name: "Qc",
                tuple_bytes: 128,
                tuples,
                columns: 2,
            },
            OlapQuery {
                name: "Qd",
                tuple_bytes: 256,
                tuples,
                columns: 1,
            },
        ]
    }
}

/// Result of running one query on one memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlapResult {
    /// Elapsed memory clocks.
    pub clocks: u64,
    /// Off-chip bytes moved.
    pub offchip_bytes: u64,
}

/// Runs a column-scan query on a conventional memory system (one 64 B read per touched
/// tuple/column line).
pub fn run_conventional(query: &OlapQuery, cfg: DramConfig) -> OlapResult {
    let mut mem = MemorySystem::new(cfg);
    let mut reqs = Vec::new();
    let mut last_line = u64::MAX;
    for t in 0..query.tuples {
        for c in 0..query.columns {
            let addr = t * query.tuple_bytes + c * 8;
            let line = addr & !63;
            if line != last_line {
                last_line = line;
                reqs.push(MemRequest::Read {
                    addr: line,
                    useful_bytes: 8 * query.columns.min(8) as u32,
                    region: Region::Other,
                });
            }
        }
    }
    let b = mem.service_batch(reqs);
    OlapResult {
        clocks: b.elapsed_clocks(),
        offchip_bytes: mem.stats().offchip_bytes,
    }
}

/// Runs the same query with Piccolo-FIM gathers (columns grouped per DRAM row).
pub fn run_piccolo(query: &OlapQuery, cfg: DramConfig) -> OlapResult {
    let cfg = cfg.with_fim();
    let mapper = AddressMapper::new(&cfg);
    let mut mem = MemorySystem::new(cfg);
    let mut by_row: std::collections::BTreeMap<RowId, Vec<u16>> = std::collections::BTreeMap::new();
    let mut order: Vec<RowId> = Vec::new();
    for t in 0..query.tuples {
        for c in 0..query.columns {
            let addr = t * query.tuple_bytes + c * 8;
            let loc = mapper.decompose(addr);
            let row = mapper.row_id_of(&loc);
            let entry = by_row.entry(row).or_insert_with(|| {
                order.push(row);
                Vec::new()
            });
            entry.push(loc.word_offset());
        }
    }
    let items = cfg.fim.items_per_op as usize;
    let mut reqs = Vec::new();
    for row in order {
        for chunk in by_row[&row].chunks(items) {
            reqs.push(MemRequest::GatherFim {
                row,
                offsets: chunk.to_vec(),
                region: Region::Other,
            });
        }
    }
    let b = mem.service_batch(reqs);
    OlapResult {
        clocks: b.elapsed_clocks(),
        offchip_bytes: mem.stats().offchip_bytes,
    }
}

/// Speedup of Piccolo over the conventional system for a query.
pub fn speedup(query: &OlapQuery, cfg: DramConfig) -> f64 {
    let conv = run_conventional(query, cfg);
    let pic = run_piccolo(query, cfg);
    conv.clocks as f64 / pic.clocks.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piccolo_speeds_up_wide_tuple_scans() {
        let cfg = DramConfig::ddr4_2400_x16();
        for q in OlapQuery::suite(20_000) {
            let s = speedup(&q, cfg);
            assert!(s > 1.5, "{}: speedup {s:.2}", q.name);
            assert!(s < 6.0, "{}: speedup {s:.2}", q.name);
        }
    }

    #[test]
    fn piccolo_moves_fewer_bytes() {
        let cfg = DramConfig::ddr4_2400_x16();
        let q = OlapQuery {
            name: "Qd",
            tuple_bytes: 256,
            tuples: 10_000,
            columns: 1,
        };
        let conv = run_conventional(&q, cfg);
        let pic = run_piccolo(&q, cfg);
        assert!(pic.offchip_bytes * 2 < conv.offchip_bytes);
    }
}
