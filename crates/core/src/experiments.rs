//! Experiment drivers reproducing every table and figure of the paper's evaluation.
//!
//! Each figure is declared as an [`ExperimentSpec`] (see [`crate::sweep`]): a grid of
//! independent simulation runs plus the derived output rows (speedups, ratios, geometric
//! means) computed from the completed grid. Every entry point routes through the
//! cross-figure campaign scheduler ([`crate::campaign`]): a [`SweepRunner`] executes one
//! or many specs over a single worker pool with bit-identical output for any worker
//! count, building each distinct graph exactly once campaign-wide. The `piccolo-bench`
//! crate exposes the specs through the `repro` binary (`--jobs N`, global across
//! figures) and the hand-rolled bench harness, both of which also emit the
//! machine-readable `results.json` / `BENCH.json`.
//!
//! For callers that just want the rows, every figure keeps a plain function
//! (`fig10(...)`, `fig14(...)`, ...) that builds its spec and runs it sequentially.
//! `EXPERIMENTS.md` records the expected shapes and the values measured with the default
//! scale.

use crate::olap::{self, OlapQuery};
use crate::report::SimReport;
use crate::sweep::{ExperimentSpec, RunConfig, RunHandle, SweepRunner, TraversalKind};
use piccolo_accel::{CacheKind, SimConfig, SystemKind, TilingPolicy};
use piccolo_algo::Algorithm;
use piccolo_dram::{DramConfig, MemoryKind};
use piccolo_graph::Dataset;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Right shift applied to the paper's dataset sizes (and to the on-chip structures).
    pub scale_shift: u32,
    /// RNG seed for the synthetic stand-ins.
    pub seed: u64,
    /// Iteration cap per run.
    pub max_iterations: u32,
}

impl Scale {
    /// A quick scale suitable for CI and the bench harness (seconds per figure).
    pub fn quick() -> Self {
        Self {
            scale_shift: 13,
            seed: 7,
            max_iterations: 3,
        }
    }

    /// The default reproduction scale (datasets shrunk 4096x, a few minutes per figure).
    pub fn default_repro() -> Self {
        Self {
            scale_shift: 12,
            seed: 7,
            max_iterations: 5,
        }
    }

    /// Folds this scale into a campaign plan hash (see [`crate::campaign::plan_hash`]):
    /// `Measure` units close over the scale invisibly, so the scale must be part of any
    /// fingerprint that claims two plans are interchangeable.
    pub(crate) fn fingerprint(&self, h: &mut piccolo_io::hash::Fnv64) {
        h.update(
            format!(
                "scale shift={} seed={} iters={}\0",
                self.scale_shift, self.seed, self.max_iterations
            )
            .as_bytes(),
        );
    }
}

/// One measured data point: a label (matching the paper's x-axis) and a value.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Row label, e.g. "PR/TW/Piccolo".
    pub label: String,
    /// Value (speedup, cycles, GB/s, normalized energy ... depending on the figure).
    pub value: f64,
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // lint: allow(float-format-via-codec, stdout summary table only — results.json takes Point.value through Json::Num)
        write!(f, "{:<40} {:>12.4}", self.label, self.value)
    }
}

fn config(system: SystemKind, scale: Scale) -> SimConfig {
    SimConfig::for_system(system, scale.scale_shift).with_max_iterations(scale.max_iterations)
}

/// Vertex-centric run description at `scale`.
fn vc(d: Dataset, scale: Scale, alg: Algorithm, cfg: SimConfig) -> RunConfig {
    RunConfig::new(
        d,
        scale.scale_shift,
        scale.seed,
        alg,
        TraversalKind::VertexCentric,
        cfg,
    )
}

/// Edge-centric run description at `scale`.
fn ec(d: Dataset, scale: Scale, alg: Algorithm, cfg: SimConfig) -> RunConfig {
    RunConfig::new(
        d,
        scale.scale_shift,
        scale.seed,
        alg,
        TraversalKind::EdgeCentric,
        cfg,
    )
}

/// Geometric mean with values clamped to `1e-12` (0.0 for an empty slice) — the
/// aggregation every "GM" figure row uses. Exported so the bench harness's speedup
/// metrics aggregate exactly the way the figures themselves do.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Every figure/table name the reproduction knows, in the order `repro all` runs them.
pub const FIGURES: [&str; 17] = [
    "table2", "fig03", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19a", "fig19b", "fig20a", "fig20b", "area",
];

/// Builds the spec for `name` with the default dataset/algorithm selection the `repro`
/// binary uses; `None` for unknown names.
pub fn default_spec(name: &str, scale: Scale) -> Option<ExperimentSpec> {
    let datasets = Dataset::REAL_WORLD;
    let algorithms = Algorithm::ALL;
    let one_alg = [Algorithm::PageRank, Algorithm::Bfs];
    Some(match name {
        "table2" => table2_spec(scale),
        "fig03" => fig03_spec(
            scale,
            &[Dataset::Twitter, Dataset::Sinaweibo, Dataset::Friendster],
        ),
        "fig09" => fig09_spec(),
        "fig10" => fig10_spec(scale, &datasets, &algorithms),
        "fig11" => fig11_spec(scale, &[Dataset::Sinaweibo, Dataset::Friendster], &one_alg),
        "fig12" => fig12_spec(scale, &datasets, &algorithms),
        "fig13" => fig13_spec(scale, &[Dataset::Sinaweibo], &algorithms),
        "fig14" => fig14_spec(scale, &[Dataset::Sinaweibo, Dataset::Friendster], &one_alg),
        "fig15" => fig15_spec(scale, Dataset::Sinaweibo, &algorithms),
        "fig16" => fig16_spec(scale, Dataset::Sinaweibo, &algorithms),
        "fig17" => fig17_spec(scale, Dataset::Sinaweibo, &algorithms),
        "fig18" => fig18_spec(scale),
        "fig19a" => fig19a_spec(scale, &datasets),
        "fig19b" => fig19b_spec(200_000),
        "fig20a" => fig20a_spec(scale, Dataset::Sinaweibo, &one_alg),
        "fig20b" => fig20b_spec(scale, &datasets),
        "area" => area_spec(),
        _ => return None,
    })
}

/// Resolves figure names to their default specs, preserving request order; unknown
/// names are returned separately so callers can report them. The resulting list is what
/// the `repro` binary hands to [`SweepRunner::run_campaign`](crate::campaign) as one
/// campaign.
pub fn default_specs(names: &[String], scale: Scale) -> (Vec<ExperimentSpec>, Vec<String>) {
    let mut specs = Vec::new();
    let mut unknown = Vec::new();
    for name in names {
        match default_spec(name, scale) {
            Some(spec) => specs.push(spec),
            None => unknown.push(name.clone()),
        }
    }
    (specs, unknown)
}

/// Fig. 3 — motivational experiment: useful vs unuseful off-chip traffic and RD/WR
/// transactions for BFS on the baseline, without tiling and with perfect tiling.
pub fn fig03_spec(scale: Scale, datasets: &[Dataset]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig03", "Fig. 3 (motivation)");
    for &d in datasets {
        for (mode, tiling) in [
            ("Non-Tiling", TilingPolicy::None),
            ("Perfect", TilingPolicy::Perfect),
        ] {
            let cfg = config(SystemKind::GraphDynsCache, scale)
                .with_tiling(tiling)
                .with_max_iterations(40);
            let h = b.sim(vc(d, scale, Algorithm::Bfs, cfg));
            b.point(format!("BFS/{}/{mode}/useful%", d.short_name()), move |r| {
                100.0 * r.run(h).mem_stats.useful_fraction()
            });
            b.point(format!("BFS/{}/{mode}/read_tx", d.short_name()), move |r| {
                r.run(h).mem_stats.read_transactions as f64
            });
            b.point(
                format!("BFS/{}/{mode}/write_tx", d.short_name()),
                move |r| r.run(h).mem_stats.write_transactions as f64,
            );
        }
    }
    b.build()
}

/// Fig. 3 rows (sequential execution of [`fig03_spec`]).
pub fn fig03(scale: Scale, datasets: &[Dataset]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig03_spec(scale, datasets))
}

/// One (stride pattern, stride) case of the Fig. 9 strided-read microbenchmark.
fn fig09_point(case: &'static str, span: u64, stride: u64) -> Point {
    use piccolo_dram::{AddressMapper, MemRequest, MemorySystem, Region};
    let cfg = DramConfig::new(MemoryKind::Ddr4X16, 1, 4);
    let mapper = AddressMapper::new(&cfg);
    let items = 16 * 1024 * 1024 / (stride * 8) / 64; // scaled-down 16 MB / 64
    let addr_of = |i: u64| i * stride * 8 * span.max(1);
    let mut conv = MemorySystem::new(cfg);
    let t_conv = conv
        .service_batch((0..items).map(|i| MemRequest::Read {
            addr: addr_of(i),
            useful_bytes: 8,
            region: Region::Other,
        }))
        .elapsed_clocks();
    let fim_cfg = DramConfig::new(MemoryKind::Ddr4X16, 1, 4).with_fim();
    let mut fim = MemorySystem::new(fim_cfg);
    let mut by_row: std::collections::BTreeMap<_, Vec<u16>> = std::collections::BTreeMap::new();
    let mut order = Vec::new();
    for i in 0..items {
        let a = addr_of(i);
        let loc = mapper.decompose(a);
        let row = mapper.row_id_of(&loc);
        by_row
            .entry(row)
            .or_insert_with(|| {
                order.push(row);
                Vec::new()
            })
            .push(loc.word_offset());
    }
    let mut reqs = Vec::new();
    for row in order {
        for chunk in by_row[&row].chunks(8) {
            reqs.push(MemRequest::GatherFim {
                row,
                offsets: chunk.to_vec(),
                region: Region::Other,
            });
        }
    }
    let t_fim = fim.service_batch(reqs).elapsed_clocks();
    Point {
        label: format!("{case}/stride{stride}/speedup"),
        value: t_conv as f64 / t_fim.max(1) as f64,
    }
}

/// Fig. 9 — strided-read microbenchmark on the DRAM model (single-row vs multi-row).
pub fn fig09_spec() -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig09", "Fig. 9 (FIM microbenchmark)");
    for (case, span) in [("single-row", 1u64), ("multi-row", 64)] {
        for stride in [4u64, 8, 16, 32] {
            b.measure(move || vec![fig09_point(case, span, stride)]);
        }
    }
    b.build()
}

/// Fig. 9 rows (sequential execution of [`fig09_spec`]).
pub fn fig09() -> Vec<Point> {
    SweepRunner::sequential().run(&fig09_spec())
}

/// Fig. 10 — overall speedup of every system over GraphDyns (Cache), per algorithm and
/// dataset, plus the geometric mean.
pub fn fig10_spec(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig10", "Fig. 10 (overall speedup)");
    let mut per_system: Vec<(SystemKind, Vec<(RunHandle, RunHandle)>)> =
        SystemKind::ALL.iter().map(|&s| (s, Vec::new())).collect();
    for &alg in algorithms {
        for &d in datasets {
            let base = b.sim(vc(d, scale, alg, config(SystemKind::GraphDynsCache, scale)));
            for system in SystemKind::ALL {
                let h = if system == SystemKind::GraphDynsCache {
                    base
                } else {
                    b.sim(vc(d, scale, alg, config(system, scale)))
                };
                per_system
                    .iter_mut()
                    .find(|(s, _)| *s == system)
                    .unwrap()
                    .1
                    .push((base, h));
                b.point(
                    format!("{}/{}/{}", alg.short_name(), d.short_name(), system.name()),
                    move |r| r.speedup(base, h),
                );
            }
        }
    }
    for (system, pairs) in per_system {
        b.point(format!("GM/{}", system.name()), move |r| {
            let speedups: Vec<f64> = pairs.iter().map(|&(bh, h)| r.speedup(bh, h)).collect();
            geomean(&speedups)
        });
    }
    b.build()
}

/// Fig. 10 rows (sequential execution of [`fig10_spec`]).
pub fn fig10(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig10_spec(scale, datasets, algorithms))
}

/// Fig. 11 — fine-grained cache designs on top of Piccolo-FIM, normalized to the
/// conventional-cache baseline.
pub fn fig11_spec(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig11", "Fig. 11 (cache designs)");
    for &alg in algorithms {
        for &d in datasets {
            let base = b.sim(vc(d, scale, alg, config(SystemKind::GraphDynsCache, scale)));
            for cache in CacheKind::FIG11 {
                let cfg = config(SystemKind::Piccolo, scale).with_cache(cache);
                let h = b.sim(vc(d, scale, alg, cfg));
                b.point(
                    format!("{}/{}/{}", alg.short_name(), d.short_name(), cache.name()),
                    move |r| r.speedup(base, h),
                );
            }
        }
    }
    b.build()
}

/// Fig. 11 rows (sequential execution of [`fig11_spec`]).
pub fn fig11(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig11_spec(scale, datasets, algorithms))
}

/// Fig. 12 — normalized off-chip memory accesses (reads and writes) of Piccolo relative
/// to the baseline.
pub fn fig12_spec(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig12", "Fig. 12 (memory accesses)");
    for &alg in algorithms {
        for &d in datasets {
            let base = b.sim(vc(d, scale, alg, config(SystemKind::GraphDynsCache, scale)));
            let pic = b.sim(vc(d, scale, alg, config(SystemKind::Piccolo, scale)));
            b.point(
                format!("{}/{}/read", alg.short_name(), d.short_name()),
                move |r| {
                    r.run(pic).mem_stats.read_transactions as f64
                        / r.run(base).mem_stats.total_transactions().max(1) as f64
                },
            );
            b.point(
                format!("{}/{}/write", alg.short_name(), d.short_name()),
                move |r| {
                    r.run(pic).mem_stats.write_transactions as f64
                        / r.run(base).mem_stats.total_transactions().max(1) as f64
                },
            );
        }
    }
    b.build()
}

/// Fig. 12 rows (sequential execution of [`fig12_spec`]).
pub fn fig12(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig12_spec(scale, datasets, algorithms))
}

/// Fig. 13 — off-chip and DRAM-internal bandwidth of the baseline, PIM and Piccolo.
pub fn fig13_spec(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig13", "Fig. 13 (bandwidth)");
    for &alg in algorithms {
        for &d in datasets {
            for system in [
                SystemKind::GraphDynsCache,
                SystemKind::Pim,
                SystemKind::Piccolo,
            ] {
                let h = b.sim(vc(d, scale, alg, config(system, scale)));
                b.point(
                    format!(
                        "{}/{}/{}/offchip GB-s",
                        alg.short_name(),
                        d.short_name(),
                        system.name()
                    ),
                    move |r| r.run(h).offchip_bandwidth_gbps(),
                );
                if system != SystemKind::GraphDynsCache {
                    b.point(
                        format!(
                            "{}/{}/{}/internal GB-s",
                            alg.short_name(),
                            d.short_name(),
                            system.name()
                        ),
                        move |r| r.run(h).internal_bandwidth_gbps(),
                    );
                }
            }
        }
    }
    b.build()
}

/// Fig. 13 rows (sequential execution of [`fig13_spec`]).
pub fn fig13(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig13_spec(scale, datasets, algorithms))
}

/// The Fig. 14 energy categories, keyed by the label fragment the figure uses.
const ENERGY_CATEGORIES: [&str; 6] = ["acc", "cache", "dram_rd", "dram_wr", "dram_io", "others"];

fn energy_component(e: &crate::report::EnergyBreakdown, name: &str) -> f64 {
    match name {
        "acc" => e.accelerator_nj,
        "cache" => e.cache_nj,
        "dram_rd" => e.dram_read_nj,
        "dram_wr" => e.dram_write_nj,
        "dram_io" => e.dram_io_nj,
        "others" => e.others_nj,
        _ => unreachable!("unknown energy category {name}"),
    }
}

/// Fig. 14 — normalized energy breakdown of Piccolo relative to the baseline.
pub fn fig14_spec(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig14", "Fig. 14 (energy)");
    for &alg in algorithms {
        for &d in datasets {
            let base_cfg = config(SystemKind::GraphDynsCache, scale);
            let pic_cfg = config(SystemKind::Piccolo, scale);
            let hb = b.sim(vc(d, scale, alg, base_cfg));
            let hp = b.sim(vc(d, scale, alg, pic_cfg));
            for name in ENERGY_CATEGORIES {
                b.point(
                    format!("{}/{}/base/{}", alg.short_name(), d.short_name(), name),
                    move |r| {
                        let base = SimReport::from_run(r.run(hb).clone(), &base_cfg.dram).energy;
                        energy_component(&base, name) / base.total_nj().max(1e-9)
                    },
                );
                b.point(
                    format!("{}/{}/piccolo/{}", alg.short_name(), d.short_name(), name),
                    move |r| {
                        let base = SimReport::from_run(r.run(hb).clone(), &base_cfg.dram).energy;
                        let pic = SimReport::from_run(r.run(hp).clone(), &pic_cfg.dram).energy;
                        energy_component(&pic, name) / base.total_nj().max(1e-9)
                    },
                );
            }
        }
    }
    b.build()
}

/// Fig. 14 rows (sequential execution of [`fig14_spec`]).
pub fn fig14(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig14_spec(scale, datasets, algorithms))
}

/// Fig. 15 — memory-type sensitivity (cycles, baseline vs Piccolo) on one dataset.
pub fn fig15_spec(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig15", "Fig. 15 (memory types)");
    for &alg in algorithms {
        for kind in MemoryKind::ALL {
            for system in [SystemKind::GraphDynsCache, SystemKind::Piccolo] {
                let mut dram = DramConfig::new(kind, 2, 4).with_row_bytes(1024);
                if system == SystemKind::Piccolo {
                    dram = dram.with_fim();
                }
                let cfg = config(system, scale).with_dram(dram);
                let h = b.sim(vc(dataset, scale, alg, cfg));
                b.point(
                    format!(
                        "{}/{}/{}/cycles",
                        alg.short_name(),
                        kind.name(),
                        system.name()
                    ),
                    move |r| r.run(h).accel_cycles as f64,
                );
            }
        }
    }
    b.build()
}

/// Fig. 15 rows (sequential execution of [`fig15_spec`]).
pub fn fig15(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig15_spec(scale, dataset, algorithms))
}

/// Fig. 16 — channel/rank sensitivity (cycles) on one dataset.
pub fn fig16_spec(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig16", "Fig. 16 (channels/ranks)");
    for &alg in algorithms {
        for channels in [1u32, 2] {
            for ranks in [1u32, 2, 4] {
                for system in [SystemKind::GraphDynsCache, SystemKind::Piccolo] {
                    let mut dram =
                        DramConfig::new(MemoryKind::Ddr4X16, channels, ranks).with_row_bytes(1024);
                    if system == SystemKind::Piccolo {
                        dram = dram.with_fim();
                    }
                    let cfg = config(system, scale).with_dram(dram);
                    let h = b.sim(vc(dataset, scale, alg, cfg));
                    b.point(
                        format!(
                            "{}/ch{}ra{}/{}/cycles",
                            alg.short_name(),
                            channels,
                            ranks,
                            system.name()
                        ),
                        move |r| r.run(h).accel_cycles as f64,
                    );
                }
            }
        }
    }
    b.build()
}

/// Fig. 16 rows (sequential execution of [`fig16_spec`]).
pub fn fig16(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig16_spec(scale, dataset, algorithms))
}

/// Fig. 17 — tile-size sensitivity (normalized cycles vs scaling factor) on one dataset.
pub fn fig17_spec(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig17", "Fig. 17 (tile size)");
    for &alg in algorithms {
        let base_ref = b.sim(vc(
            dataset,
            scale,
            alg,
            config(SystemKind::GraphDynsCache, scale).with_tiling(TilingPolicy::Perfect),
        ));
        for factor in [1u32, 2, 4, 8, 16] {
            for system in [SystemKind::GraphDynsCache, SystemKind::Piccolo] {
                let cfg = config(system, scale).with_tiling(TilingPolicy::Scaled(factor));
                let h = b.sim(vc(dataset, scale, alg, cfg));
                b.point(
                    format!(
                        "{}/x{}/{}/norm-cycles",
                        alg.short_name(),
                        factor,
                        system.name()
                    ),
                    move |r| {
                        r.run(h).accel_cycles as f64 / r.run(base_ref).accel_cycles.max(1) as f64
                    },
                );
            }
        }
    }
    b.build()
}

/// Fig. 17 rows (sequential execution of [`fig17_spec`]).
pub fn fig17(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig17_spec(scale, dataset, algorithms))
}

/// Fig. 18 — synthetic-graph speedups (PR) over the baseline for Watts–Strogatz and
/// Kronecker stand-ins at increasing scales.
pub fn fig18_spec(scale: Scale) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig18", "Fig. 18 (synthetic graphs)");
    let datasets = [
        Dataset::WattsStrogatz { scale: 26 },
        Dataset::WattsStrogatz { scale: 27 },
        Dataset::Kronecker { scale: 25 },
        Dataset::Kronecker { scale: 26 },
        Dataset::Kronecker { scale: 27 },
        Dataset::Kronecker { scale: 28 },
    ];
    for d in datasets {
        let base = b.sim(vc(
            d,
            scale,
            Algorithm::PageRank,
            config(SystemKind::GraphDynsCache, scale),
        ));
        for system in [
            SystemKind::GraphDynsSpm,
            SystemKind::GraphDynsCache,
            SystemKind::Nmp,
            SystemKind::Pim,
            SystemKind::Piccolo,
        ] {
            let h = if system == SystemKind::GraphDynsCache {
                base
            } else {
                b.sim(vc(d, scale, Algorithm::PageRank, config(system, scale)))
            };
            b.point(
                format!("PR/{}/{}", d.short_name(), system.name()),
                move |r| r.speedup(base, h),
            );
        }
    }
    b.build()
}

/// Fig. 18 rows (sequential execution of [`fig18_spec`]).
pub fn fig18(scale: Scale) -> Vec<Point> {
    SweepRunner::sequential().run(&fig18_spec(scale))
}

/// Fig. 19a — edge-centric vs vertex-centric, conventional vs Piccolo (PR speedup over
/// the vertex-centric conventional baseline).
pub fn fig19a_spec(scale: Scale, datasets: &[Dataset]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig19a", "Fig. 19a (edge-centric)");
    for &d in datasets {
        let alg = Algorithm::PageRank;
        let vc_base = b.sim(vc(d, scale, alg, config(SystemKind::GraphDynsCache, scale)));
        let vc_pic = b.sim(vc(d, scale, alg, config(SystemKind::Piccolo, scale)));
        let ec_base = b.sim(ec(d, scale, alg, config(SystemKind::GraphDynsCache, scale)));
        let ec_pic = b.sim(ec(d, scale, alg, config(SystemKind::Piccolo, scale)));
        for (name, h) in [
            ("VC/Conventional", vc_base),
            ("VC/Piccolo", vc_pic),
            ("EC/Conventional", ec_base),
            ("EC/Piccolo", ec_pic),
        ] {
            b.point(format!("PR/{}/{}", d.short_name(), name), move |r| {
                r.speedup(vc_base, h)
            });
        }
    }
    b.build()
}

/// Fig. 19a rows (sequential execution of [`fig19a_spec`]).
pub fn fig19a(scale: Scale, datasets: &[Dataset]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig19a_spec(scale, datasets))
}

/// Fig. 19b — OLAP column-scan speedups (Qa–Qd).
pub fn fig19b_spec(tuples: u64) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig19b", "Fig. 19b (OLAP)");
    for q in OlapQuery::suite(tuples) {
        b.measure(move || {
            vec![Point {
                label: format!("OLAP/{}", q.name),
                value: olap::speedup(&q, DramConfig::ddr4_2400_x16()),
            }]
        });
    }
    b.build()
}

/// Fig. 19b rows (sequential execution of [`fig19b_spec`]).
pub fn fig19b(tuples: u64) -> Vec<Point> {
    SweepRunner::sequential().run(&fig19b_spec(tuples))
}

/// Fig. 20a — enhanced FIM designs on DDR4x4 and HBM (speedup over the baseline).
pub fn fig20a_spec(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig20a", "Fig. 20a (enhanced designs)");
    for &alg in algorithms {
        for kind in [MemoryKind::Ddr4X4, MemoryKind::Hbm] {
            let base_cfg = config(SystemKind::GraphDynsCache, scale)
                .with_dram(DramConfig::new(kind, 2, 4).with_row_bytes(1024));
            let base = b.sim(vc(dataset, scale, alg, base_cfg));
            for (name, enhanced) in [("Piccolo", false), ("Piccolo enhanced", true)] {
                let mut dram = DramConfig::new(kind, 2, 4).with_row_bytes(1024);
                dram = if enhanced {
                    dram.with_enhanced_fim()
                } else {
                    dram.with_fim()
                };
                let cfg = config(SystemKind::Piccolo, scale).with_dram(dram);
                let h = b.sim(vc(dataset, scale, alg, cfg));
                b.point(
                    format!("{}/{}/{}", alg.short_name(), kind.name(), name),
                    move |r| r.speedup(base, h),
                );
            }
        }
    }
    b.build()
}

/// Fig. 20a rows (sequential execution of [`fig20a_spec`]).
pub fn fig20a(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig20a_spec(scale, dataset, algorithms))
}

/// Fig. 20b — effect of disabling prefetching (normalized performance, PR).
pub fn fig20b_spec(scale: Scale, datasets: &[Dataset]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("fig20b", "Fig. 20b (prefetch disabled)");
    for &d in datasets {
        let with = b.sim(vc(
            d,
            scale,
            Algorithm::PageRank,
            config(SystemKind::Piccolo, scale),
        ));
        let without = b.sim(vc(
            d,
            scale,
            Algorithm::PageRank,
            config(SystemKind::Piccolo, scale).without_prefetch(),
        ));
        b.point(
            format!("PR/{}/no-prefetch norm-perf", d.short_name()),
            move |r| r.run(with).accel_cycles as f64 / r.run(without).accel_cycles.max(1) as f64,
        );
    }
    b.build()
}

/// Fig. 20b rows (sequential execution of [`fig20b_spec`]).
pub fn fig20b(scale: Scale, datasets: &[Dataset]) -> Vec<Point> {
    SweepRunner::sequential().run(&fig20b_spec(scale, datasets))
}

/// External datasets — the configurable figure subset `repro --external` runs over
/// loaded graphs: PR and BFS on both traversal engines, conventional baseline vs
/// Piccolo, every row a speedup over that algorithm's vertex-centric conventional run
/// (the Fig. 19a convention). `datasets` are [`Dataset::External`] handles from
/// [`piccolo_graph::external::register`], but any dataset works.
pub fn external_spec(scale: Scale, datasets: &[Dataset]) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("external", "External datasets (PR+BFS, both engines)");
    for &d in datasets {
        for alg in [Algorithm::PageRank, Algorithm::Bfs] {
            let vc_base = b.sim(vc(d, scale, alg, config(SystemKind::GraphDynsCache, scale)));
            let vc_pic = b.sim(vc(d, scale, alg, config(SystemKind::Piccolo, scale)));
            let ec_base = b.sim(ec(d, scale, alg, config(SystemKind::GraphDynsCache, scale)));
            let ec_pic = b.sim(ec(d, scale, alg, config(SystemKind::Piccolo, scale)));
            for (name, h) in [
                ("VC/Conventional", vc_base),
                ("VC/Piccolo", vc_pic),
                ("EC/Conventional", ec_base),
                ("EC/Piccolo", ec_pic),
            ] {
                b.point(
                    format!("{}/{}/{}", alg.short_name(), d.short_name(), name),
                    move |r| r.speedup(vc_base, h),
                );
            }
        }
    }
    b.build()
}

/// External-dataset rows (sequential execution of [`external_spec`]).
pub fn external(scale: Scale, datasets: &[Dataset]) -> Vec<Point> {
    SweepRunner::sequential().run(&external_spec(scale, datasets))
}

/// Table II — dataset inventory (paper sizes vs stand-in sizes).
pub fn table2_spec(scale: Scale) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("table2", "Table II (datasets)");
    for d in Dataset::REAL_WORLD {
        b.measure(move || {
            let spec = d.spec();
            let g = d.build(scale.scale_shift, scale.seed);
            vec![
                Point {
                    label: format!("{}/paper-edges", d.short_name()),
                    value: spec.paper_edges as f64,
                },
                Point {
                    label: format!("{}/standin-edges", d.short_name()),
                    value: g.num_edges() as f64,
                },
                Point {
                    label: format!("{}/standin-avg-degree", d.short_name()),
                    value: g.average_degree(),
                },
            ]
        });
    }
    b.build()
}

/// Table II rows (sequential execution of [`table2_spec`]).
pub fn table2(scale: Scale) -> Vec<Point> {
    SweepRunner::sequential().run(&table2_spec(scale))
}

/// Section VII-F — area report rows (accelerator area, DRAM die and tag overheads).
pub fn area_spec() -> ExperimentSpec {
    let mut b = ExperimentSpec::builder("area", "Area (Section VII-F)");
    b.measure(|| {
        let a = crate::report::area_report();
        vec![
            Point {
                label: "baseline accelerator/mm2".to_string(),
                value: a.baseline_accelerator_mm2,
            },
            Point {
                label: "piccolo accelerator/mm2".to_string(),
                value: a.piccolo_accelerator_mm2,
            },
            Point {
                label: "onchip overhead/%".to_string(),
                value: 100.0 * a.onchip_overhead_fraction,
            },
            Point {
                label: "DRAM die overhead/%".to_string(),
                value: 100.0 * a.dram_overhead_fraction,
            },
            Point {
                label: "piccolo-cache tag overhead/%".to_string(),
                value: 100.0 * a.piccolo_tag_overhead,
            },
            Point {
                label: "8B-line cache tag overhead/%".to_string(),
                value: 100.0 * a.line8_tag_overhead,
            },
        ]
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            scale_shift: 15,
            seed: 3,
            max_iterations: 2,
        }
    }

    #[test]
    fn fig10_reports_all_systems_and_gm() {
        let pts = fig10(tiny(), &[Dataset::Sinaweibo], &[Algorithm::Bfs]);
        assert_eq!(pts.len(), 6 + 6);
        let gm_piccolo = pts
            .iter()
            .find(|p| p.label == "GM/Piccolo")
            .expect("GM row present");
        assert!(gm_piccolo.value > 0.5);
        let base = pts
            .iter()
            .find(|p| p.label == "GM/GraphDyns (Cache)")
            .unwrap();
        assert!((base.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig09_single_row_speedup_is_large() {
        let pts = fig09();
        let p = pts
            .iter()
            .find(|p| p.label == "single-row/stride8/speedup")
            .unwrap();
        assert!(p.value > 2.0, "{}", p.value);
        assert!(!format!("{p}").is_empty());
    }

    #[test]
    fn fig19b_olap_speedups_are_positive() {
        let pts = fig19b(20_000);
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|p| p.value > 1.0));
    }

    #[test]
    fn table2_preserves_relative_sizes() {
        let pts = table2(tiny());
        assert_eq!(pts.len(), 15);
    }

    #[test]
    fn default_spec_covers_every_figure() {
        for name in FIGURES {
            let spec = default_spec(name, tiny()).expect(name);
            assert_eq!(spec.name(), name);
            assert!(!spec.title().is_empty());
        }
        assert!(default_spec("fig99", tiny()).is_none());
    }

    #[test]
    fn default_specs_resolves_known_names_and_reports_unknown_ones() {
        let names: Vec<String> = ["fig10", "fig99", "table2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (specs, unknown) = default_specs(&names, tiny());
        assert_eq!(
            specs.iter().map(ExperimentSpec::name).collect::<Vec<_>>(),
            ["fig10", "table2"]
        );
        assert_eq!(unknown, ["fig99"]);
    }

    #[test]
    fn external_spec_covers_both_algorithms_and_engines() {
        use piccolo_graph::{external, generate};

        let ds = external::register("experiments-test-ext", generate::kronecker(10, 4, 31));
        let spec = external_spec(tiny(), &[ds]);
        assert_eq!(spec.name(), "external");
        assert_eq!(spec.num_runs(), 2 * 4); // PR+BFS x {VC,EC} x {base,Piccolo}
        let pts = SweepRunner::sequential().run(&spec);
        assert_eq!(pts.len(), 8);
        for alg in ["PR", "BFS"] {
            let base = pts
                .iter()
                .find(|p| p.label == format!("{alg}/experiments-test-ext/VC/Conventional"))
                .expect("baseline row present");
            assert!(
                (base.value - 1.0).abs() < 1e-9,
                "{}: {}",
                base.label,
                base.value
            );
        }
        assert!(pts.iter().all(|p| p.value > 0.0));
    }

    #[test]
    fn parallel_figure_output_matches_sequential() {
        // The acceptance-critical property at figure granularity: a parallel sweep of a
        // real figure produces the exact same rows as the sequential reference.
        let spec = fig10_spec(tiny(), &[Dataset::Sinaweibo], &[Algorithm::Bfs]);
        let seq = SweepRunner::sequential().run(&spec);
        let par = SweepRunner::new(8).run(&spec);
        assert_eq!(seq, par);
        let spec17 = fig17_spec(tiny(), Dataset::Sinaweibo, &[Algorithm::Bfs]);
        assert_eq!(
            SweepRunner::sequential().run(&spec17),
            SweepRunner::new(3).run(&spec17)
        );
    }
}
