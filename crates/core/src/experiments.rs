//! Experiment drivers reproducing every table and figure of the paper's evaluation.
//!
//! Each function runs the corresponding experiment at a configurable [`Scale`] and returns
//! printable rows; the `piccolo-bench` crate exposes them as binaries (one per figure) and
//! as Criterion benchmarks. `EXPERIMENTS.md` records the expected shapes and the values
//! measured with the default scale.

use crate::olap::{self, OlapQuery};
use crate::report::SimReport;
use piccolo_accel::{
    simulate, simulate_edge_centric, CacheKind, RunResult, SimConfig, SystemKind, TilingPolicy,
};
use piccolo_algo::{Algorithm, Bfs, ConnectedComponents, PageRank, Sssp, Sswp, VertexProgram};
use piccolo_dram::{DramConfig, MemoryKind};
use piccolo_graph::{Csr, Dataset};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Right shift applied to the paper's dataset sizes (and to the on-chip structures).
    pub scale_shift: u32,
    /// RNG seed for the synthetic stand-ins.
    pub seed: u64,
    /// Iteration cap per run.
    pub max_iterations: u32,
}

impl Scale {
    /// A quick scale suitable for CI and Criterion benches (seconds per figure).
    pub fn quick() -> Self {
        Self {
            scale_shift: 13,
            seed: 7,
            max_iterations: 3,
        }
    }

    /// The default reproduction scale (datasets shrunk 4096x, a few minutes per figure).
    pub fn default_repro() -> Self {
        Self {
            scale_shift: 12,
            seed: 7,
            max_iterations: 5,
        }
    }
}

/// One measured data point: a label (matching the paper's x-axis) and a value.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Row label, e.g. "PR/TW/Piccolo".
    pub label: String,
    /// Value (speedup, cycles, GB/s, normalized energy ... depending on the figure).
    pub value: f64,
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:<40} {:>12.4}", self.label, self.value)
    }
}

fn run_algorithm(graph: &Csr, alg: Algorithm, cfg: &SimConfig) -> RunResult {
    match alg {
        Algorithm::PageRank => simulate(graph, &PageRank::default(), cfg),
        Algorithm::Bfs => simulate(graph, &Bfs::new(0), cfg),
        Algorithm::ConnectedComponents => simulate(graph, &ConnectedComponents::new(), cfg),
        Algorithm::Sssp => simulate(graph, &Sssp::new(0), cfg),
        Algorithm::Sswp => simulate(graph, &Sswp::new(0), cfg),
    }
}

fn run_algorithm_ec<P: VertexProgram>(graph: &Csr, program: &P, cfg: &SimConfig) -> RunResult {
    simulate_edge_centric(graph, program, cfg)
}

fn config(system: SystemKind, scale: Scale) -> SimConfig {
    SimConfig::for_system(system, scale.scale_shift).with_max_iterations(scale.max_iterations)
}

fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Fig. 3 — motivational experiment: useful vs unuseful off-chip traffic and RD/WR
/// transactions for BFS on the baseline, without tiling and with perfect tiling.
pub fn fig03(scale: Scale, datasets: &[Dataset]) -> Vec<Point> {
    let mut out = Vec::new();
    for d in datasets {
        let g = d.build(scale.scale_shift, scale.seed);
        for (mode, tiling) in [
            ("Non-Tiling", TilingPolicy::None),
            ("Perfect", TilingPolicy::Perfect),
        ] {
            let cfg = config(SystemKind::GraphDynsCache, scale)
                .with_tiling(tiling)
                .with_max_iterations(40);
            let r = run_algorithm(&g, Algorithm::Bfs, &cfg);
            out.push(Point {
                label: format!("BFS/{}/{mode}/useful%", d.short_name()),
                value: 100.0 * r.mem_stats.useful_fraction(),
            });
            out.push(Point {
                label: format!("BFS/{}/{mode}/read_tx", d.short_name()),
                value: r.mem_stats.read_transactions as f64,
            });
            out.push(Point {
                label: format!("BFS/{}/{mode}/write_tx", d.short_name()),
                value: r.mem_stats.write_transactions as f64,
            });
        }
    }
    out
}

/// Fig. 9 — strided-read microbenchmark on the DRAM model (single-row vs multi-row).
pub fn fig09() -> Vec<Point> {
    use piccolo_dram::{AddressMapper, MemRequest, MemorySystem, Region};
    let mut out = Vec::new();
    for (case, span) in [("single-row", 1u64), ("multi-row", 64)] {
        for stride in [4u64, 8, 16, 32] {
            let cfg = DramConfig::new(MemoryKind::Ddr4X16, 1, 4);
            let mapper = AddressMapper::new(&cfg);
            let items = 16 * 1024 * 1024 / (stride * 8) / 64; // scaled-down 16 MB / 64
            let addr_of = |i: u64| i * stride * 8 * span.max(1);
            let mut conv = MemorySystem::new(cfg);
            let t_conv = conv
                .service_batch((0..items).map(|i| MemRequest::Read {
                    addr: addr_of(i),
                    useful_bytes: 8,
                    region: Region::Other,
                }))
                .elapsed_clocks();
            let fim_cfg = DramConfig::new(MemoryKind::Ddr4X16, 1, 4).with_fim();
            let mut fim = MemorySystem::new(fim_cfg);
            let mut by_row: std::collections::HashMap<_, Vec<u16>> =
                std::collections::HashMap::new();
            let mut order = Vec::new();
            for i in 0..items {
                let a = addr_of(i);
                let loc = mapper.decompose(a);
                let row = mapper.row_id_of(&loc);
                by_row
                    .entry(row)
                    .or_insert_with(|| {
                        order.push(row);
                        Vec::new()
                    })
                    .push(loc.word_offset());
            }
            let mut reqs = Vec::new();
            for row in order {
                for chunk in by_row[&row].chunks(8) {
                    reqs.push(MemRequest::GatherFim {
                        row,
                        offsets: chunk.to_vec(),
                        region: Region::Other,
                    });
                }
            }
            let t_fim = fim.service_batch(reqs).elapsed_clocks();
            out.push(Point {
                label: format!("{case}/stride{stride}/speedup"),
                value: t_conv as f64 / t_fim.max(1) as f64,
            });
        }
    }
    out
}

/// Fig. 10 — overall speedup of every system over GraphDyns (Cache), per algorithm and
/// dataset, plus the geometric mean.
pub fn fig10(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> Vec<Point> {
    let mut out = Vec::new();
    let mut per_system_speedups: std::collections::HashMap<&'static str, Vec<f64>> =
        std::collections::HashMap::new();
    for alg in algorithms {
        for d in datasets {
            let g = d.build(scale.scale_shift, scale.seed);
            let base = run_algorithm(&g, *alg, &config(SystemKind::GraphDynsCache, scale));
            for system in SystemKind::ALL {
                let r = if system == SystemKind::GraphDynsCache {
                    base.clone()
                } else {
                    run_algorithm(&g, *alg, &config(system, scale))
                };
                let speedup = base.accel_cycles as f64 / r.accel_cycles.max(1) as f64;
                per_system_speedups
                    .entry(system.name())
                    .or_default()
                    .push(speedup);
                out.push(Point {
                    label: format!("{}/{}/{}", alg.short_name(), d.short_name(), system.name()),
                    value: speedup,
                });
            }
        }
    }
    for system in SystemKind::ALL {
        out.push(Point {
            label: format!("GM/{}", system.name()),
            value: geomean(&per_system_speedups[system.name()]),
        });
    }
    out
}

/// Fig. 11 — fine-grained cache designs on top of Piccolo-FIM, normalized to the
/// conventional-cache baseline.
pub fn fig11(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> Vec<Point> {
    let mut out = Vec::new();
    for alg in algorithms {
        for d in datasets {
            let g = d.build(scale.scale_shift, scale.seed);
            let base = run_algorithm(&g, *alg, &config(SystemKind::GraphDynsCache, scale));
            for cache in CacheKind::FIG11 {
                let cfg = config(SystemKind::Piccolo, scale).with_cache(cache);
                let r = run_algorithm(&g, *alg, &cfg);
                out.push(Point {
                    label: format!("{}/{}/{}", alg.short_name(), d.short_name(), cache.name()),
                    value: base.accel_cycles as f64 / r.accel_cycles.max(1) as f64,
                });
            }
        }
    }
    out
}

/// Fig. 12 — normalized off-chip memory accesses (reads and writes) of Piccolo relative
/// to the baseline.
pub fn fig12(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> Vec<Point> {
    let mut out = Vec::new();
    for alg in algorithms {
        for d in datasets {
            let g = d.build(scale.scale_shift, scale.seed);
            let base = run_algorithm(&g, *alg, &config(SystemKind::GraphDynsCache, scale));
            let pic = run_algorithm(&g, *alg, &config(SystemKind::Piccolo, scale));
            let total_base = base.mem_stats.total_transactions().max(1) as f64;
            out.push(Point {
                label: format!("{}/{}/read", alg.short_name(), d.short_name()),
                value: pic.mem_stats.read_transactions as f64 / total_base,
            });
            out.push(Point {
                label: format!("{}/{}/write", alg.short_name(), d.short_name()),
                value: pic.mem_stats.write_transactions as f64 / total_base,
            });
        }
    }
    out
}

/// Fig. 13 — off-chip and DRAM-internal bandwidth of the baseline, PIM and Piccolo.
pub fn fig13(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> Vec<Point> {
    let mut out = Vec::new();
    for alg in algorithms {
        for d in datasets {
            let g = d.build(scale.scale_shift, scale.seed);
            for system in [
                SystemKind::GraphDynsCache,
                SystemKind::Pim,
                SystemKind::Piccolo,
            ] {
                let r = run_algorithm(&g, *alg, &config(system, scale));
                out.push(Point {
                    label: format!(
                        "{}/{}/{}/offchip GB-s",
                        alg.short_name(),
                        d.short_name(),
                        system.name()
                    ),
                    value: r.offchip_bandwidth_gbps(),
                });
                if system != SystemKind::GraphDynsCache {
                    out.push(Point {
                        label: format!(
                            "{}/{}/{}/internal GB-s",
                            alg.short_name(),
                            d.short_name(),
                            system.name()
                        ),
                        value: r.internal_bandwidth_gbps(),
                    });
                }
            }
        }
    }
    out
}

/// Fig. 14 — normalized energy breakdown of Piccolo relative to the baseline.
pub fn fig14(scale: Scale, datasets: &[Dataset], algorithms: &[Algorithm]) -> Vec<Point> {
    let mut out = Vec::new();
    for alg in algorithms {
        for d in datasets {
            let g = d.build(scale.scale_shift, scale.seed);
            let base_cfg = config(SystemKind::GraphDynsCache, scale);
            let pic_cfg = config(SystemKind::Piccolo, scale);
            let base = SimReport::from_run(run_algorithm(&g, *alg, &base_cfg), &base_cfg.dram);
            let pic = SimReport::from_run(run_algorithm(&g, *alg, &pic_cfg), &pic_cfg.dram);
            let denom = base.energy.total_nj().max(1e-9);
            for (name, b, p) in [
                ("acc", base.energy.accelerator_nj, pic.energy.accelerator_nj),
                ("cache", base.energy.cache_nj, pic.energy.cache_nj),
                ("dram_rd", base.energy.dram_read_nj, pic.energy.dram_read_nj),
                (
                    "dram_wr",
                    base.energy.dram_write_nj,
                    pic.energy.dram_write_nj,
                ),
                ("dram_io", base.energy.dram_io_nj, pic.energy.dram_io_nj),
                ("others", base.energy.others_nj, pic.energy.others_nj),
            ] {
                out.push(Point {
                    label: format!("{}/{}/base/{}", alg.short_name(), d.short_name(), name),
                    value: b / denom,
                });
                out.push(Point {
                    label: format!("{}/{}/piccolo/{}", alg.short_name(), d.short_name(), name),
                    value: p / denom,
                });
            }
        }
    }
    out
}

/// Fig. 15 — memory-type sensitivity (cycles, baseline vs Piccolo) on one dataset.
pub fn fig15(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> Vec<Point> {
    let mut out = Vec::new();
    let g = dataset.build(scale.scale_shift, scale.seed);
    for alg in algorithms {
        for kind in MemoryKind::ALL {
            for system in [SystemKind::GraphDynsCache, SystemKind::Piccolo] {
                let mut dram = DramConfig::new(kind, 2, 4).with_row_bytes(1024);
                if system == SystemKind::Piccolo {
                    dram = dram.with_fim();
                }
                let cfg = config(system, scale).with_dram(dram);
                let r = run_algorithm(&g, *alg, &cfg);
                out.push(Point {
                    label: format!(
                        "{}/{}/{}/cycles",
                        alg.short_name(),
                        kind.name(),
                        system.name()
                    ),
                    value: r.accel_cycles as f64,
                });
            }
        }
    }
    out
}

/// Fig. 16 — channel/rank sensitivity (cycles) on one dataset.
pub fn fig16(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> Vec<Point> {
    let mut out = Vec::new();
    let g = dataset.build(scale.scale_shift, scale.seed);
    for alg in algorithms {
        for channels in [1u32, 2] {
            for ranks in [1u32, 2, 4] {
                for system in [SystemKind::GraphDynsCache, SystemKind::Piccolo] {
                    let mut dram =
                        DramConfig::new(MemoryKind::Ddr4X16, channels, ranks).with_row_bytes(1024);
                    if system == SystemKind::Piccolo {
                        dram = dram.with_fim();
                    }
                    let cfg = config(system, scale).with_dram(dram);
                    let r = run_algorithm(&g, *alg, &cfg);
                    out.push(Point {
                        label: format!(
                            "{}/ch{}ra{}/{}/cycles",
                            alg.short_name(),
                            channels,
                            ranks,
                            system.name()
                        ),
                        value: r.accel_cycles as f64,
                    });
                }
            }
        }
    }
    out
}

/// Fig. 17 — tile-size sensitivity (normalized cycles vs scaling factor) on one dataset.
pub fn fig17(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> Vec<Point> {
    let mut out = Vec::new();
    let g = dataset.build(scale.scale_shift, scale.seed);
    for alg in algorithms {
        let base_ref = run_algorithm(
            &g,
            *alg,
            &config(SystemKind::GraphDynsCache, scale).with_tiling(TilingPolicy::Perfect),
        );
        for factor in [1u32, 2, 4, 8, 16] {
            for system in [SystemKind::GraphDynsCache, SystemKind::Piccolo] {
                let cfg = config(system, scale).with_tiling(TilingPolicy::Scaled(factor));
                let r = run_algorithm(&g, *alg, &cfg);
                out.push(Point {
                    label: format!(
                        "{}/x{}/{}/norm-cycles",
                        alg.short_name(),
                        factor,
                        system.name()
                    ),
                    value: r.accel_cycles as f64 / base_ref.accel_cycles.max(1) as f64,
                });
            }
        }
    }
    out
}

/// Fig. 18 — synthetic-graph speedups (PR) over the baseline for Watts–Strogatz and
/// Kronecker stand-ins at increasing scales.
pub fn fig18(scale: Scale) -> Vec<Point> {
    let mut out = Vec::new();
    let datasets = [
        Dataset::WattsStrogatz { scale: 26 },
        Dataset::WattsStrogatz { scale: 27 },
        Dataset::Kronecker { scale: 25 },
        Dataset::Kronecker { scale: 26 },
        Dataset::Kronecker { scale: 27 },
        Dataset::Kronecker { scale: 28 },
    ];
    for d in datasets {
        let g = d.build(scale.scale_shift, scale.seed);
        let base = run_algorithm(
            &g,
            Algorithm::PageRank,
            &config(SystemKind::GraphDynsCache, scale),
        );
        for system in [
            SystemKind::GraphDynsSpm,
            SystemKind::GraphDynsCache,
            SystemKind::Nmp,
            SystemKind::Pim,
            SystemKind::Piccolo,
        ] {
            let r = if system == SystemKind::GraphDynsCache {
                base.clone()
            } else {
                run_algorithm(&g, Algorithm::PageRank, &config(system, scale))
            };
            out.push(Point {
                label: format!("PR/{}/{}", d.short_name(), system.name()),
                value: base.accel_cycles as f64 / r.accel_cycles.max(1) as f64,
            });
        }
    }
    out
}

/// Fig. 19a — edge-centric vs vertex-centric, conventional vs Piccolo (PR speedup over
/// the vertex-centric conventional baseline).
pub fn fig19a(scale: Scale, datasets: &[Dataset]) -> Vec<Point> {
    let mut out = Vec::new();
    for d in datasets {
        let g = d.build(scale.scale_shift, scale.seed);
        let pr = PageRank::default();
        let vc_base = run_algorithm(
            &g,
            Algorithm::PageRank,
            &config(SystemKind::GraphDynsCache, scale),
        );
        let vc_pic = run_algorithm(&g, Algorithm::PageRank, &config(SystemKind::Piccolo, scale));
        let ec_base = run_algorithm_ec(&g, &pr, &config(SystemKind::GraphDynsCache, scale));
        let ec_pic = run_algorithm_ec(&g, &pr, &config(SystemKind::Piccolo, scale));
        let denom = vc_base.accel_cycles.max(1) as f64;
        for (name, r) in [
            ("VC/Conventional", &vc_base),
            ("VC/Piccolo", &vc_pic),
            ("EC/Conventional", &ec_base),
            ("EC/Piccolo", &ec_pic),
        ] {
            out.push(Point {
                label: format!("PR/{}/{}", d.short_name(), name),
                value: denom / r.accel_cycles.max(1) as f64,
            });
        }
    }
    out
}

/// Fig. 19b — OLAP column-scan speedups (Qa–Qd).
pub fn fig19b(tuples: u64) -> Vec<Point> {
    OlapQuery::suite(tuples)
        .iter()
        .map(|q| Point {
            label: format!("OLAP/{}", q.name),
            value: olap::speedup(q, DramConfig::ddr4_2400_x16()),
        })
        .collect()
}

/// Fig. 20a — enhanced FIM designs on DDR4x4 and HBM (speedup over the baseline).
pub fn fig20a(scale: Scale, dataset: Dataset, algorithms: &[Algorithm]) -> Vec<Point> {
    let mut out = Vec::new();
    let g = dataset.build(scale.scale_shift, scale.seed);
    for alg in algorithms {
        for kind in [MemoryKind::Ddr4X4, MemoryKind::Hbm] {
            let base_cfg = config(SystemKind::GraphDynsCache, scale)
                .with_dram(DramConfig::new(kind, 2, 4).with_row_bytes(1024));
            let base = run_algorithm(&g, *alg, &base_cfg);
            for (name, enhanced) in [("Piccolo", false), ("Piccolo enhanced", true)] {
                let mut dram = DramConfig::new(kind, 2, 4).with_row_bytes(1024);
                dram = if enhanced {
                    dram.with_enhanced_fim()
                } else {
                    dram.with_fim()
                };
                let cfg = config(SystemKind::Piccolo, scale).with_dram(dram);
                let r = run_algorithm(&g, *alg, &cfg);
                out.push(Point {
                    label: format!("{}/{}/{}", alg.short_name(), kind.name(), name),
                    value: base.accel_cycles as f64 / r.accel_cycles.max(1) as f64,
                });
            }
        }
    }
    out
}

/// Fig. 20b — effect of disabling prefetching (normalized performance, PR).
pub fn fig20b(scale: Scale, datasets: &[Dataset]) -> Vec<Point> {
    let mut out = Vec::new();
    for d in datasets {
        let g = d.build(scale.scale_shift, scale.seed);
        let with = run_algorithm(&g, Algorithm::PageRank, &config(SystemKind::Piccolo, scale));
        let without = run_algorithm(
            &g,
            Algorithm::PageRank,
            &config(SystemKind::Piccolo, scale).without_prefetch(),
        );
        out.push(Point {
            label: format!("PR/{}/no-prefetch norm-perf", d.short_name()),
            value: with.accel_cycles as f64 / without.accel_cycles.max(1) as f64,
        });
    }
    out
}

/// Table II — dataset inventory (paper sizes vs stand-in sizes).
pub fn table2(scale: Scale) -> Vec<Point> {
    let mut out = Vec::new();
    for d in Dataset::REAL_WORLD {
        let spec = d.spec();
        let g = d.build(scale.scale_shift, scale.seed);
        out.push(Point {
            label: format!("{}/paper-edges", d.short_name()),
            value: spec.paper_edges as f64,
        });
        out.push(Point {
            label: format!("{}/standin-edges", d.short_name()),
            value: g.num_edges() as f64,
        });
        out.push(Point {
            label: format!("{}/standin-avg-degree", d.short_name()),
            value: g.average_degree(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            scale_shift: 15,
            seed: 3,
            max_iterations: 2,
        }
    }

    #[test]
    fn fig10_reports_all_systems_and_gm() {
        let pts = fig10(tiny(), &[Dataset::Sinaweibo], &[Algorithm::Bfs]);
        assert_eq!(pts.len(), 6 + 6);
        let gm_piccolo = pts
            .iter()
            .find(|p| p.label == "GM/Piccolo")
            .expect("GM row present");
        assert!(gm_piccolo.value > 0.5);
        let base = pts
            .iter()
            .find(|p| p.label == "GM/GraphDyns (Cache)")
            .unwrap();
        assert!((base.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig09_single_row_speedup_is_large() {
        let pts = fig09();
        let p = pts
            .iter()
            .find(|p| p.label == "single-row/stride8/speedup")
            .unwrap();
        assert!(p.value > 2.0, "{}", p.value);
        assert!(!format!("{p}").is_empty());
    }

    #[test]
    fn fig19b_olap_speedups_are_positive() {
        let pts = fig19b(20_000);
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|p| p.value > 1.0));
    }

    #[test]
    fn table2_preserves_relative_sizes() {
        let pts = table2(tiny());
        assert_eq!(pts.len(), 15);
    }
}
