//! End-to-end public API of the Piccolo reproduction.
//!
//! Piccolo (HPCA 2025) is a graph-processing accelerator built on three ideas:
//! **Piccolo-FIM** (in-DRAM random scatter/gather without arithmetic units),
//! **Piccolo-cache** (an 8 B-sector cache with split fine-grained tags) and a
//! **collection-extended MSHR** that turns same-row misses into single in-memory
//! operations. This crate exposes:
//!
//! * [`Simulation`] — a builder that runs one workload (graph x algorithm x system) and
//!   returns a [`SimReport`] with cycles, traffic and the Fig. 14 energy breakdown,
//! * [`experiments`] — declarative drivers ([`sweep::ExperimentSpec`]) reproducing every
//!   table and figure of the paper,
//! * [`sweep`] — the parallel design-space sweep engine (worker pool, deterministic
//!   result ordering) behind the `repro --jobs N` binary and the bench harness,
//! * [`campaign`] — the cross-figure campaign scheduler: one global work queue over all
//!   requested figures, building each distinct graph exactly once campaign-wide, with
//!   deterministic multi-process sharding ([`campaign::Shard`], [`campaign::merge_shards`])
//!   and journal-based incremental re-runs (`repro --shard` / `--merge` / `--resume`),
//! * [`json`] — the hand-rolled JSON writer/parser of the machine-readable results
//!   pipeline (`results.json`, `BENCH.json`, `baselines.json`),
//! * [`olap`] — the OLAP column-scan workload of Fig. 19b,
//! * [`report::area_report`] — the Section VII-F area numbers.
//!
//! # Quickstart
//!
//! ```
//! use piccolo::{Simulation, SystemKind};
//! use piccolo_algo::Bfs;
//! use piccolo_graph::generate;
//!
//! let graph = generate::kronecker(11, 4, 1);
//! let baseline = Simulation::new(SystemKind::GraphDynsCache).run(&graph, &Bfs::new(0));
//! let piccolo = Simulation::new(SystemKind::Piccolo).run(&graph, &Bfs::new(0));
//! assert!(piccolo.run.accel_cycles > 0);
//! let _speedup = piccolo.speedup_over(&baseline);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod experiments;
pub mod json;
pub mod olap;
pub mod report;
pub mod sweep;

pub use campaign::{
    merge_shards, plan_hash, CampaignRun, CampaignStats, ResumeRun, Shard, ShardRun,
};
pub use experiments::{Point, Scale};
pub use piccolo_accel::{
    intra_jobs, phase_profile, reset_phase_profile, set_intra_jobs, take_thread_phase_profile,
    CacheKind, PhaseBreakdown, PhaseProfile, SimConfig, SystemKind, TilingPolicy,
};
pub use report::{area_report, AreaReport, EnergyBreakdown, FigureRows, SimReport};
pub use sweep::{
    effective_unit_jobs, ExperimentSpec, GraphKey, RunConfig, SweepRunner, TraversalKind,
};

use piccolo_algo::VertexProgram;
use piccolo_graph::Csr;

/// Builder for a single end-to-end simulation.
#[derive(Debug, Clone)]
pub struct Simulation {
    cfg: SimConfig,
}

impl Simulation {
    /// Creates a simulation of `system` at the default scaled-down configuration.
    pub fn new(system: SystemKind) -> Self {
        Self {
            cfg: SimConfig::for_system(system, 12).with_max_iterations(40),
        }
    }

    /// Creates a simulation from an explicit configuration.
    pub fn with_config(cfg: SimConfig) -> Self {
        Self { cfg }
    }

    /// The configuration this simulation will use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Replaces the configuration (builder style).
    pub fn configure(mut self, f: impl FnOnce(SimConfig) -> SimConfig) -> Self {
        self.cfg = f(self.cfg);
        self
    }

    /// Runs `program` on `graph` and returns the full report.
    pub fn run<P>(&self, graph: &Csr, program: &P) -> SimReport
    where
        P: VertexProgram + Sync,
        P::Value: Send + Sync,
    {
        let result = piccolo_accel::simulate(graph, program, &self.cfg);
        SimReport::from_run(result, &self.cfg.dram)
    }

    /// Runs `program` with the edge-centric accelerator variant (Fig. 19a).
    pub fn run_edge_centric<P>(&self, graph: &Csr, program: &P) -> SimReport
    where
        P: VertexProgram + Sync,
        P::Value: Send + Sync,
    {
        let result = piccolo_accel::simulate_edge_centric(graph, program, &self.cfg);
        SimReport::from_run(result, &self.cfg.dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo_algo::Bfs;
    use piccolo_graph::generate;

    #[test]
    fn simulation_builder_runs_and_reports_energy() {
        let g = generate::kronecker(10, 4, 2);
        let rep = Simulation::new(SystemKind::Piccolo)
            .configure(|c| c.with_max_iterations(5))
            .run(&g, &Bfs::new(0));
        assert!(rep.run.accel_cycles > 0);
        assert!(rep.energy.total_nj() > 0.0);
        assert_eq!(rep.run.system, SystemKind::Piccolo);
    }

    #[test]
    fn edge_centric_builder_runs() {
        let g = generate::kronecker(9, 4, 2);
        let rep = Simulation::new(SystemKind::GraphDynsCache)
            .configure(|c| c.with_max_iterations(3))
            .run_edge_centric(&g, &Bfs::new(0));
        assert!(rep.run.accel_cycles > 0);
    }
}
