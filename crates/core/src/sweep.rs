//! Generic design-space sweep engine: declarative experiment grids executed by a
//! hand-rolled worker pool with deterministic result ordering.
//!
//! The paper's evaluation is dominated by sweeps over independent simulation runs
//! (systems x algorithms x datasets x cache designs x DRAM configurations). Each figure
//! used to be a hand-rolled sequential loop; this module splits every figure into
//!
//! 1. a **grid** of independent work units — fully-owned [`RunConfig`]s (one simulation
//!    each) or self-contained [`measure`](SpecBuilder::measure) closures (DRAM
//!    microbenchmarks, OLAP queries, dataset inventories), and
//! 2. a list of **derived points**: closures that compute each output row from the
//!    completed grid (speedups over a baseline run, geometric means, traffic ratios).
//!
//! An [`ExperimentSpec`] packages both; a [`SweepRunner`] executes the grid across a
//! scoped `std::thread` worker pool ([`run_indexed`]) and then evaluates the derived
//! points. Because every unit is independent and results are collected *by index*, the
//! output is bit-identical for any worker count — `--jobs 1` and `--jobs $(nproc)` must
//! (and do) produce the same bytes, which CI enforces.
//!
//! Execution itself lives in [`crate::campaign`]: [`SweepRunner::run`] is a campaign of
//! one figure, and [`SweepRunner::run_campaign`](crate::campaign) flattens many figures
//! into one global queue that builds each distinct graph exactly once campaign-wide.
//!
//! Like [`piccolo_graph::rng`], the pool is hand-rolled on `std` only: the build
//! environment has no access to crates.io, so there is no rayon/crossbeam here — just
//! `std::thread::scope`, an atomic work index and per-slot mutexes.
//!
//! # Example
//!
//! ```
//! use piccolo::sweep::{ExperimentSpec, RunConfig, SweepRunner, TraversalKind};
//! use piccolo::{SimConfig, SystemKind};
//! use piccolo_algo::Algorithm;
//! use piccolo_graph::Dataset;
//!
//! let mut b = ExperimentSpec::builder("demo", "BFS speedup demo");
//! let cfg = |s| SimConfig::for_system(s, 14).with_max_iterations(2);
//! let base = b.sim(RunConfig::new(
//!     Dataset::Sinaweibo, 14, 7, Algorithm::Bfs,
//!     TraversalKind::VertexCentric, cfg(SystemKind::GraphDynsCache),
//! ));
//! let pic = b.sim(RunConfig::new(
//!     Dataset::Sinaweibo, 14, 7, Algorithm::Bfs,
//!     TraversalKind::VertexCentric, cfg(SystemKind::Piccolo),
//! ));
//! b.point("BFS/SW/speedup", move |r| {
//!     r.run(base).accel_cycles as f64 / r.run(pic).accel_cycles.max(1) as f64
//! });
//! let spec = b.build();
//! let sequential = SweepRunner::sequential().run(&spec);
//! let parallel = SweepRunner::new(4).run(&spec);
//! assert_eq!(sequential, parallel); // deterministic for any worker count
//! ```

use crate::experiments::Point;
use piccolo_accel::{simulate, simulate_edge_centric, RunResult, SimConfig};
use piccolo_algo::{Algorithm, Bfs, ConnectedComponents, PageRank, Sssp, Sswp};
use piccolo_graph::{Csr, Dataset};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The graph-identity key `(dataset, scale_shift, seed)` under which the campaign
/// scheduler deduplicates graph builds: two runs with equal keys traverse the same
/// deterministic stand-in graph.
pub type GraphKey = (Dataset, u32, u64);

/// Which traversal order a run uses (Fig. 19a compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraversalKind {
    /// Destination-interval tiles walked by the active frontier (the default engine).
    VertexCentric,
    /// 2-D grid blocks streaming the whole edge set every iteration (Section VII-H).
    EdgeCentric,
}

/// A fully-owned description of one independent simulation run in a sweep grid.
///
/// Every field is a value (no borrows, no shared state): a `RunConfig` can be shipped to
/// any worker thread and executed there without touching anything but its own graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Graph to build (stand-in datasets are deterministic given shift and seed).
    pub dataset: Dataset,
    /// Right shift applied to the paper's dataset size.
    pub scale_shift: u32,
    /// RNG seed for the synthetic stand-in.
    pub seed: u64,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Traversal order.
    pub traversal: TraversalKind,
    /// Full simulation configuration (system, cache, DRAM, tiling, iteration cap).
    pub cfg: SimConfig,
}

impl RunConfig {
    /// Creates a run description.
    pub fn new(
        dataset: Dataset,
        scale_shift: u32,
        seed: u64,
        algorithm: Algorithm,
        traversal: TraversalKind,
        cfg: SimConfig,
    ) -> Self {
        Self {
            dataset,
            scale_shift,
            seed,
            algorithm,
            traversal,
            cfg,
        }
    }

    /// The graph-identity key under which each distinct graph is built exactly once
    /// across a whole campaign (see [`crate::campaign`]).
    pub fn graph_key(&self) -> GraphKey {
        (self.dataset, self.scale_shift, self.seed)
    }

    /// Executes this run against an already-built graph.
    pub fn execute(&self, graph: &Csr) -> RunResult {
        match (self.traversal, self.algorithm) {
            (TraversalKind::VertexCentric, Algorithm::PageRank) => {
                simulate(graph, &PageRank::default(), &self.cfg)
            }
            (TraversalKind::VertexCentric, Algorithm::Bfs) => {
                simulate(graph, &Bfs::new(0), &self.cfg)
            }
            (TraversalKind::VertexCentric, Algorithm::ConnectedComponents) => {
                simulate(graph, &ConnectedComponents::new(), &self.cfg)
            }
            (TraversalKind::VertexCentric, Algorithm::Sssp) => {
                simulate(graph, &Sssp::new(0), &self.cfg)
            }
            (TraversalKind::VertexCentric, Algorithm::Sswp) => {
                simulate(graph, &Sswp::new(0), &self.cfg)
            }
            (TraversalKind::EdgeCentric, Algorithm::PageRank) => {
                simulate_edge_centric(graph, &PageRank::default(), &self.cfg)
            }
            (TraversalKind::EdgeCentric, Algorithm::Bfs) => {
                simulate_edge_centric(graph, &Bfs::new(0), &self.cfg)
            }
            (TraversalKind::EdgeCentric, Algorithm::ConnectedComponents) => {
                simulate_edge_centric(graph, &ConnectedComponents::new(), &self.cfg)
            }
            (TraversalKind::EdgeCentric, Algorithm::Sssp) => {
                simulate_edge_centric(graph, &Sssp::new(0), &self.cfg)
            }
            (TraversalKind::EdgeCentric, Algorithm::Sswp) => {
                simulate_edge_centric(graph, &Sswp::new(0), &self.cfg)
            }
        }
    }
}

/// Opaque handle to a registered simulation run; index into the sweep's result vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunHandle(usize);

/// One independent unit of work in a sweep grid.
pub(crate) enum Unit {
    /// A full simulation run.
    Sim(Box<RunConfig>),
    /// A self-contained measurement producing points directly (microbenchmarks,
    /// analytical models, inventories).
    Measure(Box<dyn Fn() -> Vec<Point> + Send + Sync>),
}

impl std::fmt::Debug for Unit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unit::Sim(rc) => f.debug_tuple("Sim").field(rc).finish(),
            Unit::Measure(_) => f.write_str("Measure(..)"),
        }
    }
}

/// Output of one executed unit.
#[derive(Debug, Clone)]
pub(crate) enum UnitResult {
    Run(Box<RunResult>),
    Points(Vec<Point>),
}

/// One output row of a spec.
enum Output {
    /// A derived point: label plus a closure over the completed grid.
    Derived {
        label: String,
        compute: Box<dyn Fn(&SweepResults<'_>) -> f64 + Send + Sync>,
    },
    /// Splices in the points a `Measure` unit produced, in registration order.
    Splice(usize),
}

impl std::fmt::Debug for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Output::Derived { label, .. } => f.debug_tuple("Derived").field(label).finish(),
            Output::Splice(i) => f.debug_tuple("Splice").field(i).finish(),
        }
    }
}

/// Read-only view of a completed grid, handed to derived-point closures.
#[derive(Debug)]
pub struct SweepResults<'a> {
    units: &'a [UnitResult],
}

impl SweepResults<'_> {
    /// The result of a registered simulation run.
    pub fn run(&self, h: RunHandle) -> &RunResult {
        match &self.units[h.0] {
            UnitResult::Run(r) => r,
            UnitResult::Points(_) => unreachable!("RunHandle points at a measure unit"),
        }
    }

    /// Cycles-ratio speedup of `over` relative to `base` (i.e. `base cycles / over
    /// cycles`), the metric most figures report.
    pub fn speedup(&self, base: RunHandle, over: RunHandle) -> f64 {
        self.run(base).accel_cycles as f64 / self.run(over).accel_cycles.max(1) as f64
    }
}

/// A declarative experiment: a named grid of independent units plus the derived output
/// rows computed from the completed grid.
#[derive(Debug)]
pub struct ExperimentSpec {
    name: String,
    title: String,
    units: Vec<Unit>,
    outputs: Vec<Output>,
}

impl ExperimentSpec {
    /// Starts building a spec. `name` is the machine-readable identifier (`fig10`),
    /// `title` the human-readable heading (`Fig. 10 (overall speedup)`).
    pub fn builder(name: impl Into<String>, title: impl Into<String>) -> SpecBuilder {
        SpecBuilder {
            spec: ExperimentSpec {
                name: name.into(),
                title: title.into(),
                units: Vec::new(),
                outputs: Vec::new(),
            },
        }
    }

    /// Machine-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of independent units in the grid.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Number of full simulation runs in the grid.
    pub fn num_runs(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u, Unit::Sim(_)))
            .count()
    }

    /// The grid units, in registration order (the campaign scheduler flattens these
    /// into its global work queue).
    pub(crate) fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Folds a stable fingerprint of this spec — name, title, every unit's full
    /// configuration and every output row's shape — into `h`. Two spec lists with equal
    /// fingerprints (under the same [`crate::experiments::Scale`]) describe the same
    /// campaign plan, which is what lets shard files and run journals from separate
    /// processes be validated against each other (see [`crate::campaign::plan_hash`]).
    ///
    /// `Measure` closures are opaque, so they contribute only their position; the spec
    /// name plus the scale (hashed by the caller) pins their behavior in practice.
    pub(crate) fn fingerprint(&self, h: &mut piccolo_io::hash::Fnv64) {
        let mut fold = |s: &str| {
            h.update(s.as_bytes());
            h.update(b"\0");
        };
        fold("spec");
        fold(&self.name);
        fold(&self.title);
        for unit in &self.units {
            match unit {
                // RunConfig is plain data (enums, integers, floats); its Debug output
                // is deterministic across processes and toolchain runs.
                Unit::Sim(rc) => fold(&format!("sim {rc:?}")),
                Unit::Measure(_) => fold("measure"),
            }
        }
        for output in &self.outputs {
            match output {
                Output::Derived { label, .. } => fold(&format!("derived {label}")),
                Output::Splice(idx) => fold(&format!("splice {idx}")),
            }
        }
    }

    /// Evaluates the derived output rows from this spec's completed grid (`units[i]` is
    /// the result of `self.units()[i]`). Pure arithmetic — always sequential.
    pub(crate) fn evaluate(&self, units: &[UnitResult]) -> Vec<Point> {
        let view = SweepResults { units };
        let mut out = Vec::new();
        for output in &self.outputs {
            match output {
                Output::Derived { label, compute } => out.push(Point {
                    label: label.clone(),
                    value: compute(&view),
                }),
                Output::Splice(idx) => match &units[*idx] {
                    UnitResult::Points(pts) => out.extend(pts.iter().cloned()),
                    UnitResult::Run(_) => unreachable!("splice points at a sim unit"),
                },
            }
        }
        out
    }
}

/// Builder for an [`ExperimentSpec`].
#[derive(Debug)]
pub struct SpecBuilder {
    spec: ExperimentSpec,
}

impl SpecBuilder {
    /// Registers a simulation run and returns its handle for derived points.
    pub fn sim(&mut self, rc: RunConfig) -> RunHandle {
        self.spec.units.push(Unit::Sim(Box::new(rc)));
        RunHandle(self.spec.units.len() - 1)
    }

    /// Registers a derived output row: `compute` receives the completed grid.
    pub fn point(
        &mut self,
        label: impl Into<String>,
        compute: impl Fn(&SweepResults<'_>) -> f64 + Send + Sync + 'static,
    ) {
        self.spec.outputs.push(Output::Derived {
            label: label.into(),
            compute: Box::new(compute),
        });
    }

    /// Registers a self-contained measurement unit; the points it returns are spliced
    /// into the output at this position.
    pub fn measure(&mut self, f: impl Fn() -> Vec<Point> + Send + Sync + 'static) {
        self.spec.units.push(Unit::Measure(Box::new(f)));
        let idx = self.spec.units.len() - 1;
        self.spec.outputs.push(Output::Splice(idx));
    }

    /// Finishes the spec.
    pub fn build(self) -> ExperimentSpec {
        self.spec
    }
}

/// Executes `n` indexed tasks across up to `jobs` scoped worker threads and returns the
/// outputs in input order (slot `i` holds `task(i)`), independent of scheduling.
///
/// With `jobs <= 1` (or a single task) everything runs inline on the caller thread. A
/// panicking task stops its worker (the others drain the remaining queue), and once the
/// scope has joined every thread the caller resumes the panic of the **lowest-indexed**
/// failed task with its original payload — so panic propagation is as deterministic as
/// the results themselves.
pub fn run_indexed<T, F>(jobs: usize, n: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.min(n);
    if workers <= 1 {
        return (0..n).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i)));
                let failed = out.is_err();
                *slots[i].lock().unwrap() = Some(out);
                if failed {
                    break;
                }
            });
        }
    });
    let mut results = Vec::with_capacity(n);
    for slot in slots {
        // A `None` slot can only follow an earlier `Err` slot (workers claim indices in
        // increasing order and only stop early on panic), so it is never reached.
        match slot
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
            .expect("every worker stopped before claiming this slot")
        {
            Ok(v) => results.push(v),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    results
}

/// Splits a total thread budget between the two parallelism levels: unit-level
/// workers (this module's pool) and intra-run workers inside each simulation
/// ([`piccolo_accel::set_intra_jobs`]). `jobs == 0` means the machine's available
/// parallelism. The unit pool gets `jobs / intra_jobs` workers (at least one), so
/// `unit workers x intra workers` never exceeds the budget by more than rounding.
///
/// The split affects scheduling only — results are byte-identical for every
/// combination, which is what lets `repro --jobs N --intra-jobs M` pick any shape.
pub fn effective_unit_jobs(jobs: usize, intra_jobs: usize) -> usize {
    let total = if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    };
    (total / intra_jobs.max(1)).max(1)
}

/// Executes [`ExperimentSpec`]s over a worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with `jobs` workers; `0` means [`std::thread::available_parallelism`].
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        Self { jobs: jobs.max(1) }
    }

    /// A single-threaded runner (the reference execution order).
    pub fn sequential() -> Self {
        Self { jobs: 1 }
    }

    /// The worker count this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every unit of `spec` (sharded across the pool), then evaluates the derived
    /// points. Output is identical for every worker count.
    ///
    /// This is a campaign of one figure: the same scheduler that executes multi-figure
    /// campaigns ([`crate::campaign`]) runs the grid, so there is exactly one execution
    /// spine — graph builds are schedulable units and each distinct graph is built once.
    pub fn run(&self, spec: &ExperimentSpec) -> Vec<Point> {
        self.run_campaign(std::slice::from_ref(spec))
            .figures
            .pop()
            .expect("a campaign of one spec yields one figure")
            .points
    }
}

impl Default for SweepRunner {
    /// Defaults to all available cores.
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo_accel::SystemKind;

    fn demo_spec(units: usize) -> ExperimentSpec {
        let mut b = ExperimentSpec::builder("demo", "worker pool demo");
        for i in 0..units {
            b.measure(move || {
                vec![Point {
                    label: format!("unit{i}"),
                    value: i as f64,
                }]
            });
        }
        b.build()
    }

    #[test]
    fn ordering_is_deterministic_across_worker_counts() {
        let spec = demo_spec(23);
        let reference = SweepRunner::sequential().run(&spec);
        assert_eq!(reference.len(), 23);
        for jobs in [1, 2, 8] {
            let got = SweepRunner::new(jobs).run(&spec);
            assert_eq!(got, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn sim_grid_is_deterministic_across_worker_counts() {
        let mut b = ExperimentSpec::builder("sim-demo", "tiny sim grid");
        let cfg = |s| SimConfig::for_system(s, 15).with_max_iterations(2);
        let base = b.sim(RunConfig::new(
            Dataset::Sinaweibo,
            15,
            7,
            Algorithm::Bfs,
            TraversalKind::VertexCentric,
            cfg(SystemKind::GraphDynsCache),
        ));
        for system in [SystemKind::Piccolo, SystemKind::Pim] {
            let h = b.sim(RunConfig::new(
                Dataset::Sinaweibo,
                15,
                7,
                Algorithm::Bfs,
                TraversalKind::VertexCentric,
                cfg(system),
            ));
            b.point(format!("{}/speedup", system.name()), move |r| {
                r.speedup(base, h)
            });
        }
        let spec = b.build();
        assert_eq!(spec.num_runs(), 3);
        let seq = SweepRunner::sequential().run(&spec);
        let par = SweepRunner::new(8).run(&spec);
        assert_eq!(seq, par);
        assert!(seq.iter().all(|p| p.value > 0.0));
    }

    #[test]
    fn empty_grid_produces_no_points() {
        let spec = demo_spec(0);
        assert_eq!(spec.num_units(), 0);
        for jobs in [1, 4] {
            assert!(SweepRunner::new(jobs).run(&spec).is_empty());
        }
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let mut b = ExperimentSpec::builder("panic", "panic propagation");
        b.measure(Vec::new);
        b.measure(|| panic!("worker exploded"));
        let spec = b.build();
        for jobs in [1, 4] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                SweepRunner::new(jobs).run(&spec)
            }));
            let err = result.expect_err("panic must propagate");
            let msg = err
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| err.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            assert!(msg.contains("worker exploded"), "jobs={jobs}: {msg}");
        }
    }

    #[test]
    fn run_indexed_covers_every_slot_in_order() {
        for jobs in [1, 2, 8] {
            let out = run_indexed(jobs, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn runner_resolves_worker_counts() {
        assert!(SweepRunner::new(0).jobs() >= 1);
        assert_eq!(SweepRunner::sequential().jobs(), 1);
        assert_eq!(SweepRunner::new(7).jobs(), 7);
    }

    #[test]
    fn unit_jobs_split_the_thread_budget() {
        assert_eq!(effective_unit_jobs(8, 1), 8);
        assert_eq!(effective_unit_jobs(8, 2), 4);
        assert_eq!(effective_unit_jobs(8, 3), 2);
        assert_eq!(effective_unit_jobs(2, 8), 1, "intra can exceed the budget");
        assert_eq!(effective_unit_jobs(8, 0), 8, "intra 0 is treated as 1 here");
        assert!(effective_unit_jobs(0, 1) >= 1, "jobs 0 means all cores");
        assert!(
            effective_unit_jobs(0, 2) <= effective_unit_jobs(0, 1),
            "raising intra never raises the unit pool"
        );
    }
}
