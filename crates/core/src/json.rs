//! A small hand-rolled JSON value type, writer and parser.
//!
//! The reproduction container has no access to crates.io, so instead of `serde_json` the
//! machine-readable results pipeline (`results.json` from the `repro` binary, `BENCH.json`
//! from the bench harness, `baselines.json` regression floors) uses this self-contained
//! module. It covers exactly what that pipeline needs:
//!
//! * a [`Json`] value tree with ordered object keys (so output is deterministic),
//! * a writer ([`Json::to_string`] / [`Json::write`]) whose number formatting is
//!   bit-reproducible across runs — required for the sequential-vs-parallel parity check
//!   in CI, which byte-compares two `results.json` files,
//! * a recursive-descent parser ([`parse`]) for reading the checked-in baseline floors.
//!
//! # Example
//!
//! ```
//! use piccolo::json::{parse, Json};
//!
//! let v = Json::obj([("speedup", Json::Num(2.5)), ("name", Json::str("fig10"))]);
//! let text = v.to_string();
//! assert_eq!(text, r#"{"speedup":2.5,"name":"fig10"}"#);
//! let back = parse(&text).unwrap();
//! assert_eq!(back.get("speedup").and_then(Json::as_f64), Some(2.5));
//! ```

/// A JSON value. Object keys keep insertion order so serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values serialize as `null` (JSON has no NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered list of key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an object from an iterator of pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes the value into `out` (compact form, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes the value to a compact string.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

/// Writes a number deterministically: integers without a fraction, everything else via
/// Rust's shortest-round-trip `Display` (never exponent notation, always bit-stable for
/// a given value), non-finite values as `null`.
fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        // Within the exactly-representable integer range: print as an integer.
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document. Rejects trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this pipeline; map them
                            // (and any other invalid scalar) to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    // SAFETY: `self.bytes` came from a `&str` and `self.pos` only
                    // advances by whole `len_utf8()` steps, so `rest` starts on a char
                    // boundary of valid UTF-8.
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_all_value_kinds() {
        let v = Json::obj([
            ("a", Json::Null),
            ("b", Json::Bool(true)),
            ("c", Json::Num(1.5)),
            ("d", Json::str("x\"y\n")),
            ("e", Json::Arr(vec![Json::Num(1.0), Json::Num(-2.0)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"a":null,"b":true,"c":1.5,"d":"x\"y\n","e":[1,-2]}"#
        );
    }

    #[test]
    fn number_formatting_is_deterministic_and_roundtrips() {
        for n in [
            0.0,
            1.0,
            -1.0,
            0.5,
            1e-7,
            123456789.123,
            9.0e15,
            std::f64::consts::PI,
        ] {
            let s = Json::Num(n).to_string();
            let again = Json::Num(n).to_string();
            assert_eq!(s, again);
            let parsed = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(parsed, n, "{s} should round-trip");
        }
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#" { "figures": [ {"name":"fig10", "points":[{"label":"GM","value":2.25}]} ],
                        "ok": true, "n": null } "#;
        let v = parse(doc).unwrap();
        let figures = v.get("figures").unwrap().as_array().unwrap();
        assert_eq!(figures.len(), 1);
        assert_eq!(figures[0].get("name").and_then(Json::as_str), Some("fig10"));
        let pts = figures[0].get("points").unwrap().as_array().unwrap();
        assert_eq!(pts[0].get("value").and_then(Json::as_f64), Some(2.25));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn roundtrip_through_writer_and_parser() {
        let v = Json::obj([
            ("scale", Json::obj([("shift", Json::Num(12.0))])),
            (
                "values",
                Json::Arr(vec![Json::Num(0.125), Json::str("α β"), Json::Bool(false)]),
            ),
        ]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn escapes_control_characters() {
        let s = Json::str("\u{1}").to_string();
        assert_eq!(s, "\"\\u0001\"");
        assert_eq!(parse(&s).unwrap(), Json::str("\u{1}"));
    }
}
