//! Cross-figure campaign scheduler: one global work queue for many figures, building
//! each distinct graph exactly once across the whole campaign — shardable across OS
//! processes and resumable across invocations.
//!
//! The paper's evaluation sweeps many figure grids over the same handful of graphs. A
//! per-figure runner rebuilds each `(dataset, scale_shift, seed)` graph once *per
//! figure* and parallelizes only *within* a figure, which leaves a long sequential tail
//! on the all-figure run. This module flattens every requested figure's
//! [`ExperimentSpec`] grid into **one** queue executed by a single
//! [`run_indexed`] pool:
//!
//! 1. **Graph builds are schedulable units.** The queue starts with one build task per
//!    distinct [`GraphKey`] needed by the scheduled units — most expensive first, so the
//!    twitter-scale CSR starts before the cheap graphs — followed by every scheduled
//!    grid unit, ordered measure-units-first and then by ascending estimated cost of
//!    the graph they need (results are un-permuted into `(figure, unit)` slots
//!    afterwards, so scheduling order never shows in the output). Workers claim indices
//!    in increasing order, so every build is claimed before any grid unit, and the
//!    units claimed first are the ones whose graphs finish earliest — while one worker
//!    builds the largest CSR, the others build the remaining graphs and then drain
//!    units of the already-built ones instead of blocking behind the big build.
//! 2. **A shared graph store** hands finished graphs to simulation units. A unit whose
//!    graph is still being built blocks on that slot's condvar; the builder is
//!    guaranteed to be a live worker (builds occupy the lowest queue indices), so the
//!    wait always terminates. A panicking build marks its slot failed and wakes all
//!    waiters, which panic in turn; [`run_indexed`] then resumes the **lowest-indexed**
//!    payload — the build's original panic — on the caller. Slots are **refcounted**
//!    by their scheduled consumer count: the last grid unit to finish with a graph
//!    evicts it from the store, so a graph's CSR is dropped the moment nothing in the
//!    campaign needs it instead of staying pinned until the campaign ends. (For
//!    [`piccolo_graph::external`] graphs eviction also releases the registry's pin —
//!    [`piccolo_graph::external::release`] — so a lazily-registered graph's memory is
//!    actually returned mid-process, not held until exit.) Eviction can
//!    never cause a rebuild — a post-eviction wait is a loud panic, not a rebuild, and
//!    the build-counting tests pin exactly one build per key with eviction active.
//! 3. **Results land by `(figure, unit index)` slot**, and derived rows (speedups,
//!    geomeans) are evaluated per figure from its completed grid, so campaign output is
//!    byte-identical for any worker count — the property CI enforces on the sharded
//!    repro matrix.
//!
//! # Sharding and resuming
//!
//! The flattened grid gives every unit a stable **global unit index** (figure-major
//! registration order), and [`plan_hash`] fingerprints the whole plan — scale, spec
//! names, every unit's configuration. On top of those two invariants:
//!
//! * [`SweepRunner::run_campaign_shard`] executes the deterministic shard projection
//!   `unit index % count == index` ([`Shard`]) and serializes the raw unit results as a
//!   `piccolo-results-shard/v1` document ([`ShardRun::to_json`]). Each shard schedules
//!   exactly the graph builds its own units need, with refcounts scoped to the shard,
//!   so eviction stats stay exact per shard.
//! * [`merge_shards`] validates a complete shard set against the plan hash, un-permutes
//!   the slots, evaluates derived rows once over the merged grid, and yields figures
//!   whose `results.json` is **byte-identical** to a single-process run of any worker
//!   count (`repro --merge`).
//! * [`SweepRunner::run_campaign_resumed`] journals one checksummed line per completed
//!   unit (the `campaign/journal.rs` module; line format `piccolo_io::journal`) and
//!   pre-fills matching slots on the next invocation, scheduling only the remainder —
//!   a killed campaign finishes in the time of its missing units, with the same output
//!   bytes (`repro --resume`).
//!
//! [`SweepRunner::run`] is a campaign of one figure, so every figure entry point in
//! [`crate::experiments`] routes through this scheduler.

mod codec;
mod journal;

use crate::experiments::Scale;
use crate::json::{parse, Json};
use crate::report::FigureRows;
use crate::sweep::{run_indexed, ExperimentSpec, GraphKey, SweepRunner, Unit, UnitResult};
use piccolo_graph::Csr;
use piccolo_obs as obs;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Deterministic estimate of a graph build's cost — the paper's edge count shrunk by
/// the run's scale shift. Orders the schedule only; it never affects any result.
fn build_cost((dataset, scale_shift, _seed): GraphKey) -> u64 {
    dataset
        .spec()
        .paper_edges
        .checked_shr(scale_shift)
        .unwrap_or(0)
}

/// Scheduling statistics of one executed campaign (all deterministic counts — safe to
/// log anywhere without breaking output parity). On a sharded or resumed campaign the
/// counts cover the units this process actually **executed** — replayed journal slots
/// and other shards' units are not in them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignStats {
    /// Figures in the campaign plan.
    pub figures: usize,
    /// Full simulation runs executed (each references one shared graph).
    pub sim_runs: usize,
    /// Self-contained measure units executed.
    pub measure_units: usize,
    /// Distinct graphs actually built (exactly once each).
    pub graphs_built: usize,
    /// Builds avoided relative to per-figure scheduling (the sum over figures of their
    /// distinct keys among executed units, minus the distinct keys overall). Zero for a
    /// single figure.
    pub builds_saved: usize,
    /// Graphs evicted from the shared store mid-campaign, when their last scheduled
    /// consumer finished. Always equals `graphs_built` on a completed campaign.
    /// Synthetic stand-ins are freed outright at that point; for external graphs the
    /// eviction also drops the `piccolo_graph::external` registry's pin, so a
    /// lazily-registered graph's memory is returned once in-flight units drop their
    /// handles (eagerly-registered graphs stay pinned — the registry is their owner).
    pub graphs_evicted: usize,
    /// Simulated DRAM clocks the executed runs spent in the scatter phase (summed
    /// over this process's executed simulation units — deterministic, like every
    /// other field).
    pub scatter_mem_clocks: u64,
    /// Simulated DRAM clocks the executed runs spent in the apply phase.
    pub apply_mem_clocks: u64,
}

/// Output of [`SweepRunner::run_campaign`]: every figure's rows plus scheduling stats.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// One entry per requested figure, in request order.
    pub figures: Vec<FigureRows>,
    /// Scheduling statistics (graphs built vs saved, unit counts).
    pub stats: CampaignStats,
}

/// One shard of a campaign's unit grid: the slots whose global unit index satisfies
/// `index % count == index_of_this_shard`. `Shard { index: 0, count: 1 }` is the whole
/// campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's position, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the campaign is split into.
    pub count: usize,
}

impl Shard {
    /// Parses the `repro --shard` syntax `I/N` (e.g. `0/3`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let err = || format!("shard must be I/N with 0 <= I < N, got '{s}'");
        let (i, n) = s.split_once('/').ok_or_else(err)?;
        let shard = Shard {
            index: i.parse().map_err(|_| err())?,
            count: n.parse().map_err(|_| err())?,
        };
        if shard.index < shard.count {
            Ok(shard)
        } else {
            Err(err())
        }
    }

    /// Whether this shard executes the unit with global index `unit`.
    ///
    /// # Panics
    ///
    /// Panics on a malformed shard (`count == 0` or `index >= count`) — hand-built
    /// values bypass [`Shard::parse`], so the invariant is asserted with intent here
    /// rather than surfacing as a bare divide-by-zero inside the scheduler.
    pub fn selects(&self, unit: usize) -> bool {
        assert!(
            self.index < self.count,
            "malformed shard {}/{} (need 0 <= index < count)",
            self.index,
            self.count
        );
        unit % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Fingerprint of a campaign plan: the scale plus every spec's name, title, unit grid
/// and output shape, folded through FNV-1a 64. Two invocations with equal plan hashes
/// execute interchangeable unit grids — the property that lets shard files
/// ([`merge_shards`]) and journal entries ([`SweepRunner::run_campaign_resumed`])
/// written by separate processes be validated before any slot is trusted.
///
/// External graphs ([`piccolo_graph::external`]) have no `(dataset, shift, seed)`
/// recipe — a `RunConfig` names only a registry id — so each distinct external's name
/// and **full edge content** is folded in as well. Editing an external's source file
/// between runs therefore changes the plan, and stale shard files or journal entries
/// computed over the old graph are refused instead of silently mixed in.
pub fn plan_hash(scale: Scale, specs: &[ExperimentSpec]) -> u64 {
    let mut h = piccolo_io::hash::Fnv64::new();
    h.update(b"piccolo-plan/v1\0");
    scale.fingerprint(&mut h);
    for spec in specs {
        spec.fingerprint(&mut h);
    }
    let mut seen_externals: Vec<u32> = Vec::new();
    for spec in specs {
        for unit in spec.units() {
            if let Unit::Sim(rc) = unit {
                if let piccolo_graph::Dataset::External { id } = rc.dataset {
                    if !seen_externals.contains(&id) {
                        seen_externals.push(id);
                        h.update(format!("external {id} ").as_bytes());
                        if let Some(name) = piccolo_graph::external::name(id) {
                            h.update(name.as_bytes());
                        }
                        h.update(b"\0");
                        // The registry hashed the graph's structure once at register
                        // time, so this stays a constant-size fold per invocation
                        // even for multi-billion-edge externals.
                        if let Some(fp) = piccolo_graph::external::content_fingerprint(id) {
                            h.update(&fp.to_le_bytes());
                        }
                    }
                }
            }
        }
    }
    h.finish()
}

pub(crate) fn plan_hex(plan: u64) -> String {
    format!("{plan:016x}")
}

/// State of one graph slot in the shared store.
enum SlotState {
    /// The build task has not finished yet.
    Pending,
    /// The graph is available to every simulation unit that needs it.
    Ready(Arc<Csr>),
    /// The build task panicked; waiters must panic too (the build's own payload is the
    /// one the pool re-raises).
    Failed,
    /// Every consumer has finished and the graph has been dropped. Reaching this slot
    /// from [`GraphStore::wait`] is a refcounting bug — eviction must never force a
    /// rebuild, so the store panics loudly instead of rebuilding silently.
    Evicted,
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
    /// Grid units still needing this graph; the last one to finish evicts it.
    remaining: AtomicUsize,
}

/// Shared graph store: one slot per distinct [`GraphKey`] of the scheduled units,
/// refcounted by the number of grid units that consume each graph so the `Csr` is
/// dropped the moment its last consumer finishes (no graph stays pinned for the whole
/// campaign).
struct GraphStore {
    slots: BTreeMap<GraphKey, Slot>,
}

impl GraphStore {
    fn new(keys: &[(GraphKey, usize)]) -> Self {
        Self {
            slots: keys
                .iter()
                .map(|&(k, consumers)| {
                    (
                        k,
                        Slot {
                            state: Mutex::new(SlotState::Pending),
                            ready: Condvar::new(),
                            remaining: AtomicUsize::new(consumers),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Publishes a finished graph and wakes every waiting simulation unit.
    fn fulfill(&self, key: GraphKey, graph: Arc<Csr>) {
        let slot = &self.slots[&key];
        *slot.state.lock().unwrap() = SlotState::Ready(graph);
        slot.ready.notify_all();
    }

    /// Marks a build as failed and wakes waiters so they can propagate the failure.
    fn fail(&self, key: GraphKey) {
        let slot = &self.slots[&key];
        let mut state = slot.state.lock().unwrap();
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Failed;
        }
        drop(state);
        slot.ready.notify_all();
    }

    /// Blocks until `key`'s graph is built and returns it. Panics if the build failed
    /// or the graph was already evicted (the latter would mean the consumer refcount
    /// under-counted — a scheduler bug, never a reason to rebuild).
    fn wait(&self, key: GraphKey) -> Arc<Csr> {
        let slot = &self.slots[&key];
        let mut state = slot.state.lock().unwrap();
        loop {
            match &*state {
                SlotState::Ready(graph) => return Arc::clone(graph),
                SlotState::Failed => panic!("graph build for {key:?} panicked"),
                SlotState::Evicted => {
                    panic!("graph {key:?} evicted while consumers remained (refcount bug)")
                }
                SlotState::Pending => state = slot.ready.wait(state).unwrap(),
            }
        }
    }

    /// Signals that one consumer of `key` has finished; the last consumer drops the
    /// graph. Eviction only moves `Ready -> Evicted` — a failed slot stays failed.
    ///
    /// For [`Dataset::External`] graphs the store's `Arc` is shared with the external
    /// registry, which pins the graph for the life of the process by default — so
    /// eviction here also asks the registry to drop its strong pin
    /// ([`piccolo_graph::external::release`]). A lazily-registered graph (the
    /// out-of-core bench path) is then freed the moment the last in-flight unit drops
    /// its handle, and its retained loader re-materializes it if a later campaign in
    /// the same process needs it again.
    fn release(&self, key: GraphKey) {
        let slot = &self.slots[&key];
        if slot.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut state = slot.state.lock().unwrap();
            if matches!(*state, SlotState::Ready(_)) {
                *state = SlotState::Evicted;
                if obs::spans_enabled() {
                    obs::point("graph_evict", vec![("graph", build_spec(key).into())]);
                }
            }
            drop(state);
            if let (piccolo_graph::Dataset::External { id }, _, _) = key {
                piccolo_graph::external::release(id);
            }
        }
    }

    /// Number of slots whose graph has been evicted.
    fn evicted_count(&self) -> usize {
        self.slots
            .values()
            .filter(|s| matches!(*s.state.lock().unwrap(), SlotState::Evicted))
            .count()
    }
}

/// Marks the slot [`SlotState::Failed`] unless disarmed — keeps a panicking build from
/// leaving waiters blocked forever.
struct FailGuard<'a> {
    store: &'a GraphStore,
    key: GraphKey,
    armed: bool,
}

impl Drop for FailGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.store.fail(self.key);
        }
    }
}

/// Output of one global queue slot.
enum TaskOut {
    /// A graph-build unit completed (its product lives in the store).
    Built,
    /// A grid unit completed.
    Unit(UnitResult),
}

/// The flattened unit grid: global unit index -> `(figure, unit-within-figure)`, in
/// figure-major registration order. This ordering is the contract behind shard
/// projections and journal entries — it depends only on the spec list.
fn flatten_units(specs: &[ExperimentSpec]) -> Vec<(usize, usize)> {
    let mut unit_index = Vec::new();
    for (figure, spec) in specs.iter().enumerate() {
        unit_index.extend((0..spec.units().len()).map(|u| (figure, u)));
    }
    unit_index
}

/// Evaluates every figure's derived rows from a fully-populated grid (`unit_results`
/// in global unit order). Pure arithmetic — identical however the grid was populated
/// (one process, merged shards, or a journal-resumed run).
fn evaluate_figures(specs: &[ExperimentSpec], unit_results: &[UnitResult]) -> Vec<FigureRows> {
    let mut figures = Vec::with_capacity(specs.len());
    let mut offset = 0usize;
    for spec in specs {
        let grid = &unit_results[offset..offset + spec.units().len()];
        offset += spec.units().len();
        figures.push(FigureRows {
            name: spec.name().to_string(),
            title: spec.title().to_string(),
            points: spec.evaluate(grid),
        });
    }
    figures
}

/// The journal hook [`execute_selected`] calls from worker threads as each unit
/// completes (global unit index + the finished result).
type OnUnitDone<'a> = &'a (dyn Fn(usize, &UnitResult) + Sync);

/// Executes the `selected` global unit indices (ascending) over one [`run_indexed`]
/// pool, building exactly the distinct graphs those units need. Returns the results by
/// global unit index (`None` for unscheduled slots) plus the scheduling stats.
fn execute_selected(
    jobs: usize,
    specs: &[ExperimentSpec],
    unit_index: &[(usize, usize)],
    selected: &[usize],
    build: &(impl Fn(GraphKey) -> Arc<Csr> + Sync),
    on_done: Option<OnUnitDone<'_>>,
) -> (Vec<Option<UnitResult>>, CampaignStats) {
    let unit_at = |gid: usize| {
        let (figure, unit) = unit_index[gid];
        &specs[figure].units()[unit]
    };

    // Distinct graph keys in first-appearance order (deterministic) with their
    // scheduled consumer counts (for eviction), plus the number of builds a per-figure
    // scheduler would have performed over the same units, for the stats.
    let mut keys: Vec<GraphKey> = Vec::new();
    let mut consumers: BTreeMap<GraphKey, usize> = BTreeMap::new();
    let mut figure_keys: Vec<Vec<GraphKey>> = vec![Vec::new(); specs.len()];
    let mut sim_runs = 0usize;
    let mut measure_units = 0usize;
    for &gid in selected {
        let (figure, _) = unit_index[gid];
        match unit_at(gid) {
            Unit::Sim(rc) => {
                sim_runs += 1;
                let key = rc.graph_key();
                if !figure_keys[figure].contains(&key) {
                    figure_keys[figure].push(key);
                }
                if !keys.contains(&key) {
                    keys.push(key);
                }
                *consumers.entry(key).or_insert(0) += 1;
            }
            Unit::Measure(_) => measure_units += 1,
        }
    }
    let per_figure_builds: usize = figure_keys.iter().map(Vec::len).sum();

    // Deterministic unit-cost estimate for progress/ETA accounting only — it mirrors
    // the scheduling key below (measure units are cheap, sims carry their graph's
    // build cost) and never feeds any result.
    let unit_cost = |gid: usize| -> u64 {
        match unit_at(gid) {
            Unit::Measure(_) => 1,
            Unit::Sim(rc) => 1 + build_cost(rc.graph_key()),
        }
    };

    // The campaign span roots this run's event tree. Its guard lives on the calling
    // thread for the whole schedule (this function blocks on the pool below), so
    // worker-thread spans attach to it through the explicit-parent API.
    let campaign_span = obs::span(
        "campaign",
        vec![
            ("figures", (specs.len() as u64).into()),
            ("units", (selected.len() as u64).into()),
            ("builds", (keys.len() as u64).into()),
            (
                "cost_total",
                selected.iter().map(|&g| unit_cost(g)).sum::<u64>().into(),
            ),
        ],
    );
    let campaign_id = campaign_span.id();
    if obs::spans_enabled() {
        for (figure, spec) in specs.iter().enumerate() {
            let in_figure = selected
                .iter()
                .filter(|&&g| unit_index[g].0 == figure)
                .count() as u64;
            if in_figure > 0 {
                obs::point_with_parent(
                    "figure_plan",
                    campaign_id,
                    vec![("figure", spec.name().into()), ("units", in_figure.into())],
                );
            }
        }
    }

    // The most expensive builds go first so they start (are claimed) earliest and
    // overlap the most of the remaining campaign. Stable sort: ties keep
    // first-appearance order, so the schedule stays deterministic.
    let n_builds = keys.len();
    keys.sort_by_key(|&key| std::cmp::Reverse(build_cost(key)));

    // Schedule the selected units behind the build tasks: measure units (always
    // runnable) and cheap-graph sims first, so workers drain units whose graphs finish
    // earliest instead of blocking behind the largest build; results are un-permuted
    // below, so scheduling order never shows in the output.
    let mut schedule: Vec<usize> = selected.to_vec();
    schedule.sort_by_key(|&gid| match unit_at(gid) {
        Unit::Measure(_) => 0,
        Unit::Sim(rc) => 1 + build_cost(rc.graph_key()),
    });

    let keyed: Vec<(GraphKey, usize)> = keys.iter().map(|&k| (k, consumers[&k])).collect();
    let store = GraphStore::new(&keyed);
    let outputs = run_indexed(jobs, n_builds + schedule.len(), |i| {
        if i < n_builds {
            let key = keys[i];
            let mut guard = FailGuard {
                store: &store,
                key,
                armed: true,
            };
            let build_span = obs::spans_enabled().then(|| {
                obs::span_with_parent(
                    "graph_build",
                    campaign_id,
                    vec![
                        ("graph", build_spec(key).into()),
                        ("cost", build_cost(key).into()),
                    ],
                )
            });
            let graph = build(key);
            store.fulfill(key, graph);
            guard.armed = false;
            if let Some(span) = build_span {
                span.close(Vec::new());
            }
            TaskOut::Built
        } else {
            let gid = schedule[i - n_builds];
            let emit = obs::spans_enabled();
            let unit_span = emit.then(|| {
                let (figure, _) = unit_index[gid];
                obs::span_with_parent(
                    "unit",
                    campaign_id,
                    vec![
                        ("unit", (gid as u64).into()),
                        ("figure", specs[figure].name().into()),
                        (
                            "kind",
                            match unit_at(gid) {
                                Unit::Sim(_) => "sim",
                                Unit::Measure(_) => "measure",
                            }
                            .into(),
                        ),
                        ("cost", unit_cost(gid).into()),
                    ],
                )
            });
            // Drain phase timings left over from earlier work on this worker thread,
            // so the capture after the run is exactly this unit's.
            let _ = piccolo_accel::take_thread_phase_profile();
            let result = match unit_at(gid) {
                Unit::Sim(rc) => {
                    let key = rc.graph_key();
                    let graph = store.wait(key);
                    let result = UnitResult::Run(Box::new(rc.execute(&graph)));
                    // This unit is done with the graph: drop our handle, then let the
                    // store evict the slot if we were the last consumer.
                    drop(graph);
                    store.release(key);
                    result
                }
                Unit::Measure(f) => UnitResult::Points(f()),
            };
            let host = piccolo_accel::take_thread_phase_profile();
            if let UnitResult::Run(run) = &result {
                record_run_metrics(run);
                if emit {
                    emit_phase_spans(unit_span.as_ref().and_then(obs::Span::id), run, host);
                }
            }
            if let Some(hook) = on_done {
                hook(gid, &result);
            }
            if let Some(span) = unit_span {
                let (figure, _) = unit_index[gid];
                span.close(vec![
                    ("figure", specs[figure].name().into()),
                    ("cost", unit_cost(gid).into()),
                ]);
            }
            TaskOut::Unit(result)
        }
    });
    let graphs_evicted = store.evicted_count();

    // Un-permute the scheduled outputs back into global unit order.
    let mut slots: Vec<Option<UnitResult>> = unit_index.iter().map(|_| None).collect();
    for (j, out) in outputs.into_iter().skip(n_builds).enumerate() {
        match out {
            TaskOut::Unit(result) => slots[schedule[j]] = Some(result),
            TaskOut::Built => unreachable!("build outputs precede unit outputs"),
        }
    }

    // Per-phase DRAM-clock totals over the executed runs, for the campaign stats
    // line and BENCH.json (sums of deterministic per-run values, so output parity
    // across worker counts is preserved).
    let mut scatter_mem_clocks = 0u64;
    let mut apply_mem_clocks = 0u64;
    for slot in slots.iter().flatten() {
        if let UnitResult::Run(run) = slot {
            scatter_mem_clocks += run.phases.scatter_mem_clocks;
            apply_mem_clocks += run.phases.apply_mem_clocks;
        }
    }

    let stats = CampaignStats {
        figures: specs.len(),
        sim_runs,
        measure_units,
        // One build unit per distinct key by construction; a panicking build aborts
        // the whole campaign, so a returned run always built all of them.
        graphs_built: n_builds,
        builds_saved: per_figure_builds - n_builds,
        // Every key has >= 1 consumer (keys come from scheduled sim units), so a
        // completed campaign has evicted every graph it built.
        graphs_evicted,
        scatter_mem_clocks,
        apply_mem_clocks,
    };
    obs::metrics::counter_add("campaign/units_executed", selected.len() as u64);
    obs::metrics::counter_add("campaign/sim_runs", stats.sim_runs as u64);
    obs::metrics::counter_add("campaign/measure_units", stats.measure_units as u64);
    obs::metrics::counter_add("campaign/graphs_built", stats.graphs_built as u64);
    obs::metrics::counter_add("campaign/graphs_evicted", stats.graphs_evicted as u64);
    campaign_span.close(vec![
        ("sim_runs", (stats.sim_runs as u64).into()),
        ("measure_units", (stats.measure_units as u64).into()),
        ("graphs_built", (stats.graphs_built as u64).into()),
        ("graphs_evicted", (stats.graphs_evicted as u64).into()),
        ("builds_saved", (stats.builds_saved as u64).into()),
    ]);
    (slots, stats)
}

/// Folds one executed run's deterministic simulator counters into the metrics
/// registry. Exact u64 additions only, so the per-campaign aggregates are
/// byte-identical for any `--jobs` split of the same plan.
fn record_run_metrics(run: &piccolo_accel::RunResult) {
    obs::metrics::counter_add("sim/dram_activations", run.mem_stats.activations);
    obs::metrics::counter_add("sim/dram_read_bursts", run.mem_stats.read_bursts);
    obs::metrics::counter_add("sim/dram_write_bursts", run.mem_stats.write_bursts);
    obs::metrics::counter_add("sim/offchip_bytes", run.mem_stats.offchip_bytes);
    obs::metrics::counter_add("sim/cache_accesses", run.cache_stats.accesses);
    obs::metrics::counter_add("sim/cache_hits", run.cache_stats.hits);
    obs::metrics::counter_add("sim/cache_misses", run.cache_stats.misses);
    obs::metrics::counter_add("sim/edges_processed", run.edges_processed);
    obs::metrics::counter_add("sim/iterations", u64::from(run.iterations));
}

/// Retrospective per-phase child spans of one completed unit: simulated DRAM
/// clocks from the run plus host wall-clock captured by the thread-local phase
/// profiler. Emitted after the run (each span opens and closes back-to-back;
/// the payload rides in the fields, not in `dur_ns`).
fn emit_phase_spans(
    parent: Option<u64>,
    run: &piccolo_accel::RunResult,
    host: piccolo_accel::PhaseProfile,
) {
    let phases: [(&'static str, Option<u64>, Option<u64>); 4] = [
        (
            "scatter",
            Some(host.scatter_ns),
            Some(run.phases.scatter_mem_clocks),
        ),
        (
            "apply",
            Some(host.apply_ns),
            Some(run.phases.apply_mem_clocks),
        ),
        ("flush", None, Some(run.phases.flush_mem_clocks)),
        ("frontier", Some(host.frontier_ns), None),
    ];
    for (name, host_ns, mem_clocks) in phases {
        let mut fields: obs::Fields = Vec::new();
        if let Some(ns) = host_ns {
            fields.push(("host_ns", ns.into()));
        }
        if let Some(clocks) = mem_clocks {
            fields.push(("mem_clocks", clocks.into()));
        }
        obs::span_with_parent(name, parent, fields).close(Vec::new());
    }
}

/// The default graph-build function: `build_shared` hands out the registry's Arc for
/// external graphs instead of cloning the CSR, and wraps a fresh build for the
/// synthetic stand-ins.
fn default_build((dataset, shift, seed): GraphKey) -> Arc<Csr> {
    dataset.build_shared(shift, seed)
}

/// Stable one-line description of a graph key for `built` journal entries. External
/// datasets ride on their registry id alone — the plan hash already folds the name and
/// full content per id, so within one plan the id identifies the graph exactly.
fn build_spec((dataset, shift, seed): GraphKey) -> String {
    format!("{} shift={shift} seed={seed}", dataset.short_name())
}

impl SweepRunner {
    /// Executes `specs` as one campaign: a single global [`run_indexed`] pool over all
    /// graph builds and grid units, building each distinct [`GraphKey`] exactly once
    /// campaign-wide. Returns each figure's rows (derived points evaluated per figure)
    /// plus scheduling stats. Output is byte-identical for every worker count.
    pub fn run_campaign(&self, specs: &[ExperimentSpec]) -> CampaignRun {
        run_campaign_with(self.jobs(), specs, default_build)
    }

    /// Executes one [`Shard`] of the campaign: exactly the grid units whose global
    /// index satisfies `index % count`, building only the graphs those units need
    /// (refcounts — and therefore eviction stats — scoped to the shard). The returned
    /// [`ShardRun`] serializes to a `piccolo-results-shard/v1` document that
    /// [`merge_shards`] recombines into output byte-identical to an unsharded run.
    pub fn run_campaign_shard(
        &self,
        scale: Scale,
        specs: &[ExperimentSpec],
        shard: Shard,
    ) -> ShardRun {
        let unit_index = flatten_units(specs);
        let selected: Vec<usize> = (0..unit_index.len())
            .filter(|&g| shard.selects(g))
            .collect();
        let (mut slots, stats) = execute_selected(
            self.jobs(),
            specs,
            &unit_index,
            &selected,
            &default_build,
            None,
        );
        let units = selected
            .iter()
            .map(|&gid| (gid, slots[gid].take().expect("selected slot executed")))
            .collect();
        ShardRun {
            shard,
            stats,
            plan: plan_hash(scale, specs),
            scale,
            units,
        }
    }

    /// Executes one [`Shard`] of the campaign **with** a run journal: the composition
    /// of [`SweepRunner::run_campaign_shard`] and [`SweepRunner::run_campaign_resumed`].
    /// Journal entries carry global unit indices, so the shard projection simply skips
    /// replayed slots: only the shard's units missing from the journal are executed
    /// (and appended), and the returned [`ShardRun`] covers the shard's full
    /// projection — replayed and executed slots alike — so it merges exactly like an
    /// uninterrupted shard. This is also the lease model the networked coordinator
    /// (`piccolo-serve`) runs on: any subset of the grid can be re-dispatched and the
    /// journal makes re-execution idempotent.
    pub fn run_campaign_shard_resumed(
        &self,
        scale: Scale,
        specs: &[ExperimentSpec],
        shard: Shard,
        journal_path: &Path,
    ) -> std::io::Result<ShardResumeRun> {
        let plan = plan_hash(scale, specs);
        let unit_index = flatten_units(specs);
        let mut replay = journal::read_replay(journal_path, plan, specs, &unit_index)?;
        let selected: Vec<usize> = (0..unit_index.len())
            .filter(|&gid| shard.selects(gid) && !replay.entries.contains_key(&gid))
            .collect();
        let writer = journal::Writer::append_to(journal_path, plan)?;
        let executed = selected.len();
        let on_done = |gid: usize, result: &UnitResult| writer.record(gid, result);
        let built_now: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let build = |key: GraphKey| {
            let spec = build_spec(key);
            writer.record_build(&spec);
            built_now.lock().unwrap().push(spec);
            default_build(key)
        };
        let (mut slots, stats) = execute_selected(
            self.jobs(),
            specs,
            &unit_index,
            &selected,
            &build,
            Some(&on_done),
        );
        let built_now = built_now.into_inner().unwrap();
        let builds_skipped = replay
            .builds
            .iter()
            .filter(|spec| !built_now.contains(spec))
            .count();
        let mut replayed = 0usize;
        let units: Vec<(usize, UnitResult)> = (0..unit_index.len())
            .filter(|&gid| shard.selects(gid))
            .map(|gid| {
                let result = match slots[gid].take() {
                    Some(result) => result,
                    None => {
                        replayed += 1;
                        replay
                            .entries
                            .remove(&gid)
                            .expect("every unscheduled shard slot was replayed")
                    }
                };
                (gid, result)
            })
            .collect();
        Ok(ShardResumeRun {
            run: ShardRun {
                shard,
                stats,
                plan,
                scale,
                units,
            },
            replayed,
            executed,
            corrupt: replay.corrupt,
            mismatched: replay.mismatched,
            builds_skipped,
        })
    }

    /// Executes the campaign with a run journal at `journal_path`: slots recovered
    /// from the journal (matching plan hash, verified checksum) are **replayed**
    /// without executing, only the remainder is scheduled, and every newly completed
    /// unit is appended — so a killed invocation re-run with the same journal finishes
    /// in the time of its missing units and produces byte-identical figures. A missing
    /// journal file starts an empty one (a plain run that journals as it goes).
    pub fn run_campaign_resumed(
        &self,
        scale: Scale,
        specs: &[ExperimentSpec],
        journal_path: &Path,
    ) -> std::io::Result<ResumeRun> {
        let plan = plan_hash(scale, specs);
        let unit_index = flatten_units(specs);
        let replay_span = obs::span("journal_replay", Vec::new());
        let mut replay = journal::read_replay(journal_path, plan, specs, &unit_index)?;
        replay_span.close(vec![
            ("replayed", (replay.entries.len() as u64).into()),
            ("corrupt", (replay.corrupt as u64).into()),
            ("mismatched", (replay.mismatched as u64).into()),
            ("builds", (replay.builds.len() as u64).into()),
        ]);
        obs::metrics::counter_add(
            "campaign/journal_lines_replayed",
            replay.entries.len() as u64,
        );
        let selected: Vec<usize> = (0..unit_index.len())
            .filter(|gid| !replay.entries.contains_key(gid))
            .collect();
        let writer = journal::Writer::append_to(journal_path, plan)?;
        let executed = selected.len();
        let on_done = |gid: usize, result: &UnitResult| writer.record(gid, result);
        // Journal builds as they happen and remember this invocation's keys, so the
        // summary below can report how many journaled builds were *skipped* — graphs
        // whose every unit replayed are never scheduled, hence never rebuilt.
        let built_now: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let build = |key: GraphKey| {
            let spec = build_spec(key);
            writer.record_build(&spec);
            built_now.lock().unwrap().push(spec);
            default_build(key)
        };
        let (slots, stats) = execute_selected(
            self.jobs(),
            specs,
            &unit_index,
            &selected,
            &build,
            Some(&on_done),
        );
        let built_now = built_now.into_inner().unwrap();
        let builds_skipped = replay
            .builds
            .iter()
            .filter(|spec| !built_now.contains(spec))
            .count();
        let unit_results: Vec<UnitResult> = slots
            .into_iter()
            .enumerate()
            .map(|(gid, slot)| match slot {
                Some(result) => result,
                None => replay
                    .entries
                    .remove(&gid)
                    .expect("every unscheduled slot was replayed from the journal"),
            })
            .collect();
        Ok(ResumeRun {
            replayed: unit_results.len() - executed,
            executed,
            corrupt: replay.corrupt,
            mismatched: replay.mismatched,
            builds_skipped,
            run: CampaignRun {
                figures: evaluate_figures(specs, &unit_results),
                stats,
            },
        })
    }
}

/// Output of [`SweepRunner::run_campaign_resumed`]: the completed campaign plus what
/// the journal contributed.
#[derive(Debug)]
pub struct ResumeRun {
    /// The completed campaign (figures identical to an uninterrupted run; stats cover
    /// the units this invocation executed).
    pub run: CampaignRun,
    /// Slots pre-filled from the journal.
    pub replayed: usize,
    /// Units executed (and appended to the journal) by this invocation.
    pub executed: usize,
    /// Journal lines dropped by the checksum check — each costs one re-run, nothing
    /// else.
    pub corrupt: usize,
    /// Well-formed entries ignored because they belong to a different plan (figure
    /// set, scale, or spec revision) or name an impossible slot.
    pub mismatched: usize,
    /// Journaled graph builds this invocation did **not** repeat: every unit of those
    /// graphs replayed, so the graphs were never scheduled — the build-skip that makes
    /// a fully-replayed resume O(journal), not O(graph).
    pub builds_skipped: usize,
}

/// Output of [`SweepRunner::run_campaign_shard_resumed`]: the executed shard plus what
/// the journal contributed to its projection.
#[derive(Debug)]
pub struct ShardResumeRun {
    /// The shard's full projection (replayed and executed slots alike); serializes
    /// and merges exactly like an uninterrupted shard run.
    pub run: ShardRun,
    /// Slots of this shard's projection pre-filled from the journal. Journal entries
    /// outside the projection are left untouched (other shards replay them).
    pub replayed: usize,
    /// Units executed (and appended to the journal) by this invocation.
    pub executed: usize,
    /// Journal lines dropped by the checksum check.
    pub corrupt: usize,
    /// Well-formed entries ignored because they belong to a different plan.
    pub mismatched: usize,
    /// Journaled graph builds this invocation did not repeat.
    pub builds_skipped: usize,
}

/// One executed shard: the raw results of its grid slots, tagged with the plan hash
/// that [`merge_shards`] validates before recombining.
#[derive(Debug)]
pub struct ShardRun {
    /// Which projection of the grid this shard executed.
    pub shard: Shard,
    /// Scheduling stats of this shard alone (its own builds and evictions).
    pub stats: CampaignStats,
    plan: u64,
    scale: Scale,
    units: Vec<(usize, UnitResult)>,
}

impl ShardRun {
    /// Number of grid units this shard executed.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Serializes this shard as a `piccolo-results-shard/v1` document: plan hash,
    /// shard coordinates, scale, and one `{unit, result}` entry per executed slot in
    /// ascending global unit order (deterministic bytes, like everything else in the
    /// results pipeline).
    pub fn to_json(&self) -> String {
        shard_doc(
            self.plan,
            self.shard,
            self.scale,
            self.units
                .iter()
                .map(|(gid, result)| (*gid, codec::unit_result_to_json(result)))
                .collect(),
        )
    }
}

/// Serializes one `piccolo-results-shard/v1` document. Shared by [`ShardRun::to_json`]
/// and [`PlannedCampaign::evaluate`], so locally-executed and network-collected grids
/// flow through byte-identical documents into [`merge_shards`].
fn shard_doc(plan: u64, shard: Shard, scale: Scale, units: Vec<(usize, Json)>) -> String {
    let doc = Json::obj([
        ("schema", Json::str("piccolo-results-shard/v1")),
        ("plan", Json::str(plan_hex(plan))),
        (
            "shard",
            Json::obj([
                ("index", Json::Num(shard.index as f64)),
                ("count", Json::Num(shard.count as f64)),
            ]),
        ),
        (
            "scale",
            Json::obj([
                ("scale_shift", Json::Num(scale.scale_shift as f64)),
                // The seed is a u64; like the codec's counters it rides as a
                // decimal string so it can never round past 2^53.
                ("seed", Json::str(scale.seed.to_string())),
                ("max_iterations", Json::Num(scale.max_iterations as f64)),
            ]),
        ),
        (
            "units",
            Json::Arr(
                units
                    .into_iter()
                    .map(|(gid, result)| {
                        Json::obj([("unit", Json::Num(gid as f64)), ("result", result)])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut out = doc.to_string();
    out.push('\n');
    out
}

/// Recombines a complete set of shard documents ([`ShardRun::to_json`]) into the
/// campaign's figures. Validates everything before trusting a single slot: schema and
/// plan hash (against *this* process's `scale` + `specs`), consistent shard count, a
/// complete set of distinct shard indices, every unit in its shard's projection with a
/// kind matching the grid, and full grid coverage. Derived rows are then evaluated
/// once over the merged grid, so `results.json` built from the returned figures is
/// byte-identical to a single-process run at any worker count.
pub fn merge_shards(
    scale: Scale,
    specs: &[ExperimentSpec],
    docs: &[String],
) -> Result<Vec<FigureRows>, String> {
    if docs.is_empty() {
        return Err("no shard documents to merge".to_string());
    }
    // Closed explicitly on success; an early error return closes it via drop.
    let merge_span = obs::span("shard_merge", vec![("docs", (docs.len() as u64).into())]);
    let expected_plan = plan_hex(plan_hash(scale, specs));
    let unit_index = flatten_units(specs);
    let mut slots: Vec<Option<UnitResult>> = unit_index.iter().map(|_| None).collect();
    let mut count: Option<usize> = None;
    let mut seen_shards: Vec<usize> = Vec::new();

    for (d, doc) in docs.iter().enumerate() {
        let err = |msg: String| format!("shard document {d}: {msg}");
        let v = parse(doc.trim()).map_err(|e| err(format!("unparseable: {e}")))?;
        match v.get("schema").and_then(Json::as_str) {
            Some("piccolo-results-shard/v1") => {}
            other => return Err(err(format!("unexpected schema {other:?}"))),
        }
        match v.get("plan").and_then(Json::as_str) {
            Some(plan) if plan == expected_plan => {}
            other => {
                return Err(err(format!(
                    "plan hash {other:?} does not match this figure set and scale \
                     (expected {expected_plan}) — shards and merge must use identical \
                     figures, scale, and code revision"
                )))
            }
        }
        let shard_of = |key: &str| {
            v.get("shard")
                .and_then(|s| s.get(key))
                .and_then(Json::as_f64)
                .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                .map(|n| n as usize)
        };
        let (Some(index), Some(shard_count)) = (shard_of("index"), shard_of("count")) else {
            return Err(err("missing or invalid shard coordinates".to_string()));
        };
        if index >= shard_count {
            return Err(err(format!(
                "shard index {index} out of range 0..{shard_count}"
            )));
        }
        match count {
            None => count = Some(shard_count),
            Some(c) if c == shard_count => {}
            Some(c) => {
                return Err(err(format!(
                    "shard count {shard_count} disagrees with earlier documents ({c})"
                )))
            }
        }
        if seen_shards.contains(&index) {
            return Err(err(format!("duplicate shard {index}/{shard_count}")));
        }
        seen_shards.push(index);
        let shard = Shard {
            index,
            count: shard_count,
        };

        let units = v
            .get("units")
            .and_then(Json::as_array)
            .ok_or_else(|| err("missing units array".to_string()))?;
        for entry in units {
            let gid = entry
                .get("unit")
                .and_then(Json::as_f64)
                .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                .map(|n| n as usize)
                .ok_or_else(|| err("unit entry without a valid index".to_string()))?;
            if gid >= unit_index.len() {
                return Err(err(format!(
                    "unit {gid} out of range (grid has {} units)",
                    unit_index.len()
                )));
            }
            if !shard.selects(gid) {
                return Err(err(format!("unit {gid} does not belong to shard {shard}")));
            }
            if slots[gid].is_some() {
                return Err(err(format!("unit {gid} appears twice")));
            }
            let result = entry
                .get("result")
                .ok_or_else(|| err(format!("unit {gid} has no result")))?;
            let (figure, u) = unit_index[gid];
            if !codec::kind_matches(result, &specs[figure].units()[u]) {
                return Err(err(format!(
                    "unit {gid} kind does not match the plan's grid (corrupt or foreign file)"
                )));
            }
            slots[gid] = Some(
                codec::unit_result_from_json(result)
                    .map_err(|e| err(format!("unit {gid}: {e}")))?,
            );
        }
    }

    let count = count.expect("docs is non-empty");
    if docs.len() != count {
        return Err(format!(
            "incomplete shard set: {} document(s) for {count} shard(s)",
            docs.len()
        ));
    }
    let unit_results: Vec<UnitResult> = slots
        .into_iter()
        .enumerate()
        .map(|(gid, slot)| {
            slot.ok_or_else(|| format!("unit {gid} missing from every shard document"))
        })
        .collect::<Result<_, _>>()?;
    merge_span.close(vec![("units", (unit_results.len() as u64).into())]);
    Ok(evaluate_figures(specs, &unit_results))
}

/// A campaign plan with a stable identity: scale + spec list + the flattened unit
/// grid, pinned by [`plan_hash`]. This is the **lease projection** API the networked
/// coordinator (`piccolo-serve`) runs on — and the substrate shared by shards, resume
/// journals, and local runs:
///
/// * Any subset of global unit indices can be executed
///   ([`PlannedCampaign::execute_units`]), with each completed unit streamed out as
///   its canonical codec JSON — the exact bytes a journal entry or wire frame carries.
/// * Results arriving from elsewhere (another process, a TCP frame, a replayed
///   journal line) are validated against the grid
///   ([`PlannedCampaign::validate_result`]) and normalized to canonical bytes before
///   a slot is trusted.
/// * A fully-populated grid is merged through the same `plan_hash`-validated
///   [`merge_shards`] path as `repro --merge` ([`PlannedCampaign::evaluate`]), so
///   `results.json` built from network-collected results is byte-identical to a local
///   `--jobs 1` run.
/// * The server-side journal ([`PlannedCampaign::open_journal`] /
///   [`PlannedCampaign::replay_journal`]) uses the exact run-journal line format, so
///   a coordinator's streamed journal is replayable by `repro --resume` and vice
///   versa.
///
/// Duplicate results (at-least-once delivery after a lease timeout) are harmless by
/// construction: results land by global unit index and the grid is deterministic, so
/// a duplicate is necessarily byte-identical and the caller discards it by slot.
#[derive(Debug)]
pub struct PlannedCampaign {
    scale: Scale,
    specs: Vec<ExperimentSpec>,
    plan: u64,
    unit_index: Vec<(usize, usize)>,
}

impl PlannedCampaign {
    /// Plans a campaign over `specs` at `scale`, computing the plan hash and the
    /// flattened unit grid.
    #[must_use]
    pub fn new(scale: Scale, specs: Vec<ExperimentSpec>) -> Self {
        let plan = plan_hash(scale, &specs);
        let unit_index = flatten_units(&specs);
        Self {
            scale,
            specs,
            plan,
            unit_index,
        }
    }

    /// The plan's scale.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The plan's spec list, in registration order.
    #[must_use]
    pub fn specs(&self) -> &[ExperimentSpec] {
        &self.specs
    }

    /// The 16-hex plan-hash fingerprint two processes compare before exchanging a
    /// single unit result.
    #[must_use]
    pub fn plan_hex(&self) -> String {
        plan_hex(self.plan)
    }

    /// Total number of grid units (global indices are `0..num_units()`).
    #[must_use]
    pub fn num_units(&self) -> usize {
        self.unit_index.len()
    }

    /// Executes the given global unit indices (any order) over one worker pool,
    /// building exactly the distinct graphs those units need. `on_unit` is called
    /// from worker threads as each unit completes, with the unit's canonical codec
    /// JSON — the bytes to journal, send over a wire, or both. Returns the
    /// scheduling stats.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range or duplicate indices before executing anything.
    pub fn execute_units(
        &self,
        jobs: usize,
        units: &[usize],
        on_unit: &(dyn Fn(usize, &str) + Sync),
    ) -> Result<CampaignStats, String> {
        let mut seen = vec![false; self.unit_index.len()];
        for &gid in units {
            if gid >= self.unit_index.len() {
                return Err(format!(
                    "unit {gid} out of range (grid has {} units)",
                    self.unit_index.len()
                ));
            }
            if seen[gid] {
                return Err(format!("unit {gid} listed twice"));
            }
            seen[gid] = true;
        }
        // The executor's contract wants ascending indices; callers (a lease, a
        // replayed work list) may hold any order.
        let mut selected = units.to_vec();
        selected.sort_unstable();
        let hook = |gid: usize, result: &UnitResult| {
            on_unit(gid, &codec::unit_result_to_json(result).to_string());
        };
        let (_slots, stats) = execute_selected(
            jobs,
            &self.specs,
            &self.unit_index,
            &selected,
            &default_build,
            Some(&hook),
        );
        Ok(stats)
    }

    /// Validates one incoming result (range, unit-kind against the grid, lossless
    /// decode) and returns its **canonical** codec bytes — the normalization step that
    /// makes duplicate discard and journal replay byte-exact regardless of who
    /// serialized the result first.
    ///
    /// # Errors
    ///
    /// Describes what failed validation; the caller must discard the result.
    pub fn validate_result(&self, unit: usize, result_json: &str) -> Result<String, String> {
        if unit >= self.unit_index.len() {
            return Err(format!(
                "unit {unit} out of range (grid has {} units)",
                self.unit_index.len()
            ));
        }
        let v = parse(result_json.trim()).map_err(|e| format!("unit {unit}: unparseable: {e}"))?;
        let (figure, u) = self.unit_index[unit];
        if !codec::kind_matches(&v, &self.specs[figure].units()[u]) {
            return Err(format!("unit {unit} kind does not match the plan's grid"));
        }
        let result = codec::unit_result_from_json(&v).map_err(|e| format!("unit {unit}: {e}"))?;
        Ok(codec::unit_result_to_json(&result).to_string())
    }

    /// Merges a fully-populated grid of canonical results (global index + codec JSON,
    /// any order) into the campaign's figures, via the same `plan_hash`-validated
    /// [`merge_shards`] path as `repro --merge` — one synthetic 0/1 shard document,
    /// so every validation merge performs applies here too.
    ///
    /// # Errors
    ///
    /// Anything [`merge_shards`] rejects: missing or duplicate slots, kind mismatches,
    /// undecodable results.
    pub fn evaluate(&self, results: &[(usize, String)]) -> Result<Vec<FigureRows>, String> {
        let mut units = Vec::with_capacity(results.len());
        for (gid, result_json) in results {
            let v = parse(result_json.trim())
                .map_err(|e| format!("unit {gid}: unparseable result: {e}"))?;
            units.push((*gid, v));
        }
        units.sort_by_key(|(gid, _)| *gid);
        let doc = shard_doc(self.plan, Shard { index: 0, count: 1 }, self.scale, units);
        merge_shards(self.scale, &self.specs, &[doc])
    }

    /// Opens (or creates) the plan's journal at `path` for appending — the exact
    /// format `repro --resume` writes, so a coordinator-streamed journal finishes a
    /// local run and vice versa.
    ///
    /// # Errors
    ///
    /// Propagates file open/create errors.
    pub fn open_journal(&self, path: &Path) -> std::io::Result<CampaignJournal> {
        Ok(CampaignJournal {
            writer: journal::Writer::append_to(path, self.plan)?,
        })
    }

    /// Scans the journal at `path` and returns every entry that verifies against this
    /// plan, as canonical codec bytes by global unit index. A missing file is an
    /// empty journal, not an error.
    ///
    /// # Errors
    ///
    /// Propagates read errors other than a missing file.
    pub fn replay_journal(&self, path: &Path) -> std::io::Result<JournalReplay> {
        let replay = journal::read_replay(path, self.plan, &self.specs, &self.unit_index)?;
        Ok(JournalReplay {
            entries: replay
                .entries
                .into_iter()
                .map(|(gid, result)| (gid, codec::unit_result_to_json(&result).to_string()))
                .collect(),
            corrupt: replay.corrupt,
            mismatched: replay.mismatched,
        })
    }
}

/// Thread-safe appender for a plan's run journal (see
/// [`PlannedCampaign::open_journal`]). One checksummed line per recorded result,
/// safe to call from connection-handler or worker threads.
#[derive(Debug)]
pub struct CampaignJournal {
    writer: journal::Writer,
}

impl CampaignJournal {
    /// Appends one completed unit, given its **canonical** codec bytes (from
    /// [`PlannedCampaign::validate_result`] or an `on_unit` callback). The written
    /// line is byte-identical to what a local resumed run would journal for the same
    /// slot.
    pub fn record_result(&self, unit: usize, canonical_result_json: &str) {
        self.writer.record_raw(unit, canonical_result_json);
    }
}

/// What [`PlannedCampaign::replay_journal`] recovered: canonical codec bytes per
/// verified slot, plus the damage counters.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Verified entries by global unit index, re-serialized to canonical bytes.
    pub entries: BTreeMap<usize, String>,
    /// Lines dropped by the checksum / framing check.
    pub corrupt: usize,
    /// Well-formed entries for a different plan or an impossible slot.
    pub mismatched: usize,
}

/// Campaign executor parameterized over the graph-build function, so tests can count
/// builds per key or inject failing builds without touching the scheduler itself.
pub(crate) fn run_campaign_with(
    jobs: usize,
    specs: &[ExperimentSpec],
    build: impl Fn(GraphKey) -> Arc<Csr> + Sync,
) -> CampaignRun {
    let unit_index = flatten_units(specs);
    let selected: Vec<usize> = (0..unit_index.len()).collect();
    let (slots, stats) = execute_selected(jobs, specs, &unit_index, &selected, &build, None);
    let unit_results: Vec<UnitResult> = slots
        .into_iter()
        .map(|slot| slot.expect("every unit was scheduled"))
        .collect();
    CampaignRun {
        figures: evaluate_figures(specs, &unit_results),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{self, Scale};
    use crate::report::results_json;
    use piccolo_algo::Algorithm;
    use piccolo_graph::Dataset;

    fn tiny() -> Scale {
        Scale {
            scale_shift: 15,
            seed: 3,
            max_iterations: 2,
        }
    }

    /// A small multi-figure campaign whose figures share one graph key.
    fn shared_graph_specs() -> Vec<ExperimentSpec> {
        let ds = [Dataset::Sinaweibo];
        let algs = [Algorithm::Bfs];
        vec![
            experiments::fig10_spec(tiny(), &ds, &algs),
            experiments::fig12_spec(tiny(), &ds, &algs),
            experiments::fig19a_spec(tiny(), &ds),
        ]
    }

    #[test]
    fn campaign_results_json_is_byte_identical_across_worker_counts() {
        let specs = shared_graph_specs();
        let reference = SweepRunner::sequential().run_campaign(&specs);
        assert!(
            reference.stats.scatter_mem_clocks > 0,
            "executed sim runs must report scatter-phase clocks"
        );
        let doc = results_json(tiny(), &reference.figures);
        for jobs in [2, 8] {
            let parallel = SweepRunner::new(jobs).run_campaign(&specs);
            assert_eq!(
                results_json(tiny(), &parallel.figures),
                doc,
                "jobs={jobs} must be byte-identical to jobs=1"
            );
            assert_eq!(
                parallel.stats, reference.stats,
                "stats are deterministic too"
            );
        }
    }

    #[test]
    fn each_distinct_graph_is_built_exactly_once_campaign_wide() {
        // Eviction is always active, so this doubles as the eviction-never-rebuilds
        // pin: if the refcounted store dropped a graph too early, a remaining unit
        // would panic; if it somehow triggered a rebuild, the count would exceed 1.
        let specs = shared_graph_specs();
        for jobs in [1, 4] {
            let counts: Mutex<BTreeMap<GraphKey, usize>> = Mutex::new(BTreeMap::new());
            let run = run_campaign_with(jobs, &specs, |(dataset, shift, seed)| {
                *counts
                    .lock()
                    .unwrap()
                    .entry((dataset, shift, seed))
                    .or_insert(0) += 1;
                Arc::new(dataset.build(shift, seed))
            });
            let counts = counts.into_inner().unwrap();
            // All three figures use the same (Sinaweibo, 15, 3) graph.
            assert_eq!(
                counts.len(),
                1,
                "jobs={jobs}: one distinct key campaign-wide"
            );
            assert!(
                counts.values().all(|&c| c == 1),
                "jobs={jobs}: every distinct graph_key is built exactly once, got {counts:?}"
            );
            assert_eq!(run.stats.graphs_built, 1);
            // Per-figure scheduling would have built the graph once per figure.
            assert_eq!(run.stats.builds_saved, specs.len() - 1);
            assert_eq!(run.stats.figures, specs.len());
            assert!(run.stats.sim_runs > run.stats.graphs_built);
            // The last consumer evicted the graph — nothing stays pinned.
            assert_eq!(run.stats.graphs_evicted, run.stats.graphs_built);
        }
    }

    #[test]
    fn eviction_drops_the_store_arc_after_the_last_consumer() {
        // Keep a weak handle to every Arc the build function produced: the stats pin
        // that every slot reached Evicted (the graph was dropped when its last
        // consumer finished, not when the campaign ended), and the weak handles prove
        // no clone leaked past the campaign.
        let specs = shared_graph_specs();
        let weaks: Mutex<Vec<std::sync::Weak<Csr>>> = Mutex::new(Vec::new());
        let run = run_campaign_with(2, &specs, |(dataset, shift, seed)| {
            let graph = Arc::new(dataset.build(shift, seed));
            weaks.lock().unwrap().push(Arc::downgrade(&graph));
            graph
        });
        assert_eq!(run.stats.graphs_evicted, run.stats.graphs_built);
        // The store is gone (run_campaign_with returned) and every unit released its
        // handle, so no graph can be alive anywhere.
        for weak in weaks.into_inner().unwrap() {
            assert!(
                weak.upgrade().is_none(),
                "a graph outlived the campaign despite eviction"
            );
        }
    }

    #[test]
    fn figure_rows_do_not_depend_on_campaign_composition() {
        // A figure's rows must be identical whether it runs alone or shares a campaign
        // (and its graphs) with other figures — otherwise `repro fig10` and
        // `repro all` would disagree.
        let specs = shared_graph_specs();
        let alone = SweepRunner::sequential().run_campaign(&specs[..1]);
        assert_eq!(alone.stats.builds_saved, 0);
        let together = SweepRunner::new(4).run_campaign(&specs);
        assert_eq!(alone.figures[0].points, together.figures[0].points);
        // And the rows satisfy a figure-level invariant computed by independent code:
        // fig10's baseline-over-baseline geomean row is exactly 1.
        let gm_base = alone.figures[0]
            .points
            .iter()
            .find(|p| p.label == "GM/GraphDyns (Cache)")
            .expect("fig10 has a baseline GM row");
        assert!((gm_base.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn graph_build_panic_propagates_with_its_original_payload() {
        let specs = shared_graph_specs();
        for jobs in [1, 4] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_campaign_with(jobs, &specs, |key: GraphKey| -> Arc<Csr> {
                    panic!("graph build exploded for {key:?}")
                })
            }));
            let err = result.expect_err("build panic must propagate");
            let msg = err
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| err.downcast_ref::<&str>().copied())
                .unwrap_or("");
            assert!(
                msg.contains("graph build exploded"),
                "jobs={jobs}: the build's own payload must win, got '{msg}'"
            );
        }
    }

    #[test]
    fn empty_campaign_is_empty() {
        let run = SweepRunner::new(4).run_campaign(&[]);
        assert!(run.figures.is_empty());
        assert_eq!(run.stats.graphs_built, 0);
        assert_eq!(run.stats.builds_saved, 0);
        assert_eq!(run.stats.graphs_evicted, 0);
    }

    #[test]
    fn external_datasets_flow_through_the_campaign_unchanged() {
        // An external graph registered under a name behaves exactly like a stand-in:
        // it gets a graph key, is "built" (fetched) once, evicted at the end, and the
        // rows are byte-identical for any worker count.
        use piccolo_graph::{external, generate};

        let g = generate::kronecker(10, 4, 23);
        let ds = external::register("campaign-test-ext", g);
        let algs = [Algorithm::Bfs];
        let specs = vec![
            experiments::fig10_spec(tiny(), &[ds], &algs),
            experiments::fig12_spec(tiny(), &[ds], &algs),
        ];
        let reference = SweepRunner::sequential().run_campaign(&specs);
        assert_eq!(reference.stats.graphs_built, 1);
        assert_eq!(reference.stats.builds_saved, 1);
        assert_eq!(reference.stats.graphs_evicted, 1);
        // Every per-dataset row (everything but the GM aggregates) names the external.
        assert!(reference.figures[0]
            .points
            .iter()
            .filter(|p| !p.label.starts_with("GM/"))
            .all(|p| p.label.contains("campaign-test-ext")));
        let parallel = SweepRunner::new(4).run_campaign(&specs);
        assert_eq!(
            results_json(tiny(), &parallel.figures),
            results_json(tiny(), &reference.figures)
        );
    }

    #[test]
    fn campaign_eviction_returns_lazily_registered_external_memory() {
        // The out-of-core contract: once the campaign's last unit over a lazily
        // registered external graph finishes, the graph's memory is actually freed —
        // the registry holds only a weak handle plus the loader for a future reload.
        use piccolo_graph::{external, generate};
        use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};

        let g = generate::kronecker(10, 4, 29);
        let loads = Arc::new(AtomicUsize::new(0));
        let ds = {
            let loads = Arc::clone(&loads);
            external::register_lazy(
                "campaign-test-oocore",
                external::csr_fingerprint(&g),
                g.num_vertices() as u64,
                g.num_edges(),
                move || {
                    loads.fetch_add(1, AtOrd::SeqCst);
                    g.clone()
                },
            )
        };
        let piccolo_graph::Dataset::External { id } = ds else {
            panic!("register_lazy returns an External dataset");
        };
        let specs = vec![experiments::fig12_spec(tiny(), &[ds], &[Algorithm::Bfs])];

        let run = SweepRunner::new(2).run_campaign(&specs);
        assert_eq!(run.stats.graphs_built, 1);
        assert_eq!(run.stats.graphs_evicted, 1);
        assert_eq!(loads.load(AtOrd::SeqCst), 1);
        assert_eq!(
            external::is_loaded(id),
            Some(false),
            "eviction must drop the registry pin, not hold the CSR until exit"
        );

        // A later campaign in the same process transparently reloads and produces
        // identical bytes.
        let again = SweepRunner::sequential().run_campaign(&specs);
        assert_eq!(loads.load(AtOrd::SeqCst), 2, "reload on demand");
        assert_eq!(
            results_json(tiny(), &again.figures),
            results_json(tiny(), &run.figures)
        );
        assert_eq!(external::is_loaded(id), Some(false));
    }

    #[test]
    fn shard_parse_accepts_valid_and_rejects_invalid() {
        assert_eq!(Shard::parse("0/3"), Ok(Shard { index: 0, count: 3 }));
        assert_eq!(Shard::parse("2/3"), Ok(Shard { index: 2, count: 3 }));
        assert_eq!(Shard { index: 1, count: 4 }.to_string(), "1/4");
        for bad in ["3/3", "4/3", "-1/3", "a/3", "1/", "/3", "1", "1/0"] {
            assert!(Shard::parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn plan_hash_is_stable_and_sensitive() {
        let specs = shared_graph_specs();
        assert_eq!(plan_hash(tiny(), &specs), plan_hash(tiny(), &specs));
        // A different scale, figure subset, or figure order is a different plan.
        let other_scale = Scale {
            scale_shift: 14,
            ..tiny()
        };
        assert_ne!(plan_hash(tiny(), &specs), plan_hash(other_scale, &specs));
        assert_ne!(plan_hash(tiny(), &specs), plan_hash(tiny(), &specs[..2]));
        let mut reordered = shared_graph_specs();
        reordered.reverse();
        assert_ne!(plan_hash(tiny(), &specs), plan_hash(tiny(), &reordered));
    }

    #[test]
    fn plan_hash_tracks_external_graph_content() {
        use piccolo_graph::{external, generate};

        // Re-registering a name keeps the registry id, so RunConfig's Debug output is
        // identical for both graphs — only the content fold can tell them apart. A
        // journal or shard file computed over the old graph must not replay into a
        // campaign over the new one.
        let ds = external::register("plan-hash-ext", generate::kronecker(9, 4, 1));
        let specs = vec![experiments::fig12_spec(tiny(), &[ds], &[Algorithm::Bfs])];
        let original = plan_hash(tiny(), &specs);
        external::register("plan-hash-ext", generate::kronecker(9, 4, 2));
        assert_ne!(plan_hash(tiny(), &specs), original);
        // Restoring identical content restores the plan.
        external::register("plan-hash-ext", generate::kronecker(9, 4, 1));
        assert_eq!(plan_hash(tiny(), &specs), original);
    }

    #[test]
    fn merged_shards_are_byte_identical_to_the_unsharded_run() {
        let specs = shared_graph_specs();
        let reference = SweepRunner::new(4).run_campaign(&specs);
        let doc = results_json(tiny(), &reference.figures);
        let shard_count = 3;
        let mut shard_docs = Vec::new();
        let mut sim_runs = 0;
        for index in 0..shard_count {
            let shard = Shard {
                index,
                count: shard_count,
            };
            let run = SweepRunner::new(2).run_campaign_shard(tiny(), &specs, shard);
            // Each shard built only what it needed and evicted all of it.
            assert_eq!(run.stats.graphs_evicted, run.stats.graphs_built);
            sim_runs += run.stats.sim_runs;
            shard_docs.push(run.to_json());
        }
        assert_eq!(
            sim_runs, reference.stats.sim_runs,
            "shards partition the grid"
        );
        let merged = merge_shards(tiny(), &specs, &shard_docs).expect("merge succeeds");
        assert_eq!(results_json(tiny(), &merged), doc);
    }

    #[test]
    fn merge_rejects_foreign_incomplete_and_duplicate_shards() {
        let specs = shared_graph_specs();
        let shard_docs: Vec<String> = (0..2)
            .map(|index| {
                SweepRunner::sequential()
                    .run_campaign_shard(tiny(), &specs, Shard { index, count: 2 })
                    .to_json()
            })
            .collect();
        // The happy path works...
        assert!(merge_shards(tiny(), &specs, &shard_docs).is_ok());
        // ...but a missing shard, a duplicated shard, a foreign plan, and garbage all
        // fail with a descriptive error instead of producing wrong output.
        let missing = merge_shards(tiny(), &specs, &shard_docs[..1]);
        assert!(missing.unwrap_err().contains("incomplete shard set"));
        let dup = merge_shards(
            tiny(),
            &specs,
            &[shard_docs[0].clone(), shard_docs[0].clone()],
        );
        assert!(dup.unwrap_err().contains("duplicate shard"));
        let foreign_scale = Scale {
            scale_shift: 14,
            ..tiny()
        };
        let foreign = merge_shards(foreign_scale, &specs, &shard_docs);
        assert!(foreign.unwrap_err().contains("plan hash"));
        let garbage = merge_shards(tiny(), &specs, &["not json".to_string()]);
        assert!(garbage.is_err());
        let wrong_schema = merge_shards(
            tiny(),
            &specs,
            &[r#"{"schema":"piccolo-results/v1"}"#.to_string()],
        );
        assert!(wrong_schema.unwrap_err().contains("schema"));
    }

    #[test]
    fn a_single_shard_of_one_is_the_whole_campaign() {
        let specs = shared_graph_specs();
        let reference = SweepRunner::sequential().run_campaign(&specs);
        let shard = SweepRunner::sequential().run_campaign_shard(
            tiny(),
            &specs,
            Shard { index: 0, count: 1 },
        );
        assert_eq!(shard.stats, reference.stats);
        let merged = merge_shards(tiny(), &specs, &[shard.to_json()]).unwrap();
        assert_eq!(
            results_json(tiny(), &merged),
            results_json(tiny(), &reference.figures)
        );
    }

    #[test]
    fn resume_journal_replays_completed_units() {
        let dir = std::env::temp_dir().join(format!("piccolo-campaign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("resume-unit-test.jsonl");
        let _ = std::fs::remove_file(&journal);

        let specs = shared_graph_specs();
        let runner = SweepRunner::new(2);
        let first = runner
            .run_campaign_resumed(tiny(), &specs, &journal)
            .unwrap();
        assert_eq!(first.replayed, 0);
        assert!(first.executed > 0);
        let doc = results_json(tiny(), &first.run.figures);

        // A second invocation replays everything, executes nothing, and skips every
        // journaled build (the ROADMAP "builds are not journaled" residual, pinned).
        let second = runner
            .run_campaign_resumed(tiny(), &specs, &journal)
            .unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.replayed, first.executed);
        assert_eq!(second.run.stats.graphs_built, 0);
        assert_eq!(second.builds_skipped, first.run.stats.graphs_built);
        assert_eq!(results_json(tiny(), &second.run.figures), doc);

        // A different plan ignores every entry — unit and build lines alike
        // (mismatched, not replayed).
        let other_scale = Scale {
            max_iterations: 1,
            ..tiny()
        };
        let other_journal = dir.join("resume-unit-test-other.jsonl");
        let _ = std::fs::remove_file(&other_journal);
        std::fs::copy(&journal, &other_journal).unwrap();
        let foreign = runner
            .run_campaign_resumed(other_scale, &specs, &other_journal)
            .unwrap();
        assert_eq!(foreign.replayed, 0);
        assert_eq!(
            foreign.mismatched,
            first.executed + first.run.stats.graphs_built
        );
        assert_eq!(foreign.executed, first.executed);
        assert_eq!(foreign.builds_skipped, 0);

        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&other_journal);
    }

    #[test]
    fn partial_resume_rebuilds_only_graphs_with_missing_units() {
        // Kill simulation targeting one graph: drop exactly the journal entries of
        // units that need graph B. The resumed invocation must rebuild B (its units
        // re-run) but skip graph A outright — per-graph build skipping, not
        // all-or-nothing.
        let dir =
            std::env::temp_dir().join(format!("piccolo-campaign-partial-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("resume-partial.jsonl");
        let _ = std::fs::remove_file(&journal);

        let a = Dataset::UciUni;
        let b = Dataset::Sinaweibo;
        let specs = vec![experiments::fig12_spec(tiny(), &[a, b], &[Algorithm::Bfs])];
        let runner = SweepRunner::new(2);
        let first = runner
            .run_campaign_resumed(tiny(), &specs, &journal)
            .unwrap();
        assert_eq!(first.run.stats.graphs_built, 2);
        let doc = results_json(tiny(), &first.run.figures);

        // Identify graph B's units from the grid and strip their journal lines.
        let unit_index = flatten_units(&specs);
        let b_units: Vec<usize> = (0..unit_index.len())
            .filter(|&gid| {
                let (figure, u) = unit_index[gid];
                matches!(&specs[figure].units()[u], Unit::Sim(rc) if rc.dataset == b)
            })
            .collect();
        assert!(!b_units.is_empty());
        let kept: Vec<String> = std::fs::read_to_string(&journal)
            .unwrap()
            .lines()
            .filter(|line| {
                !b_units
                    .iter()
                    .any(|gid| line.contains(&format!("\"unit\":{gid},")))
            })
            .map(str::to_string)
            .collect();
        std::fs::write(&journal, kept.join("\n") + "\n").unwrap();

        let resumed = runner
            .run_campaign_resumed(tiny(), &specs, &journal)
            .unwrap();
        assert_eq!(resumed.executed, b_units.len());
        assert_eq!(
            resumed.run.stats.graphs_built, 1,
            "only the graph with missing units is rebuilt"
        );
        assert_eq!(
            resumed.builds_skipped, 1,
            "the fully-replayed graph's journaled build is skipped"
        );
        assert_eq!(results_json(tiny(), &resumed.run.figures), doc);

        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn planned_campaign_lease_execution_merges_to_local_bytes() {
        // The networked substrate: execute the grid as arbitrary "leases" of
        // unordered unit indices, validate each streamed result, and evaluate
        // the collected grid — the merged document must be byte-identical to a
        // plain sequential run of the same plan.
        let specs = shared_graph_specs();
        let reference = SweepRunner::sequential().run_campaign(&specs);
        let doc = results_json(tiny(), &reference.figures);

        let campaign = PlannedCampaign::new(tiny(), shared_graph_specs());
        assert!(campaign.num_units() > 2);
        let collected: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let hook = |unit: usize, result_json: &str| {
            let canonical = campaign.validate_result(unit, result_json).unwrap();
            assert_eq!(canonical, result_json, "hook results are already canonical");
            collected.lock().unwrap().push((unit, canonical));
        };
        // Two leases, deliberately interleaved and descending: the projection
        // accepts any order.
        let all: Vec<usize> = (0..campaign.num_units()).collect();
        let (odd, even): (Vec<usize>, Vec<usize>) = all.iter().partition(|&&g| g % 2 == 1);
        for lease in [odd, even] {
            let reversed: Vec<usize> = lease.into_iter().rev().collect();
            campaign.execute_units(2, &reversed, &hook).unwrap();
        }
        // The projection rejects malformed leases outright.
        assert!(campaign.execute_units(1, &[0, 0], &hook).is_err());
        assert!(campaign
            .execute_units(1, &[campaign.num_units()], &hook)
            .is_err());

        let results = collected.into_inner().unwrap();
        assert_eq!(results.len(), campaign.num_units());
        let figures = campaign.evaluate(&results).unwrap();
        assert_eq!(results_json(campaign.scale(), &figures), doc);
        // And malformed results: range, figure-kind mismatch.
        assert!(campaign
            .validate_result(campaign.num_units(), "{}")
            .is_err());
        assert!(campaign
            .validate_result(0, "{\"not\":\"a result\"}")
            .is_err());
    }

    #[test]
    fn planned_campaign_journal_streams_and_replays() {
        // The coordinator's crash-safety story: results recorded one at a time
        // through CampaignJournal replay byte-identically, and a journal for a
        // different plan contributes nothing.
        let dir = std::env::temp_dir().join(format!("piccolo-planned-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("planned.jsonl");
        let _ = std::fs::remove_file(&journal_path);

        let campaign = PlannedCampaign::new(tiny(), shared_graph_specs());
        let journal = campaign.open_journal(&journal_path).unwrap();
        let collected: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let units: Vec<usize> = (0..campaign.num_units()).collect();
        campaign
            .execute_units(1, &units, &|unit, result_json| {
                journal.record_result(unit, result_json);
                collected
                    .lock()
                    .unwrap()
                    .push((unit, result_json.to_string()));
            })
            .unwrap();
        let mut recorded = collected.into_inner().unwrap();
        recorded.sort_unstable_by_key(|(gid, _)| *gid);

        let replay = campaign.replay_journal(&journal_path).unwrap();
        assert_eq!((replay.corrupt, replay.mismatched), (0, 0));
        let replayed: Vec<(usize, String)> = replay.entries.into_iter().collect();
        assert_eq!(
            replayed, recorded,
            "replay returns the exact recorded bytes"
        );

        // A plan with a different scale verifies none of the entries.
        let other = PlannedCampaign::new(
            Scale {
                max_iterations: 1,
                ..tiny()
            },
            shared_graph_specs(),
        );
        assert_ne!(other.plan_hex(), campaign.plan_hex());
        let foreign = other.replay_journal(&journal_path).unwrap();
        assert!(foreign.entries.is_empty());
        assert_eq!(foreign.mismatched, recorded.len());

        // A missing journal is an empty replay, not an error (fresh start).
        let fresh = campaign.replay_journal(&dir.join("absent.jsonl")).unwrap();
        assert!(fresh.entries.is_empty() && fresh.corrupt == 0);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
