//! Cross-figure campaign scheduler: one global work queue for many figures, building
//! each distinct graph exactly once across the whole campaign.
//!
//! The paper's evaluation sweeps many figure grids over the same handful of graphs. A
//! per-figure runner rebuilds each `(dataset, scale_shift, seed)` graph once *per
//! figure* and parallelizes only *within* a figure, which leaves a long sequential tail
//! on the all-figure run. This module flattens every requested figure's
//! [`ExperimentSpec`] grid into **one** queue executed by a single
//! [`run_indexed`] pool:
//!
//! 1. **Graph builds are schedulable units.** The queue starts with one build task per
//!    distinct [`GraphKey`] across the whole campaign — most expensive first, so the
//!    twitter-scale CSR starts before the cheap graphs — followed by every figure's
//!    grid units, scheduled measure-units-first and then by ascending estimated cost of
//!    the graph they need (results are un-permuted into `(figure, unit)` slots
//!    afterwards, so scheduling order never shows in the output). Workers claim indices
//!    in increasing order, so every build is claimed before any grid unit, and the
//!    units claimed first are the ones whose graphs finish earliest — while one worker
//!    builds the largest CSR, the others build the remaining graphs and then drain
//!    units of the already-built ones instead of blocking behind the big build.
//! 2. **A shared graph store** hands finished graphs to simulation units. A unit whose
//!    graph is still being built blocks on that slot's condvar; the builder is
//!    guaranteed to be a live worker (builds occupy the lowest queue indices), so the
//!    wait always terminates. A panicking build marks its slot failed and wakes all
//!    waiters, which panic in turn; [`run_indexed`] then resumes the **lowest-indexed**
//!    payload — the build's original panic — on the caller.
//! 3. **Results land by `(figure, unit index)` slot**, and derived rows (speedups,
//!    geomeans) are evaluated per figure from its completed grid, so campaign output is
//!    byte-identical for any worker count — the property CI enforces on
//!    `repro --jobs 1` vs `--jobs $(nproc)`.
//!
//! [`SweepRunner::run`] is a campaign of one figure, so every figure entry point in
//! [`crate::experiments`] routes through this scheduler.

use crate::report::FigureRows;
use crate::sweep::{run_indexed, ExperimentSpec, GraphKey, SweepRunner, Unit, UnitResult};
use piccolo_graph::Csr;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Deterministic estimate of a graph build's cost — the paper's edge count shrunk by
/// the run's scale shift. Orders the schedule only; it never affects any result.
fn build_cost((dataset, scale_shift, _seed): GraphKey) -> u64 {
    dataset
        .spec()
        .paper_edges
        .checked_shr(scale_shift)
        .unwrap_or(0)
}

/// Scheduling statistics of one executed campaign (all deterministic counts — safe to
/// log anywhere without breaking output parity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignStats {
    /// Figures executed.
    pub figures: usize,
    /// Full simulation runs executed (each references one shared graph).
    pub sim_runs: usize,
    /// Self-contained measure units executed.
    pub measure_units: usize,
    /// Distinct graphs actually built (exactly once each).
    pub graphs_built: usize,
    /// Builds avoided relative to per-figure scheduling (the sum over figures of their
    /// distinct keys, minus the campaign-wide distinct keys). Zero for a single figure.
    pub builds_saved: usize,
}

/// Output of [`SweepRunner::run_campaign`]: every figure's rows plus scheduling stats.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// One entry per requested figure, in request order.
    pub figures: Vec<FigureRows>,
    /// Scheduling statistics (graphs built vs saved, unit counts).
    pub stats: CampaignStats,
}

/// State of one graph slot in the shared store.
enum SlotState {
    /// The build task has not finished yet.
    Pending,
    /// The graph is available to every simulation unit that needs it.
    Ready(Arc<Csr>),
    /// The build task panicked; waiters must panic too (the build's own payload is the
    /// one the pool re-raises).
    Failed,
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// Shared graph store: one slot per distinct [`GraphKey`] of the campaign.
struct GraphStore {
    slots: HashMap<GraphKey, Slot>,
}

impl GraphStore {
    fn new(keys: &[GraphKey]) -> Self {
        Self {
            slots: keys
                .iter()
                .map(|&k| {
                    (
                        k,
                        Slot {
                            state: Mutex::new(SlotState::Pending),
                            ready: Condvar::new(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Publishes a finished graph and wakes every waiting simulation unit.
    fn fulfill(&self, key: GraphKey, graph: Arc<Csr>) {
        let slot = &self.slots[&key];
        *slot.state.lock().unwrap() = SlotState::Ready(graph);
        slot.ready.notify_all();
    }

    /// Marks a build as failed and wakes waiters so they can propagate the failure.
    fn fail(&self, key: GraphKey) {
        let slot = &self.slots[&key];
        let mut state = slot.state.lock().unwrap();
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Failed;
        }
        drop(state);
        slot.ready.notify_all();
    }

    /// Blocks until `key`'s graph is built and returns it. Panics if the build failed.
    fn wait(&self, key: GraphKey) -> Arc<Csr> {
        let slot = &self.slots[&key];
        let mut state = slot.state.lock().unwrap();
        loop {
            match &*state {
                SlotState::Ready(graph) => return Arc::clone(graph),
                SlotState::Failed => panic!("graph build for {key:?} panicked"),
                SlotState::Pending => state = slot.ready.wait(state).unwrap(),
            }
        }
    }
}

/// Marks the slot [`SlotState::Failed`] unless disarmed — keeps a panicking build from
/// leaving waiters blocked forever.
struct FailGuard<'a> {
    store: &'a GraphStore,
    key: GraphKey,
    armed: bool,
}

impl Drop for FailGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.store.fail(self.key);
        }
    }
}

/// Output of one global queue slot.
enum TaskOut {
    /// A graph-build unit completed (its product lives in the store).
    Built,
    /// A grid unit completed.
    Unit(UnitResult),
}

impl SweepRunner {
    /// Executes `specs` as one campaign: a single global [`run_indexed`] pool over all
    /// graph builds and grid units, building each distinct [`GraphKey`] exactly once
    /// campaign-wide. Returns each figure's rows (derived points evaluated per figure)
    /// plus scheduling stats. Output is byte-identical for every worker count.
    pub fn run_campaign(&self, specs: &[ExperimentSpec]) -> CampaignRun {
        run_campaign_with(self.jobs(), specs, |(dataset, shift, seed)| {
            dataset.build(shift, seed)
        })
    }
}

/// Campaign executor parameterized over the graph-build function, so tests can count
/// builds per key or inject failing builds without touching the scheduler itself.
pub(crate) fn run_campaign_with(
    jobs: usize,
    specs: &[ExperimentSpec],
    build: impl Fn(GraphKey) -> Csr + Sync,
) -> CampaignRun {
    // Distinct graph keys in first-appearance order (deterministic), plus the number of
    // builds a per-figure scheduler would have performed, for the stats.
    let mut keys: Vec<GraphKey> = Vec::new();
    let mut per_figure_builds = 0usize;
    for spec in specs {
        let mut figure_keys: Vec<GraphKey> = Vec::new();
        for unit in spec.units() {
            if let Unit::Sim(rc) = unit {
                let key = rc.graph_key();
                if !figure_keys.contains(&key) {
                    figure_keys.push(key);
                }
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
        per_figure_builds += figure_keys.len();
    }

    // The most expensive builds go first so they start (are claimed) earliest and
    // overlap the most of the remaining campaign. Stable sort: ties keep
    // first-appearance order, so the schedule stays deterministic.
    let n_builds = keys.len();
    keys.sort_by_key(|&key| std::cmp::Reverse(build_cost(key)));

    // Flatten every figure's grid behind the build tasks: global slot `n_builds + j`
    // executes figure `unit_index[schedule[j]].0`, unit `unit_index[schedule[j]].1`.
    // The schedule claims measure units (always runnable) and cheap-graph sims first,
    // so workers drain units whose graphs finish earliest instead of blocking behind
    // the largest build; results are un-permuted below, so scheduling order never
    // shows in the output.
    let mut unit_index: Vec<(usize, usize)> = Vec::new();
    for (figure, spec) in specs.iter().enumerate() {
        unit_index.extend((0..spec.units().len()).map(|u| (figure, u)));
    }
    let mut schedule: Vec<usize> = (0..unit_index.len()).collect();
    schedule.sort_by_key(|&j| {
        let (figure, unit) = unit_index[j];
        match &specs[figure].units()[unit] {
            Unit::Measure(_) => 0,
            Unit::Sim(rc) => 1 + build_cost(rc.graph_key()),
        }
    });

    let store = GraphStore::new(&keys);
    let outputs = run_indexed(jobs, n_builds + unit_index.len(), |i| {
        if i < n_builds {
            let key = keys[i];
            let mut guard = FailGuard {
                store: &store,
                key,
                armed: true,
            };
            let graph = build(key);
            store.fulfill(key, Arc::new(graph));
            guard.armed = false;
            TaskOut::Built
        } else {
            let (figure, unit) = unit_index[schedule[i - n_builds]];
            TaskOut::Unit(match &specs[figure].units()[unit] {
                Unit::Sim(rc) => {
                    let graph = store.wait(rc.graph_key());
                    UnitResult::Run(Box::new(rc.execute(&graph)))
                }
                Unit::Measure(f) => UnitResult::Points(f()),
            })
        }
    });

    // Un-permute the scheduled outputs back into figure-major `(figure, unit)` order
    // and evaluate each figure's derived rows from its completed grid.
    let mut slots: Vec<Option<UnitResult>> = unit_index.iter().map(|_| None).collect();
    for (j, out) in outputs.into_iter().skip(n_builds).enumerate() {
        match out {
            TaskOut::Unit(result) => slots[schedule[j]] = Some(result),
            TaskOut::Built => unreachable!("build outputs precede unit outputs"),
        }
    }
    let unit_results: Vec<UnitResult> = slots
        .into_iter()
        .map(|slot| slot.expect("schedule is a permutation of the unit indices"))
        .collect();
    let mut figures = Vec::with_capacity(specs.len());
    let mut offset = 0usize;
    let mut sim_runs = 0usize;
    let mut measure_units = 0usize;
    for spec in specs {
        let grid = &unit_results[offset..offset + spec.units().len()];
        offset += spec.units().len();
        sim_runs += spec.num_runs();
        measure_units += spec.num_units() - spec.num_runs();
        figures.push(FigureRows {
            name: spec.name().to_string(),
            title: spec.title().to_string(),
            points: spec.evaluate(grid),
        });
    }

    CampaignRun {
        figures,
        stats: CampaignStats {
            figures: specs.len(),
            sim_runs,
            measure_units,
            // One build unit per distinct key by construction; a panicking build
            // aborts the whole campaign, so a returned run always built all of them.
            graphs_built: n_builds,
            builds_saved: per_figure_builds - n_builds,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{self, Scale};
    use crate::report::results_json;
    use piccolo_algo::Algorithm;
    use piccolo_graph::Dataset;

    fn tiny() -> Scale {
        Scale {
            scale_shift: 15,
            seed: 3,
            max_iterations: 2,
        }
    }

    /// A small multi-figure campaign whose figures share one graph key.
    fn shared_graph_specs() -> Vec<ExperimentSpec> {
        let ds = [Dataset::Sinaweibo];
        let algs = [Algorithm::Bfs];
        vec![
            experiments::fig10_spec(tiny(), &ds, &algs),
            experiments::fig12_spec(tiny(), &ds, &algs),
            experiments::fig19a_spec(tiny(), &ds),
        ]
    }

    #[test]
    fn campaign_results_json_is_byte_identical_across_worker_counts() {
        let specs = shared_graph_specs();
        let reference = SweepRunner::sequential().run_campaign(&specs);
        let doc = results_json(tiny(), &reference.figures);
        for jobs in [2, 8] {
            let parallel = SweepRunner::new(jobs).run_campaign(&specs);
            assert_eq!(
                results_json(tiny(), &parallel.figures),
                doc,
                "jobs={jobs} must be byte-identical to jobs=1"
            );
            assert_eq!(
                parallel.stats, reference.stats,
                "stats are deterministic too"
            );
        }
    }

    #[test]
    fn each_distinct_graph_is_built_exactly_once_campaign_wide() {
        let specs = shared_graph_specs();
        for jobs in [1, 4] {
            let counts: Mutex<HashMap<GraphKey, usize>> = Mutex::new(HashMap::new());
            let run = run_campaign_with(jobs, &specs, |(dataset, shift, seed)| {
                *counts
                    .lock()
                    .unwrap()
                    .entry((dataset, shift, seed))
                    .or_insert(0) += 1;
                dataset.build(shift, seed)
            });
            let counts = counts.into_inner().unwrap();
            // All three figures use the same (Sinaweibo, 15, 3) graph.
            assert_eq!(
                counts.len(),
                1,
                "jobs={jobs}: one distinct key campaign-wide"
            );
            assert!(
                counts.values().all(|&c| c == 1),
                "jobs={jobs}: every distinct graph_key is built exactly once, got {counts:?}"
            );
            assert_eq!(run.stats.graphs_built, 1);
            // Per-figure scheduling would have built the graph once per figure.
            assert_eq!(run.stats.builds_saved, specs.len() - 1);
            assert_eq!(run.stats.figures, specs.len());
            assert!(run.stats.sim_runs > run.stats.graphs_built);
        }
    }

    #[test]
    fn figure_rows_do_not_depend_on_campaign_composition() {
        // A figure's rows must be identical whether it runs alone or shares a campaign
        // (and its graphs) with other figures — otherwise `repro fig10` and
        // `repro all` would disagree.
        let specs = shared_graph_specs();
        let alone = SweepRunner::sequential().run_campaign(&specs[..1]);
        assert_eq!(alone.stats.builds_saved, 0);
        let together = SweepRunner::new(4).run_campaign(&specs);
        assert_eq!(alone.figures[0].points, together.figures[0].points);
        // And the rows satisfy a figure-level invariant computed by independent code:
        // fig10's baseline-over-baseline geomean row is exactly 1.
        let gm_base = alone.figures[0]
            .points
            .iter()
            .find(|p| p.label == "GM/GraphDyns (Cache)")
            .expect("fig10 has a baseline GM row");
        assert!((gm_base.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn graph_build_panic_propagates_with_its_original_payload() {
        let specs = shared_graph_specs();
        for jobs in [1, 4] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_campaign_with(jobs, &specs, |key: GraphKey| -> Csr {
                    panic!("graph build exploded for {key:?}")
                })
            }));
            let err = result.expect_err("build panic must propagate");
            let msg = err
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| err.downcast_ref::<&str>().copied())
                .unwrap_or("");
            assert!(
                msg.contains("graph build exploded"),
                "jobs={jobs}: the build's own payload must win, got '{msg}'"
            );
        }
    }

    #[test]
    fn empty_campaign_is_empty() {
        let run = SweepRunner::new(4).run_campaign(&[]);
        assert!(run.figures.is_empty());
        assert_eq!(run.stats.graphs_built, 0);
        assert_eq!(run.stats.builds_saved, 0);
    }
}
