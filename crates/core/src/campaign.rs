//! Cross-figure campaign scheduler: one global work queue for many figures, building
//! each distinct graph exactly once across the whole campaign.
//!
//! The paper's evaluation sweeps many figure grids over the same handful of graphs. A
//! per-figure runner rebuilds each `(dataset, scale_shift, seed)` graph once *per
//! figure* and parallelizes only *within* a figure, which leaves a long sequential tail
//! on the all-figure run. This module flattens every requested figure's
//! [`ExperimentSpec`] grid into **one** queue executed by a single
//! [`run_indexed`] pool:
//!
//! 1. **Graph builds are schedulable units.** The queue starts with one build task per
//!    distinct [`GraphKey`] across the whole campaign — most expensive first, so the
//!    twitter-scale CSR starts before the cheap graphs — followed by every figure's
//!    grid units, scheduled measure-units-first and then by ascending estimated cost of
//!    the graph they need (results are un-permuted into `(figure, unit)` slots
//!    afterwards, so scheduling order never shows in the output). Workers claim indices
//!    in increasing order, so every build is claimed before any grid unit, and the
//!    units claimed first are the ones whose graphs finish earliest — while one worker
//!    builds the largest CSR, the others build the remaining graphs and then drain
//!    units of the already-built ones instead of blocking behind the big build.
//! 2. **A shared graph store** hands finished graphs to simulation units. A unit whose
//!    graph is still being built blocks on that slot's condvar; the builder is
//!    guaranteed to be a live worker (builds occupy the lowest queue indices), so the
//!    wait always terminates. A panicking build marks its slot failed and wakes all
//!    waiters, which panic in turn; [`run_indexed`] then resumes the **lowest-indexed**
//!    payload — the build's original panic — on the caller. Slots are **refcounted**
//!    by their campaign-wide consumer count: the last grid unit to finish with a graph
//!    evicts it from the store, so a graph's CSR is dropped the moment nothing in the
//!    campaign needs it instead of staying pinned until the campaign ends. (For
//!    [`piccolo_graph::external`] graphs the registry keeps its own `Arc` for the
//!    life of the process; eviction releases the campaign's handle.) Eviction can
//!    never cause a rebuild — a post-eviction wait is a loud panic, not a rebuild, and
//!    the build-counting tests pin exactly one build per key with eviction active.
//! 3. **Results land by `(figure, unit index)` slot**, and derived rows (speedups,
//!    geomeans) are evaluated per figure from its completed grid, so campaign output is
//!    byte-identical for any worker count — the property CI enforces on
//!    `repro --jobs 1` vs `--jobs $(nproc)`.
//!
//! [`SweepRunner::run`] is a campaign of one figure, so every figure entry point in
//! [`crate::experiments`] routes through this scheduler.

use crate::report::FigureRows;
use crate::sweep::{run_indexed, ExperimentSpec, GraphKey, SweepRunner, Unit, UnitResult};
use piccolo_graph::Csr;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Deterministic estimate of a graph build's cost — the paper's edge count shrunk by
/// the run's scale shift. Orders the schedule only; it never affects any result.
fn build_cost((dataset, scale_shift, _seed): GraphKey) -> u64 {
    dataset
        .spec()
        .paper_edges
        .checked_shr(scale_shift)
        .unwrap_or(0)
}

/// Scheduling statistics of one executed campaign (all deterministic counts — safe to
/// log anywhere without breaking output parity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignStats {
    /// Figures executed.
    pub figures: usize,
    /// Full simulation runs executed (each references one shared graph).
    pub sim_runs: usize,
    /// Self-contained measure units executed.
    pub measure_units: usize,
    /// Distinct graphs actually built (exactly once each).
    pub graphs_built: usize,
    /// Builds avoided relative to per-figure scheduling (the sum over figures of their
    /// distinct keys, minus the campaign-wide distinct keys). Zero for a single figure.
    pub builds_saved: usize,
    /// Graphs evicted from the shared store mid-campaign, when their last consumer
    /// finished. Always equals `graphs_built` on a completed campaign. Synthetic
    /// stand-ins are freed outright at that point; an external graph's memory is
    /// additionally owned by the process-global `piccolo_graph::external` registry,
    /// which keeps it for the life of the process.
    pub graphs_evicted: usize,
}

/// Output of [`SweepRunner::run_campaign`]: every figure's rows plus scheduling stats.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// One entry per requested figure, in request order.
    pub figures: Vec<FigureRows>,
    /// Scheduling statistics (graphs built vs saved, unit counts).
    pub stats: CampaignStats,
}

/// State of one graph slot in the shared store.
enum SlotState {
    /// The build task has not finished yet.
    Pending,
    /// The graph is available to every simulation unit that needs it.
    Ready(Arc<Csr>),
    /// The build task panicked; waiters must panic too (the build's own payload is the
    /// one the pool re-raises).
    Failed,
    /// Every consumer has finished and the graph has been dropped. Reaching this slot
    /// from [`GraphStore::wait`] is a refcounting bug — eviction must never force a
    /// rebuild, so the store panics loudly instead of rebuilding silently.
    Evicted,
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
    /// Grid units still needing this graph; the last one to finish evicts it.
    remaining: AtomicUsize,
}

/// Shared graph store: one slot per distinct [`GraphKey`] of the campaign, refcounted
/// by the number of grid units that consume each graph so the `Csr` is dropped the
/// moment its last consumer finishes (ROADMAP residual: no graph stays pinned for the
/// whole campaign).
struct GraphStore {
    slots: HashMap<GraphKey, Slot>,
}

impl GraphStore {
    fn new(keys: &[(GraphKey, usize)]) -> Self {
        Self {
            slots: keys
                .iter()
                .map(|&(k, consumers)| {
                    (
                        k,
                        Slot {
                            state: Mutex::new(SlotState::Pending),
                            ready: Condvar::new(),
                            remaining: AtomicUsize::new(consumers),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Publishes a finished graph and wakes every waiting simulation unit.
    fn fulfill(&self, key: GraphKey, graph: Arc<Csr>) {
        let slot = &self.slots[&key];
        *slot.state.lock().unwrap() = SlotState::Ready(graph);
        slot.ready.notify_all();
    }

    /// Marks a build as failed and wakes waiters so they can propagate the failure.
    fn fail(&self, key: GraphKey) {
        let slot = &self.slots[&key];
        let mut state = slot.state.lock().unwrap();
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Failed;
        }
        drop(state);
        slot.ready.notify_all();
    }

    /// Blocks until `key`'s graph is built and returns it. Panics if the build failed
    /// or the graph was already evicted (the latter would mean the consumer refcount
    /// under-counted — a scheduler bug, never a reason to rebuild).
    fn wait(&self, key: GraphKey) -> Arc<Csr> {
        let slot = &self.slots[&key];
        let mut state = slot.state.lock().unwrap();
        loop {
            match &*state {
                SlotState::Ready(graph) => return Arc::clone(graph),
                SlotState::Failed => panic!("graph build for {key:?} panicked"),
                SlotState::Evicted => {
                    panic!("graph {key:?} evicted while consumers remained (refcount bug)")
                }
                SlotState::Pending => state = slot.ready.wait(state).unwrap(),
            }
        }
    }

    /// Signals that one consumer of `key` has finished; the last consumer drops the
    /// graph. Eviction only moves `Ready -> Evicted` — a failed slot stays failed.
    fn release(&self, key: GraphKey) {
        let slot = &self.slots[&key];
        if slot.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut state = slot.state.lock().unwrap();
            if matches!(*state, SlotState::Ready(_)) {
                *state = SlotState::Evicted;
            }
        }
    }

    /// Number of slots whose graph has been evicted.
    fn evicted_count(&self) -> usize {
        self.slots
            .values()
            .filter(|s| matches!(*s.state.lock().unwrap(), SlotState::Evicted))
            .count()
    }
}

/// Marks the slot [`SlotState::Failed`] unless disarmed — keeps a panicking build from
/// leaving waiters blocked forever.
struct FailGuard<'a> {
    store: &'a GraphStore,
    key: GraphKey,
    armed: bool,
}

impl Drop for FailGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.store.fail(self.key);
        }
    }
}

/// Output of one global queue slot.
enum TaskOut {
    /// A graph-build unit completed (its product lives in the store).
    Built,
    /// A grid unit completed.
    Unit(UnitResult),
}

impl SweepRunner {
    /// Executes `specs` as one campaign: a single global [`run_indexed`] pool over all
    /// graph builds and grid units, building each distinct [`GraphKey`] exactly once
    /// campaign-wide. Returns each figure's rows (derived points evaluated per figure)
    /// plus scheduling stats. Output is byte-identical for every worker count.
    pub fn run_campaign(&self, specs: &[ExperimentSpec]) -> CampaignRun {
        // `build_shared` hands out the registry's Arc for external graphs instead of
        // cloning the CSR, and wraps a fresh build for the synthetic stand-ins.
        run_campaign_with(self.jobs(), specs, |(dataset, shift, seed)| {
            dataset.build_shared(shift, seed)
        })
    }
}

/// Campaign executor parameterized over the graph-build function, so tests can count
/// builds per key or inject failing builds without touching the scheduler itself.
pub(crate) fn run_campaign_with(
    jobs: usize,
    specs: &[ExperimentSpec],
    build: impl Fn(GraphKey) -> Arc<Csr> + Sync,
) -> CampaignRun {
    // Distinct graph keys in first-appearance order (deterministic) with their
    // campaign-wide consumer counts (for eviction), plus the number of builds a
    // per-figure scheduler would have performed, for the stats.
    let mut keys: Vec<GraphKey> = Vec::new();
    let mut consumers: HashMap<GraphKey, usize> = HashMap::new();
    let mut per_figure_builds = 0usize;
    for spec in specs {
        let mut figure_keys: Vec<GraphKey> = Vec::new();
        for unit in spec.units() {
            if let Unit::Sim(rc) = unit {
                let key = rc.graph_key();
                if !figure_keys.contains(&key) {
                    figure_keys.push(key);
                }
                if !keys.contains(&key) {
                    keys.push(key);
                }
                *consumers.entry(key).or_insert(0) += 1;
            }
        }
        per_figure_builds += figure_keys.len();
    }

    // The most expensive builds go first so they start (are claimed) earliest and
    // overlap the most of the remaining campaign. Stable sort: ties keep
    // first-appearance order, so the schedule stays deterministic.
    let n_builds = keys.len();
    keys.sort_by_key(|&key| std::cmp::Reverse(build_cost(key)));

    // Flatten every figure's grid behind the build tasks: global slot `n_builds + j`
    // executes figure `unit_index[schedule[j]].0`, unit `unit_index[schedule[j]].1`.
    // The schedule claims measure units (always runnable) and cheap-graph sims first,
    // so workers drain units whose graphs finish earliest instead of blocking behind
    // the largest build; results are un-permuted below, so scheduling order never
    // shows in the output.
    let mut unit_index: Vec<(usize, usize)> = Vec::new();
    for (figure, spec) in specs.iter().enumerate() {
        unit_index.extend((0..spec.units().len()).map(|u| (figure, u)));
    }
    let mut schedule: Vec<usize> = (0..unit_index.len()).collect();
    schedule.sort_by_key(|&j| {
        let (figure, unit) = unit_index[j];
        match &specs[figure].units()[unit] {
            Unit::Measure(_) => 0,
            Unit::Sim(rc) => 1 + build_cost(rc.graph_key()),
        }
    });

    let keyed: Vec<(GraphKey, usize)> = keys.iter().map(|&k| (k, consumers[&k])).collect();
    let store = GraphStore::new(&keyed);
    let outputs = run_indexed(jobs, n_builds + unit_index.len(), |i| {
        if i < n_builds {
            let key = keys[i];
            let mut guard = FailGuard {
                store: &store,
                key,
                armed: true,
            };
            let graph = build(key);
            store.fulfill(key, graph);
            guard.armed = false;
            TaskOut::Built
        } else {
            let (figure, unit) = unit_index[schedule[i - n_builds]];
            TaskOut::Unit(match &specs[figure].units()[unit] {
                Unit::Sim(rc) => {
                    let key = rc.graph_key();
                    let graph = store.wait(key);
                    let result = UnitResult::Run(Box::new(rc.execute(&graph)));
                    // This unit is done with the graph: drop our handle, then let the
                    // store evict the slot if we were the last consumer.
                    drop(graph);
                    store.release(key);
                    result
                }
                Unit::Measure(f) => UnitResult::Points(f()),
            })
        }
    });
    let graphs_evicted = store.evicted_count();

    // Un-permute the scheduled outputs back into figure-major `(figure, unit)` order
    // and evaluate each figure's derived rows from its completed grid.
    let mut slots: Vec<Option<UnitResult>> = unit_index.iter().map(|_| None).collect();
    for (j, out) in outputs.into_iter().skip(n_builds).enumerate() {
        match out {
            TaskOut::Unit(result) => slots[schedule[j]] = Some(result),
            TaskOut::Built => unreachable!("build outputs precede unit outputs"),
        }
    }
    let unit_results: Vec<UnitResult> = slots
        .into_iter()
        .map(|slot| slot.expect("schedule is a permutation of the unit indices"))
        .collect();
    let mut figures = Vec::with_capacity(specs.len());
    let mut offset = 0usize;
    let mut sim_runs = 0usize;
    let mut measure_units = 0usize;
    for spec in specs {
        let grid = &unit_results[offset..offset + spec.units().len()];
        offset += spec.units().len();
        sim_runs += spec.num_runs();
        measure_units += spec.num_units() - spec.num_runs();
        figures.push(FigureRows {
            name: spec.name().to_string(),
            title: spec.title().to_string(),
            points: spec.evaluate(grid),
        });
    }

    CampaignRun {
        figures,
        stats: CampaignStats {
            figures: specs.len(),
            sim_runs,
            measure_units,
            // One build unit per distinct key by construction; a panicking build
            // aborts the whole campaign, so a returned run always built all of them.
            graphs_built: n_builds,
            builds_saved: per_figure_builds - n_builds,
            // Every key has >= 1 consumer (keys come from sim units), so a completed
            // campaign has evicted every graph it built.
            graphs_evicted,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{self, Scale};
    use crate::report::results_json;
    use piccolo_algo::Algorithm;
    use piccolo_graph::Dataset;

    fn tiny() -> Scale {
        Scale {
            scale_shift: 15,
            seed: 3,
            max_iterations: 2,
        }
    }

    /// A small multi-figure campaign whose figures share one graph key.
    fn shared_graph_specs() -> Vec<ExperimentSpec> {
        let ds = [Dataset::Sinaweibo];
        let algs = [Algorithm::Bfs];
        vec![
            experiments::fig10_spec(tiny(), &ds, &algs),
            experiments::fig12_spec(tiny(), &ds, &algs),
            experiments::fig19a_spec(tiny(), &ds),
        ]
    }

    #[test]
    fn campaign_results_json_is_byte_identical_across_worker_counts() {
        let specs = shared_graph_specs();
        let reference = SweepRunner::sequential().run_campaign(&specs);
        let doc = results_json(tiny(), &reference.figures);
        for jobs in [2, 8] {
            let parallel = SweepRunner::new(jobs).run_campaign(&specs);
            assert_eq!(
                results_json(tiny(), &parallel.figures),
                doc,
                "jobs={jobs} must be byte-identical to jobs=1"
            );
            assert_eq!(
                parallel.stats, reference.stats,
                "stats are deterministic too"
            );
        }
    }

    #[test]
    fn each_distinct_graph_is_built_exactly_once_campaign_wide() {
        // Eviction is always active, so this doubles as the eviction-never-rebuilds
        // pin: if the refcounted store dropped a graph too early, a remaining unit
        // would panic; if it somehow triggered a rebuild, the count would exceed 1.
        let specs = shared_graph_specs();
        for jobs in [1, 4] {
            let counts: Mutex<HashMap<GraphKey, usize>> = Mutex::new(HashMap::new());
            let run = run_campaign_with(jobs, &specs, |(dataset, shift, seed)| {
                *counts
                    .lock()
                    .unwrap()
                    .entry((dataset, shift, seed))
                    .or_insert(0) += 1;
                Arc::new(dataset.build(shift, seed))
            });
            let counts = counts.into_inner().unwrap();
            // All three figures use the same (Sinaweibo, 15, 3) graph.
            assert_eq!(
                counts.len(),
                1,
                "jobs={jobs}: one distinct key campaign-wide"
            );
            assert!(
                counts.values().all(|&c| c == 1),
                "jobs={jobs}: every distinct graph_key is built exactly once, got {counts:?}"
            );
            assert_eq!(run.stats.graphs_built, 1);
            // Per-figure scheduling would have built the graph once per figure.
            assert_eq!(run.stats.builds_saved, specs.len() - 1);
            assert_eq!(run.stats.figures, specs.len());
            assert!(run.stats.sim_runs > run.stats.graphs_built);
            // The last consumer evicted the graph — nothing stays pinned.
            assert_eq!(run.stats.graphs_evicted, run.stats.graphs_built);
        }
    }

    #[test]
    fn eviction_drops_the_store_arc_after_the_last_consumer() {
        // Keep a weak handle to every Arc the build function produced: the stats pin
        // that every slot reached Evicted (the graph was dropped when its last
        // consumer finished, not when the campaign ended), and the weak handles prove
        // no clone leaked past the campaign.
        let specs = shared_graph_specs();
        let weaks: Mutex<Vec<std::sync::Weak<Csr>>> = Mutex::new(Vec::new());
        let run = run_campaign_with(2, &specs, |(dataset, shift, seed)| {
            let graph = Arc::new(dataset.build(shift, seed));
            weaks.lock().unwrap().push(Arc::downgrade(&graph));
            graph
        });
        assert_eq!(run.stats.graphs_evicted, run.stats.graphs_built);
        // The store is gone (run_campaign_with returned) and every unit released its
        // handle, so no graph can be alive anywhere.
        for weak in weaks.into_inner().unwrap() {
            assert!(
                weak.upgrade().is_none(),
                "a graph outlived the campaign despite eviction"
            );
        }
    }

    #[test]
    fn figure_rows_do_not_depend_on_campaign_composition() {
        // A figure's rows must be identical whether it runs alone or shares a campaign
        // (and its graphs) with other figures — otherwise `repro fig10` and
        // `repro all` would disagree.
        let specs = shared_graph_specs();
        let alone = SweepRunner::sequential().run_campaign(&specs[..1]);
        assert_eq!(alone.stats.builds_saved, 0);
        let together = SweepRunner::new(4).run_campaign(&specs);
        assert_eq!(alone.figures[0].points, together.figures[0].points);
        // And the rows satisfy a figure-level invariant computed by independent code:
        // fig10's baseline-over-baseline geomean row is exactly 1.
        let gm_base = alone.figures[0]
            .points
            .iter()
            .find(|p| p.label == "GM/GraphDyns (Cache)")
            .expect("fig10 has a baseline GM row");
        assert!((gm_base.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn graph_build_panic_propagates_with_its_original_payload() {
        let specs = shared_graph_specs();
        for jobs in [1, 4] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_campaign_with(jobs, &specs, |key: GraphKey| -> Arc<Csr> {
                    panic!("graph build exploded for {key:?}")
                })
            }));
            let err = result.expect_err("build panic must propagate");
            let msg = err
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| err.downcast_ref::<&str>().copied())
                .unwrap_or("");
            assert!(
                msg.contains("graph build exploded"),
                "jobs={jobs}: the build's own payload must win, got '{msg}'"
            );
        }
    }

    #[test]
    fn empty_campaign_is_empty() {
        let run = SweepRunner::new(4).run_campaign(&[]);
        assert!(run.figures.is_empty());
        assert_eq!(run.stats.graphs_built, 0);
        assert_eq!(run.stats.builds_saved, 0);
        assert_eq!(run.stats.graphs_evicted, 0);
    }

    #[test]
    fn external_datasets_flow_through_the_campaign_unchanged() {
        // An external graph registered under a name behaves exactly like a stand-in:
        // it gets a graph key, is "built" (fetched) once, evicted at the end, and the
        // rows are byte-identical for any worker count.
        use piccolo_graph::{external, generate};

        let g = generate::kronecker(10, 4, 23);
        let ds = external::register("campaign-test-ext", g);
        let algs = [Algorithm::Bfs];
        let specs = vec![
            experiments::fig10_spec(tiny(), &[ds], &algs),
            experiments::fig12_spec(tiny(), &[ds], &algs),
        ];
        let reference = SweepRunner::sequential().run_campaign(&specs);
        assert_eq!(reference.stats.graphs_built, 1);
        assert_eq!(reference.stats.builds_saved, 1);
        assert_eq!(reference.stats.graphs_evicted, 1);
        // Every per-dataset row (everything but the GM aggregates) names the external.
        assert!(reference.figures[0]
            .points
            .iter()
            .filter(|p| !p.label.starts_with("GM/"))
            .all(|p| p.label.contains("campaign-test-ext")));
        let parallel = SweepRunner::new(4).run_campaign(&specs);
        assert_eq!(
            results_json(tiny(), &parallel.figures),
            results_json(tiny(), &reference.figures)
        );
    }
}
