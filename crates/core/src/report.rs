//! End-to-end reports: timing, traffic, energy, area — and the machine-readable
//! `results.json` document ([`results_json`]) the `repro` binary emits.

use crate::experiments::{Point, Scale};
use crate::json::Json;
use piccolo_accel::RunResult;
use piccolo_cache::area::{piccolo_overhead, set_assoc_overhead};
use piccolo_dram::{dram_energy, DramConfig, DramEnergy, EnergyParams};

/// Energy breakdown following the categories of Fig. 14.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Accelerator (PE array, prefetcher, crossbar) energy in nanojoules.
    pub accelerator_nj: f64,
    /// On-chip cache/scratchpad energy in nanojoules.
    pub cache_nj: f64,
    /// DRAM read energy in nanojoules.
    pub dram_read_nj: f64,
    /// DRAM write energy in nanojoules.
    pub dram_write_nj: f64,
    /// DRAM I/O energy in nanojoules.
    pub dram_io_nj: f64,
    /// Static/refresh and other energy in nanojoules.
    pub others_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.accelerator_nj
            + self.cache_nj
            + self.dram_read_nj
            + self.dram_write_nj
            + self.dram_io_nj
            + self.others_nj
    }
}

/// Energy-model constants for the on-chip side (CACTI-class numbers; the DRAM side lives
/// in [`EnergyParams`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnChipEnergyParams {
    /// Accelerator dynamic energy per processed edge (nJ).
    pub accel_nj_per_edge: f64,
    /// Accelerator static power (W).
    pub accel_static_w: f64,
    /// Cache/scratchpad energy per access (nJ).
    pub cache_nj_per_access: f64,
    /// Cache leakage power (W).
    pub cache_static_w: f64,
}

impl Default for OnChipEnergyParams {
    fn default() -> Self {
        Self {
            accel_nj_per_edge: 0.08,
            accel_static_w: 0.35,
            cache_nj_per_access: 0.12,
            cache_static_w: 0.25,
        }
    }
}

/// A full simulation report: the raw [`RunResult`] plus the derived energy breakdown.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The raw simulation result.
    pub run: RunResult,
    /// Energy breakdown (Fig. 14 categories).
    pub energy: EnergyBreakdown,
}

impl SimReport {
    /// Builds a report from a run, using default energy constants.
    pub fn from_run(run: RunResult, dram: &DramConfig) -> Self {
        Self::with_params(
            run,
            dram,
            &EnergyParams::default(),
            &OnChipEnergyParams::default(),
        )
    }

    /// Builds a report with explicit energy constants.
    pub fn with_params(
        run: RunResult,
        dram: &DramConfig,
        dram_params: &EnergyParams,
        onchip: &OnChipEnergyParams,
    ) -> Self {
        let d: DramEnergy = dram_energy(dram, dram_params, &run.mem_stats, run.elapsed_ns);
        let cache_accesses = run.cache_stats.accesses as f64;
        let energy = EnergyBreakdown {
            accelerator_nj: run.edges_processed as f64 * onchip.accel_nj_per_edge
                + onchip.accel_static_w * run.elapsed_ns,
            cache_nj: cache_accesses * onchip.cache_nj_per_access
                + onchip.cache_static_w * run.elapsed_ns,
            dram_read_nj: d.read_nj,
            dram_write_nj: d.write_nj,
            dram_io_nj: d.io_nj,
            others_nj: d.others_nj,
        };
        Self { run, energy }
    }

    /// Speedup of this report relative to a baseline (cycles ratio).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        baseline.run.accel_cycles as f64 / self.run.accel_cycles.max(1) as f64
    }

    /// Energy of this report relative to a baseline.
    pub fn energy_ratio_over(&self, baseline: &SimReport) -> f64 {
        self.energy.total_nj() / baseline.energy.total_nj().max(1e-9)
    }
}

/// Area report reproducing the numbers of Section VII-F.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Baseline accelerator area (mm^2), from the paper's RTL synthesis.
    pub baseline_accelerator_mm2: f64,
    /// Piccolo accelerator area (mm^2) including the collection-extended MSHR and
    /// fg-tag arrays.
    pub piccolo_accelerator_mm2: f64,
    /// Relative on-chip area increase.
    pub onchip_overhead_fraction: f64,
    /// DRAM die area overhead of the Piccolo-FIM buffers and internal controller.
    pub dram_overhead_fraction: f64,
    /// Tag overhead of the Piccolo cache (fraction of data capacity).
    pub piccolo_tag_overhead: f64,
    /// Tag overhead of the ideal 8 B-line cache (fraction of data capacity).
    pub line8_tag_overhead: f64,
}

/// Computes the area report at the paper's full-scale configuration (4 MiB, 8-way,
/// 48-bit addresses).
pub fn area_report() -> AreaReport {
    let baseline = 6.34;
    let piccolo = 6.60;
    let piccolo_tags = piccolo_overhead(48, 4 << 20, 128, 8, 8);
    let line8_tags = set_assoc_overhead(48, 4 << 20, 8, 8);
    // DRAM side (Section VII-F): internal controller ~126 transistors (~0.04 % of the
    // column periphery) plus two 128-bit buffers per bank, 0.135 % of the die each per
    // the TechInsights breakdown -> ~4.36 % combined.
    let dram_overhead = 0.0436;
    AreaReport {
        baseline_accelerator_mm2: baseline,
        piccolo_accelerator_mm2: piccolo,
        onchip_overhead_fraction: (piccolo - baseline) / baseline,
        dram_overhead_fraction: dram_overhead,
        piccolo_tag_overhead: piccolo_tags.total(),
        line8_tag_overhead: line8_tags.total(),
    }
}

/// One reproduced figure's rows, ready for serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRows {
    /// Machine-readable figure name (`fig10`).
    pub name: String,
    /// Human-readable title (`Fig. 10 (overall speedup)`).
    pub title: String,
    /// The reproduced rows.
    pub points: Vec<Point>,
}

/// Serializes reproduced figures into the `results.json` document (schema
/// `piccolo-results/v1`).
///
/// The document deliberately contains **no wall-clock or worker-count fields**: CI
/// byte-compares the sequential (`--jobs 1`) and parallel (`--jobs $(nproc)`) outputs,
/// so everything in the file must be a deterministic function of (scale, figure set).
pub fn results_json(scale: Scale, figures: &[FigureRows]) -> String {
    let doc = Json::obj([
        ("schema", Json::str("piccolo-results/v1")),
        (
            "scale",
            Json::obj([
                ("scale_shift", Json::Num(scale.scale_shift as f64)),
                ("seed", Json::Num(scale.seed as f64)),
                ("max_iterations", Json::Num(scale.max_iterations as f64)),
            ]),
        ),
        (
            "figures",
            Json::Arr(
                figures
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("name", Json::str(&f.name)),
                            ("title", Json::str(&f.title)),
                            (
                                "points",
                                Json::Arr(
                                    f.points
                                        .iter()
                                        .map(|p| {
                                            Json::obj([
                                                ("label", Json::str(&p.label)),
                                                ("value", Json::Num(p.value)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut out = doc.to_string();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo_accel::{simulate, SimConfig, SystemKind};
    use piccolo_algo::Bfs;
    use piccolo_graph::generate;

    fn report(system: SystemKind) -> SimReport {
        let g = generate::kronecker(11, 4, 3);
        let cfg = SimConfig::for_system(system, 12).with_max_iterations(10);
        SimReport::from_run(simulate(&g, &Bfs::new(0), &cfg), &cfg.dram)
    }

    #[test]
    fn energy_breakdown_is_positive_and_io_dominated_for_baseline() {
        let r = report(SystemKind::GraphDynsCache);
        assert!(r.energy.total_nj() > 0.0);
        assert!(r.energy.dram_io_nj > 0.0);
        assert!(r.energy.dram_io_nj > r.energy.dram_write_nj);
    }

    #[test]
    fn piccolo_uses_less_energy_than_baseline() {
        let base = report(SystemKind::GraphDynsCache);
        let pic = report(SystemKind::Piccolo);
        assert!(pic.energy_ratio_over(&base) < 1.1);
        assert!(pic.speedup_over(&base) > 0.5);
    }

    #[test]
    fn results_json_is_deterministic_and_parseable() {
        let figures = [FigureRows {
            name: "fig10".to_string(),
            title: "Fig. 10 (overall speedup)".to_string(),
            points: vec![Point {
                label: "GM/Piccolo".to_string(),
                value: 2.25,
            }],
        }];
        let a = results_json(Scale::quick(), &figures);
        let b = results_json(Scale::quick(), &figures);
        assert_eq!(a, b);
        let doc = crate::json::parse(a.trim()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(crate::json::Json::as_str),
            Some("piccolo-results/v1")
        );
        let figs = doc.get("figures").unwrap().as_array().unwrap();
        assert_eq!(figs.len(), 1);
        let pts = figs[0].get("points").unwrap().as_array().unwrap();
        assert_eq!(
            pts[0].get("value").and_then(crate::json::Json::as_f64),
            Some(2.25)
        );
    }

    #[test]
    fn area_report_matches_paper_figures() {
        let a = area_report();
        assert!((a.onchip_overhead_fraction - 0.041).abs() < 0.005);
        assert!(a.dram_overhead_fraction < 0.05);
        assert!(a.piccolo_tag_overhead < a.line8_tag_overhead / 2.0);
    }
}
