//! Property-style timing tests: arbitrary request mixes must never violate DDR timing
//! constraints, and higher-level invariants (traffic accounting, monotonic time) must
//! hold. This is the software stand-in for the paper's FPGA protocol validation
//! (Section VII-B).
//!
//! No crates.io access in the build container, so instead of `proptest` these run seeded
//! random cases through [`piccolo_graph::rng::Rng64`]; a failing seed is printed in the
//! assertion message.

use piccolo_dram::{
    check_trace, AddressMapper, DramConfig, MemRequest, MemoryKind, MemorySystem, Region,
};
use piccolo_graph::rng::Rng64;

const CASES: u64 = 48;

/// Generates an arbitrary mix of 1..200 reads, writes, FIM, NMP and PIM requests.
fn random_requests(rng: &mut Rng64, cfg: DramConfig) -> Vec<MemRequest> {
    let mapper = AddressMapper::new(&cfg);
    let addr_space = 1u64 << 28;
    let len = 1 + rng.gen_index(199);
    (0..len)
        .map(|_| {
            let kind = rng.gen_u32_below(7) as u8;
            let addr = rng.gen_u64_below(addr_space) & !7; // 8-byte aligned
            let items = 1 + rng.gen_index(8);
            let row = mapper.row_id(addr);
            let offsets: Vec<u16> = (0..items as u16).collect();
            match kind {
                0 | 1 => MemRequest::Read {
                    addr,
                    useful_bytes: 8,
                    region: Region::PropertyRandom,
                },
                2 => MemRequest::Write {
                    addr,
                    useful_bytes: 8,
                    region: Region::PropertyRandom,
                },
                3 => MemRequest::GatherFim {
                    row,
                    offsets,
                    region: Region::PropertyRandom,
                },
                4 => MemRequest::ScatterFim {
                    row,
                    offsets,
                    region: Region::PropertyRandom,
                },
                5 => MemRequest::GatherNmp {
                    row,
                    offsets,
                    region: Region::PropertyRandom,
                },
                _ => MemRequest::PimUpdate {
                    addr,
                    region: Region::PropertyRandom,
                },
            }
        })
        .collect()
}

/// No request mix may produce a command trace that violates DDR timing constraints.
#[test]
fn timing_constraints_hold_for_arbitrary_mixes() {
    for seed in 0..CASES {
        let cfg = DramConfig::ddr4_2400_x16().with_fim();
        let reqs = random_requests(&mut Rng64::seed_from_u64(seed), cfg);
        let mut mem = MemorySystem::new(cfg);
        mem.enable_trace();
        mem.service_batch(reqs);
        let violations = check_trace(mem.config(), mem.trace().unwrap());
        assert!(
            violations.is_empty(),
            "seed {seed}: violations: {:?}",
            &violations[..violations.len().min(3)]
        );
    }
}

/// The same holds for a single-channel single-rank configuration where contention is
/// maximal.
#[test]
fn timing_constraints_hold_on_minimal_config() {
    for seed in 0..CASES {
        let cfg = DramConfig::new(MemoryKind::Ddr4X16, 1, 1).with_fim();
        let reqs = random_requests(&mut Rng64::seed_from_u64(seed), cfg);
        let mut mem = MemorySystem::new(cfg);
        mem.enable_trace();
        mem.service_batch(reqs);
        let violations = check_trace(mem.config(), mem.trace().unwrap());
        assert!(
            violations.is_empty(),
            "seed {seed}: violations: {:?}",
            &violations[..violations.len().min(3)]
        );
    }
}

/// Useful bytes never exceed transferred bytes, and time is monotonic.
#[test]
fn traffic_accounting_is_consistent() {
    for seed in 0..CASES {
        let cfg = DramConfig::ddr4_2400_x16().with_fim();
        let reqs = random_requests(&mut Rng64::seed_from_u64(seed), cfg);
        let mut mem = MemorySystem::new(cfg);
        let n = reqs.len() as u64;
        let batch = mem.service_batch(reqs);
        assert_eq!(batch.requests, n, "seed {seed}");
        assert!(batch.end_clock >= batch.start_clock, "seed {seed}");
        let s = mem.stats();
        assert!(s.useful_offchip_bytes <= s.offchip_bytes, "seed {seed}");
        assert!(s.row_hits + s.row_misses >= n, "seed {seed}");
    }
}

/// Servicing requests in two batches takes at least as long as one batch (no lost
/// work), and produces identical traffic counters.
#[test]
fn batching_does_not_change_traffic() {
    for seed in 0..CASES {
        let cfg = DramConfig::ddr4_2400_x16();
        let reqs = random_requests(&mut Rng64::seed_from_u64(seed), cfg);
        let mut one = MemorySystem::new(cfg);
        one.service_batch(reqs.clone());
        let mut two = MemorySystem::new(cfg);
        let mid = reqs.len() / 2;
        two.service_batch(reqs[..mid].to_vec());
        two.service_batch(reqs[mid..].to_vec());
        assert_eq!(
            one.stats().offchip_bytes,
            two.stats().offchip_bytes,
            "seed {seed}"
        );
        assert_eq!(
            one.stats().read_transactions,
            two.stats().read_transactions,
            "seed {seed}"
        );
        assert_eq!(
            one.stats().write_transactions,
            two.stats().write_transactions,
            "seed {seed}"
        );
        // Note: elapsed time is *not* compared — the FR-FCFS window reorders requests, so
        // the makespan of one large batch is not necessarily shorter than two halves.
    }
}

#[test]
fn fim_microbenchmark_speedup_is_close_to_4x_in_row() {
    // Fig. 9a: reading strided 8 B items that all sit in open rows approaches the
    // theoretical 4x bandwidth gain at stride 8 (64 B between items).
    let cfg = DramConfig::new(MemoryKind::Ddr4X16, 1, 4);
    let mapper = AddressMapper::new(&cfg);
    let items = 4096u64;
    let stride_bytes = 64u64;

    // Conventional: one 64 B read per 8 B item.
    let mut conv = MemorySystem::new(cfg);
    let t_conv = conv
        .service_batch((0..items).map(|i| MemRequest::Read {
            addr: i * stride_bytes,
            useful_bytes: 8,
            region: Region::Other,
        }))
        .elapsed_clocks();

    // Piccolo: gather 8 items per FIM op, grouped by row.
    let fim_cfg = DramConfig::new(MemoryKind::Ddr4X16, 1, 4).with_fim();
    let mut fim = MemorySystem::new(fim_cfg);
    let mut by_row: std::collections::HashMap<_, Vec<u16>> = std::collections::HashMap::new();
    let mut order = Vec::new();
    for i in 0..items {
        let addr = i * stride_bytes;
        let row = mapper.row_id(addr);
        let entry = by_row.entry(row).or_insert_with(|| {
            order.push(row);
            Vec::new()
        });
        entry.push(mapper.decompose(addr).word_offset());
    }
    let mut reqs = Vec::new();
    for row in order {
        for chunk in by_row[&row].chunks(8) {
            reqs.push(MemRequest::GatherFim {
                row,
                offsets: chunk.to_vec(),
                region: Region::Other,
            });
        }
    }
    let t_fim = fim.service_batch(reqs).elapsed_clocks();

    let speedup = t_conv as f64 / t_fim as f64;
    assert!(
        speedup > 2.0 && speedup < 4.5,
        "in-row strided gather speedup should be near 4x, got {speedup:.2} ({t_conv} vs {t_fim})"
    );
}
