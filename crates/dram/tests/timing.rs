//! Property-based timing tests: arbitrary request mixes must never violate DDR timing
//! constraints, and higher-level invariants (traffic accounting, monotonic time) must
//! hold. This is the software stand-in for the paper's FPGA protocol validation
//! (Section VII-B).

use piccolo_dram::{
    check_trace, AddressMapper, DramConfig, MemRequest, MemoryKind, MemorySystem, Region,
};
use proptest::prelude::*;

/// Strategy generating an arbitrary mix of reads, writes, FIM, NMP and PIM requests.
fn arb_requests(cfg: DramConfig) -> impl Strategy<Value = Vec<MemRequest>> {
    let mapper = AddressMapper::new(&cfg);
    let addr_space = 1u64 << 28;
    proptest::collection::vec(
        (0u8..7, 0u64..addr_space, 1usize..=8),
        1..200,
    )
    .prop_map(move |entries| {
        entries
            .into_iter()
            .map(|(kind, addr, items)| {
                let addr = addr & !7; // 8-byte aligned
                let row = mapper.row_id(addr);
                let offsets: Vec<u16> = (0..items as u16).collect();
                match kind {
                    0 | 1 => MemRequest::Read {
                        addr,
                        useful_bytes: 8,
                        region: Region::PropertyRandom,
                    },
                    2 => MemRequest::Write {
                        addr,
                        useful_bytes: 8,
                        region: Region::PropertyRandom,
                    },
                    3 => MemRequest::GatherFim {
                        row,
                        offsets,
                        region: Region::PropertyRandom,
                    },
                    4 => MemRequest::ScatterFim {
                        row,
                        offsets,
                        region: Region::PropertyRandom,
                    },
                    5 => MemRequest::GatherNmp {
                        row,
                        offsets,
                        region: Region::PropertyRandom,
                    },
                    _ => MemRequest::PimUpdate {
                        addr,
                        region: Region::PropertyRandom,
                    },
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No request mix may produce a command trace that violates DDR timing constraints.
    #[test]
    fn timing_constraints_hold_for_arbitrary_mixes(reqs in arb_requests(DramConfig::ddr4_2400_x16().with_fim())) {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400_x16().with_fim());
        mem.enable_trace();
        mem.service_batch(reqs);
        let violations = check_trace(mem.config(), mem.trace().unwrap());
        prop_assert!(violations.is_empty(), "violations: {:?}", &violations[..violations.len().min(3)]);
    }

    /// The same holds for a single-channel single-rank configuration where contention is
    /// maximal.
    #[test]
    fn timing_constraints_hold_on_minimal_config(reqs in arb_requests(DramConfig::new(MemoryKind::Ddr4X16, 1, 1).with_fim())) {
        let mut mem = MemorySystem::new(DramConfig::new(MemoryKind::Ddr4X16, 1, 1).with_fim());
        mem.enable_trace();
        mem.service_batch(reqs);
        let violations = check_trace(mem.config(), mem.trace().unwrap());
        prop_assert!(violations.is_empty(), "violations: {:?}", &violations[..violations.len().min(3)]);
    }

    /// Useful bytes never exceed transferred bytes, and time is monotonic.
    #[test]
    fn traffic_accounting_is_consistent(reqs in arb_requests(DramConfig::ddr4_2400_x16().with_fim())) {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400_x16().with_fim());
        let n = reqs.len() as u64;
        let batch = mem.service_batch(reqs);
        prop_assert_eq!(batch.requests, n);
        prop_assert!(batch.end_clock >= batch.start_clock);
        let s = mem.stats();
        prop_assert!(s.useful_offchip_bytes <= s.offchip_bytes);
        prop_assert!(s.row_hits + s.row_misses >= n);
    }

    /// Servicing requests in two batches takes at least as long as one batch (no lost
    /// work), and produces identical traffic counters.
    #[test]
    fn batching_does_not_change_traffic(reqs in arb_requests(DramConfig::ddr4_2400_x16())) {
        let mut one = MemorySystem::new(DramConfig::ddr4_2400_x16());
        one.service_batch(reqs.clone());
        let mut two = MemorySystem::new(DramConfig::ddr4_2400_x16());
        let mid = reqs.len() / 2;
        two.service_batch(reqs[..mid].to_vec());
        two.service_batch(reqs[mid..].to_vec());
        prop_assert_eq!(one.stats().offchip_bytes, two.stats().offchip_bytes);
        prop_assert_eq!(one.stats().read_transactions, two.stats().read_transactions);
        prop_assert_eq!(one.stats().write_transactions, two.stats().write_transactions);
        // Note: elapsed time is *not* compared — the FR-FCFS window reorders requests, so
        // the makespan of one large batch is not necessarily shorter than two halves.
    }
}

#[test]
fn fim_microbenchmark_speedup_is_close_to_4x_in_row() {
    // Fig. 9a: reading strided 8 B items that all sit in open rows approaches the
    // theoretical 4x bandwidth gain at stride 8 (64 B between items).
    let cfg = DramConfig::new(MemoryKind::Ddr4X16, 1, 4);
    let mapper = AddressMapper::new(&cfg);
    let items = 4096u64;
    let stride_bytes = 64u64;

    // Conventional: one 64 B read per 8 B item.
    let mut conv = MemorySystem::new(cfg);
    let t_conv = conv
        .service_batch((0..items).map(|i| MemRequest::Read {
            addr: i * stride_bytes,
            useful_bytes: 8,
            region: Region::Other,
        }))
        .elapsed_clocks();

    // Piccolo: gather 8 items per FIM op, grouped by row.
    let fim_cfg = DramConfig::new(MemoryKind::Ddr4X16, 1, 4).with_fim();
    let mut fim = MemorySystem::new(fim_cfg);
    let mut by_row: std::collections::HashMap<_, Vec<u16>> = std::collections::HashMap::new();
    let mut order = Vec::new();
    for i in 0..items {
        let addr = i * stride_bytes;
        let row = mapper.row_id(addr);
        let entry = by_row.entry(row).or_insert_with(|| {
            order.push(row);
            Vec::new()
        });
        entry.push(mapper.decompose(addr).word_offset());
    }
    let mut reqs = Vec::new();
    for row in order {
        for chunk in by_row[&row].chunks(8) {
            reqs.push(MemRequest::GatherFim {
                row,
                offsets: chunk.to_vec(),
                region: Region::Other,
            });
        }
    }
    let t_fim = fim.service_batch(reqs).elapsed_clocks();

    let speedup = t_conv as f64 / t_fim as f64;
    assert!(
        speedup > 2.0 && speedup < 4.5,
        "in-row strided gather speedup should be near 4x, got {speedup:.2} ({t_conv} vs {t_fim})"
    );
}
