//! Physical-address to DRAM-coordinate mapping.
//!
//! The mapping interleaves consecutive bursts across channels, keeps a DRAM row contiguous
//! in the physical address space (so sequential streams stay in an open row), and spreads
//! higher address bits over banks, ranks and rows — the conventional
//! row:rank:bank:column:channel:offset layout used by graph accelerator studies.

use crate::config::DramConfig;

/// Fully decomposed DRAM coordinates of a byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Bank group of the bank (derived from the bank index).
    pub bank_group: u32,
    /// Row within the bank.
    pub row: u64,
    /// Byte offset within the row.
    pub row_offset: u64,
}

impl Location {
    /// Column offset of this address within its row, in 8-byte words — the unit the
    /// Piccolo offset buffer uses (16-bit offsets cover an 8 KiB row).
    pub fn word_offset(&self) -> u16 {
        (self.row_offset / 8) as u16
    }
}

/// A globally unique identifier of one DRAM row: `(channel, rank, bank, row)` packed into
/// a single integer so it can key hash maps cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

/// Address mapper derived from a [`DramConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddressMapper {
    burst_bits: u32,
    channel_bits: u32,
    column_bits: u32,
    bank_bits: u32,
    rank_bits: u32,
    channels: u32,
    ranks: u32,
    banks: u32,
    bank_groups: u32,
    row_bytes: u64,
}

fn bits_for(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

impl AddressMapper {
    /// Builds the mapper for a configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        let org = &cfg.org;
        Self {
            burst_bits: bits_for(org.burst_bytes),
            channel_bits: bits_for(org.channels as u64),
            column_bits: bits_for(org.row_bytes / org.burst_bytes),
            bank_bits: bits_for(org.banks_per_rank as u64),
            rank_bits: bits_for(org.ranks_per_channel as u64),
            channels: org.channels,
            ranks: org.ranks_per_channel,
            banks: org.banks_per_rank,
            bank_groups: org.bank_groups,
            row_bytes: org.row_bytes,
        }
    }

    /// Decomposes a byte address into DRAM coordinates.
    pub fn decompose(&self, addr: u64) -> Location {
        let offset_in_burst = addr & ((1 << self.burst_bits) - 1);
        let mut a = addr >> self.burst_bits;
        let channel = (a & ((1 << self.channel_bits) - 1)) as u32 % self.channels.max(1);
        a >>= self.channel_bits;
        let column = a & ((1 << self.column_bits) - 1);
        a >>= self.column_bits;
        let bank = (a & ((1 << self.bank_bits) - 1)) as u32 % self.banks.max(1);
        a >>= self.bank_bits;
        let rank = (a & ((1 << self.rank_bits) - 1)) as u32 % self.ranks.max(1);
        a >>= self.rank_bits;
        let row = a;
        let bank_group = bank % self.bank_groups.max(1);
        let row_offset = column * (1 << self.burst_bits) + offset_in_burst;
        debug_assert!(row_offset < self.row_bytes);
        Location {
            channel,
            rank,
            bank,
            bank_group,
            row,
            row_offset,
        }
    }

    /// Returns the packed [`RowId`] of an address.
    pub fn row_id(&self, addr: u64) -> RowId {
        let loc = self.decompose(addr);
        self.row_id_of(&loc)
    }

    /// Packs a [`Location`]'s row coordinates.
    pub fn row_id_of(&self, loc: &Location) -> RowId {
        RowId(
            (((loc.channel as u64 * self.ranks as u64 + loc.rank as u64) * self.banks as u64
                + loc.bank as u64)
                << 32)
                | loc.row,
        )
    }

    /// Unpacks a [`RowId`] back into `(channel, rank, bank, row)`.
    pub fn unpack_row_id(&self, id: RowId) -> (u32, u32, u32, u64) {
        let row = id.0 & 0xFFFF_FFFF;
        let mut rest = id.0 >> 32;
        let bank = (rest % self.banks as u64) as u32;
        rest /= self.banks as u64;
        let rank = (rest % self.ranks as u64) as u32;
        rest /= self.ranks as u64;
        let channel = rest as u32;
        (channel, rank, bank, row)
    }

    /// Number of bytes a row holds (all addresses with the same [`RowId`]).
    pub fn row_bytes(&self) -> u64 {
        self.row_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DramConfig, MemoryKind};

    #[test]
    fn sequential_addresses_alternate_channels_then_stay_in_row() {
        let cfg = DramConfig::ddr4_2400_x16();
        let m = AddressMapper::new(&cfg);
        let a = m.decompose(0);
        let b = m.decompose(64);
        assert_ne!(
            a.channel, b.channel,
            "adjacent bursts interleave across channels"
        );
        let c = m.decompose(128);
        assert_eq!(a.channel, c.channel);
        assert_eq!(a.row, c.row);
        assert_eq!(a.bank, c.bank);
        assert_eq!(c.row_offset, 64);
    }

    #[test]
    fn row_id_roundtrip() {
        let cfg = DramConfig::ddr4_2400_x16();
        let m = AddressMapper::new(&cfg);
        for addr in [0u64, 64, 4096, 1 << 20, (1 << 30) + 8192] {
            let loc = m.decompose(addr);
            let id = m.row_id(addr);
            let (ch, ra, ba, ro) = m.unpack_row_id(id);
            assert_eq!((ch, ra, ba, ro), (loc.channel, loc.rank, loc.bank, loc.row));
        }
    }

    #[test]
    fn same_row_addresses_share_row_id() {
        let cfg = DramConfig::ddr4_2400_x16();
        let m = AddressMapper::new(&cfg);
        // Two addresses within one row (offsets 0 and row_bytes/2 of the same row) map to
        // the same RowId; crossing the row boundary changes it.
        let base = 1u64 << 22;
        let l0 = m.decompose(base);
        let mut same = 0;
        let mut diff = 0;
        for w in 0..(cfg.org.row_bytes / 8) {
            let probe = base + w * 8;
            let l = m.decompose(probe);
            if m.row_id_of(&l) == m.row_id_of(&l0) {
                same += 1;
            } else {
                diff += 1;
            }
        }
        // All words that stay within the row share the id; channel interleaving means not
        // every consecutive word is in the same row, but a majority of one channel's are.
        assert!(same > 0);
        assert!(same + diff == cfg.org.row_bytes / 8);
    }

    #[test]
    fn word_offset_fits_16_bits() {
        let cfg = DramConfig::ddr4_2400_x16();
        let m = AddressMapper::new(&cfg);
        let loc = m.decompose(123456789);
        assert!(u64::from(loc.word_offset()) < cfg.org.row_bytes / 8);
    }

    #[test]
    fn bank_spread_is_reasonable_for_strided_accesses() {
        let cfg = DramConfig::new(MemoryKind::Ddr4X16, 1, 1);
        let m = AddressMapper::new(&cfg);
        let mut banks = std::collections::HashSet::new();
        for i in 0..64u64 {
            banks.insert(m.decompose(i * cfg.org.row_bytes).bank);
        }
        assert!(
            banks.len() >= 4,
            "row-granularity strides should hit several banks"
        );
    }
}
