//! Memory request types exchanged between the on-chip side (caches, MSHRs, scratchpads,
//! stream buffers) and the DRAM model.

use crate::address::RowId;

/// Classification of what a request is for; used only for statistics (the useful/unuseful
/// breakdown of Fig. 3 and the read/write split of Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// CSR row-offset array.
    TopologyRow,
    /// CSR column-index / weight array.
    TopologyCol,
    /// Sequentially accessed source property (`Vprop`).
    PropertySequential,
    /// Randomly accessed destination property (`Vtemp`).
    PropertyRandom,
    /// Anything else (OLAP tables, microbenchmark buffers ...).
    Other,
}

/// A request presented to the memory system.
///
/// Conventional requests move one burst (64 B for DDR4). The FIM/NMP/PIM variants model
/// the memory-side mechanisms the paper compares:
///
/// * [`MemRequest::GatherFim`] / [`MemRequest::ScatterFim`] — Piccolo's in-bank random
///   scatter/gather (Section IV), built by the collection-extended MSHR,
/// * [`MemRequest::GatherNmp`] / [`MemRequest::ScatterNmp`] — the rank-level (buffer-chip)
///   scatter-gather of the NMP baseline,
/// * [`MemRequest::PimUpdate`] — the near-bank Process/Reduce/Apply of the PIM baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemRequest {
    /// Read one burst at `addr`. `useful_bytes` says how much of the burst the requester
    /// actually needed (for the Fig. 3 breakdown).
    Read {
        /// Byte address (burst aligned by the model).
        addr: u64,
        /// Bytes of the burst that are useful to the requester.
        useful_bytes: u32,
        /// Which data region this belongs to.
        region: Region,
    },
    /// Write one burst at `addr`.
    Write {
        /// Byte address (burst aligned by the model).
        addr: u64,
        /// Bytes of the burst that carry useful data.
        useful_bytes: u32,
        /// Which data region this belongs to.
        region: Region,
    },
    /// Piccolo-FIM gather of up to `items_per_op` 8-byte words from one DRAM row.
    GatherFim {
        /// The row all gathered words live in.
        row: RowId,
        /// 8-byte word offsets within the row (at most `FimConfig::items_per_op`).
        offsets: Vec<u16>,
        /// Region for statistics.
        region: Region,
    },
    /// Piccolo-FIM scatter of up to `items_per_op` 8-byte words into one DRAM row.
    ScatterFim {
        /// The row all scattered words live in.
        row: RowId,
        /// 8-byte word offsets within the row.
        offsets: Vec<u16>,
        /// Region for statistics.
        region: Region,
    },
    /// NMP (buffer-chip) gather: same off-chip traffic as a FIM gather but the internal
    /// column reads serialize on the rank-level bus.
    GatherNmp {
        /// The row all gathered words live in.
        row: RowId,
        /// 8-byte word offsets within the row.
        offsets: Vec<u16>,
        /// Region for statistics.
        region: Region,
    },
    /// NMP (buffer-chip) scatter.
    ScatterNmp {
        /// The row all scattered words live in.
        row: RowId,
        /// 8-byte word offsets within the row.
        offsets: Vec<u16>,
        /// Region for statistics.
        region: Region,
    },
    /// PIM near-bank update: an in-bank read-modify-write of one 8-byte word with the
    /// Reduce operator, no channel data transfer.
    PimUpdate {
        /// Byte address of the word being reduced into.
        addr: u64,
        /// Region for statistics.
        region: Region,
    },
}

impl MemRequest {
    /// Convenience constructor for a fully-useful 64 B read.
    pub fn read(addr: u64, region: Region) -> Self {
        MemRequest::Read {
            addr,
            useful_bytes: 64,
            region,
        }
    }

    /// Convenience constructor for a fully-useful 64 B write.
    pub fn write(addr: u64, region: Region) -> Self {
        MemRequest::Write {
            addr,
            useful_bytes: 64,
            region,
        }
    }

    /// Returns `true` for requests that move data from memory to the chip.
    pub fn is_read_like(&self) -> bool {
        matches!(
            self,
            MemRequest::Read { .. } | MemRequest::GatherFim { .. } | MemRequest::GatherNmp { .. }
        )
    }

    /// The statistics region of the request.
    pub fn region(&self) -> Region {
        match self {
            MemRequest::Read { region, .. }
            | MemRequest::Write { region, .. }
            | MemRequest::GatherFim { region, .. }
            | MemRequest::ScatterFim { region, .. }
            | MemRequest::GatherNmp { region, .. }
            | MemRequest::ScatterNmp { region, .. }
            | MemRequest::PimUpdate { region, .. } => *region,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_classification() {
        let r = MemRequest::read(64, Region::PropertyRandom);
        assert!(r.is_read_like());
        assert_eq!(r.region(), Region::PropertyRandom);
        let w = MemRequest::write(0, Region::TopologyCol);
        assert!(!w.is_read_like());
        let g = MemRequest::GatherFim {
            row: RowId(3),
            offsets: vec![1, 2, 3],
            region: Region::PropertyRandom,
        };
        assert!(g.is_read_like());
        let p = MemRequest::PimUpdate {
            addr: 8,
            region: Region::PropertyRandom,
        };
        assert!(!p.is_read_like());
    }
}
