//! Command-level DRAM timing model with the Piccolo-FIM extension.
//!
//! The model follows the same abstraction level as Ramulator (which the paper uses): each
//! request is translated into the DRAM commands it needs (PRE/ACT/RD/WR plus the FIM
//! virtual-row sequence), and per-bank / per-rank / per-channel timing windows decide when
//! each command may issue. A bounded look-ahead window reorders requests the way an
//! FR-FCFS scheduler would: requests that can finish earlier (typically row hits) issue
//! first within the window.
//!
//! Refresh is accounted for in the energy model only; its timing impact (a few percent,
//! identical across all evaluated systems) is ignored, as is common in accelerator
//! studies.

use crate::address::{AddressMapper, RowId};
use crate::config::DramConfig;
use crate::request::MemRequest;
use crate::stats::MemStats;
use std::collections::VecDeque;

/// Kinds of DRAM commands recorded in the (optional) verification trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// Row activation.
    Act,
    /// Precharge.
    Pre,
    /// Column read (burst).
    Rd,
    /// Column write (burst).
    Wr,
}

/// One command in the verification trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommandRecord {
    /// Issue time in memory clocks.
    pub time: u64,
    /// Command kind.
    pub kind: CommandKind,
    /// Channel index.
    pub channel: u32,
    /// Rank index.
    pub rank: u32,
    /// Bank index (global within the rank).
    pub bank: u32,
    /// Row (for ACT) or 0.
    pub row: u64,
    /// Data-bus busy interval `(start, end)` in clocks for RD/WR, `(0, 0)` otherwise.
    pub bus: (u64, u64),
}

#[derive(Debug, Clone, Default)]
struct BankState {
    open_row: Option<u64>,
    act_ready: u64,
    col_ready: u64,
    pre_ready: u64,
    last_act: u64,
    busy_until: u64,
}

#[derive(Debug, Clone, Default)]
struct RankState {
    act_times: VecDeque<u64>,
    last_act: u64,
    internal_bus_free: u64,
}

/// Channel data-bus schedule with gap filling: bursts issued to one bank do not block the
/// bus during another bank's internal (FIM) gap. Only a bounded window of recent busy
/// intervals is kept; anything older than the window is treated as unavailable, which is
/// conservative.
#[derive(Debug, Clone, Default)]
struct ChannelState {
    /// Sorted, non-overlapping busy intervals `(start, end)`.
    busy: VecDeque<(u64, u64)>,
    /// Everything before this time is considered unavailable (intervals older than the
    /// bookkeeping window have been folded into the horizon).
    horizon: u64,
}

impl ChannelState {
    const MAX_INTERVALS: usize = 256;

    /// Reserves `duration` clocks on the bus starting no earlier than `earliest`.
    /// Returns the start of the reserved interval. Gaps between existing reservations are
    /// reused (gap filling), so a burst to one bank can use the bus while another bank is
    /// in its FIM internal-operation window.
    fn reserve(&mut self, earliest: u64, duration: u64) -> u64 {
        let mut start = earliest.max(self.horizon);
        // Find the first gap that fits.
        let mut insert_at = self.busy.len();
        for (i, &(s, e)) in self.busy.iter().enumerate() {
            if start + duration <= s {
                insert_at = i;
                break;
            }
            if start < e {
                start = e;
            }
        }
        self.busy.insert(insert_at, (start, start + duration));
        // Bound the bookkeeping window; dropped intervals are absorbed into the horizon so
        // the bus can never be double-booked.
        while self.busy.len() > Self::MAX_INTERVALS {
            if let Some((_, end)) = self.busy.pop_front() {
                self.horizon = self.horizon.max(end);
            }
        }
        start
    }
}

/// Result of servicing one batch of requests.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchResult {
    /// Time (memory clocks) at which the batch started.
    pub start_clock: u64,
    /// Time (memory clocks) at which the last request completed.
    pub end_clock: u64,
    /// Number of requests serviced.
    pub requests: u64,
}

impl BatchResult {
    /// Elapsed memory clocks for the batch.
    pub fn elapsed_clocks(&self) -> u64 {
        self.end_clock - self.start_clock
    }
}

/// The memory system: all channels, ranks and banks of one [`DramConfig`].
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: DramConfig,
    mapper: AddressMapper,
    now: u64,
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    channels: Vec<ChannelState>,
    stats: MemStats,
    trace: Option<Vec<CommandRecord>>,
}

/// Everything a planned request would change, so selection can be done without mutation.
#[derive(Debug, Clone)]
struct Plan {
    completion: u64,
    bank_idx: usize,
    rank_idx: usize,
    channel_idx: usize,
    new_bank: BankState,
    new_rank: RankState,
    new_channel: ChannelState,
    stats_delta: MemStats,
    records: Vec<CommandRecord>,
}

impl MemorySystem {
    /// Creates a memory system in the idle state at time zero.
    pub fn new(cfg: DramConfig) -> Self {
        let mapper = AddressMapper::new(&cfg);
        let nbanks =
            (cfg.org.channels * cfg.org.ranks_per_channel * cfg.org.banks_per_rank) as usize;
        let nranks = (cfg.org.channels * cfg.org.ranks_per_channel) as usize;
        Self {
            cfg,
            mapper,
            now: 0,
            banks: vec![BankState::default(); nbanks],
            ranks: vec![RankState::default(); nranks],
            channels: vec![ChannelState::default(); cfg.org.channels as usize],
            stats: MemStats::default(),
            trace: None,
        }
    }

    /// Enables command-trace recording (used by the timing-legality checker in tests).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded command trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&[CommandRecord]> {
        self.trace.as_deref()
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The address mapper (shared with caches/MSHRs so they can group by DRAM row).
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets statistics (the time cursor and bank states are kept).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Current time in memory clocks.
    pub fn now_clocks(&self) -> u64 {
        self.now
    }

    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.now as f64 * self.cfg.clock_ns()
    }

    /// Converts clocks to nanoseconds using this system's memory clock.
    pub fn clocks_to_ns(&self, clocks: u64) -> f64 {
        clocks as f64 * self.cfg.clock_ns()
    }

    fn bank_index(&self, channel: u32, rank: u32, bank: u32) -> usize {
        ((channel * self.cfg.org.ranks_per_channel + rank) * self.cfg.org.banks_per_rank + bank)
            as usize
    }

    fn rank_index(&self, channel: u32, rank: u32) -> usize {
        (channel * self.cfg.org.ranks_per_channel + rank) as usize
    }

    /// Services a batch of requests, returning the timing of the batch. Requests may be
    /// reordered within the configured queue window (FR-FCFS-style), but the batch only
    /// finishes when every request has completed.
    pub fn service_batch<I>(&mut self, requests: I) -> BatchResult
    where
        I: IntoIterator<Item = MemRequest>,
    {
        let start = self.now;
        let mut iter = requests.into_iter();
        let mut window: VecDeque<MemRequest> = VecDeque::new();
        let depth = self.cfg.queue_depth.max(1);
        let mut count = 0u64;
        let mut batch_end = start;

        loop {
            while window.len() < depth {
                match iter.next() {
                    Some(r) => window.push_back(r),
                    None => break,
                }
            }
            if window.is_empty() {
                break;
            }
            // Pick the window entry whose first column access could issue earliest (row
            // hits win over row misses), breaking ties by arrival order — the essence of
            // FR-FCFS.
            let mut best_idx = 0;
            let mut best_key = u64::MAX;
            for (i, req) in window.iter().enumerate() {
                let key = self.estimate_start(req);
                if key < best_key {
                    best_key = key;
                    best_idx = i;
                }
            }
            let req = window.remove(best_idx).expect("window entry");
            let plan = self.plan(&req, self.now);
            batch_end = batch_end.max(plan.completion);
            self.commit(plan);
            count += 1;
        }

        // Advance the global cursor to the end of the batch so subsequent batches cannot
        // overlap with this one (the accelerator consumes the data before issuing more).
        self.now = self.now.max(batch_end);
        BatchResult {
            start_clock: start,
            end_clock: batch_end.max(start),
            requests: count,
        }
    }

    /// Services a single request immediately (convenience for microbenchmarks/tests).
    pub fn service_one(&mut self, request: MemRequest) -> BatchResult {
        self.service_batch(std::iter::once(request))
    }

    fn commit(&mut self, plan: Plan) {
        self.banks[plan.bank_idx] = plan.new_bank;
        self.ranks[plan.rank_idx] = plan.new_rank;
        self.channels[plan.channel_idx] = plan.new_channel;
        self.stats.merge(&plan.stats_delta);
        if let Some(trace) = &mut self.trace {
            trace.extend(plan.records);
        }
    }

    /// Cheap estimate of when a request's first column command could issue, used by the
    /// FR-FCFS-style selection (row hits get earlier estimates than row misses).
    fn estimate_start(&self, req: &MemRequest) -> u64 {
        let t = &self.cfg.timing;
        let (bank_idx, row) = match req {
            MemRequest::Read { addr, .. }
            | MemRequest::Write { addr, .. }
            | MemRequest::PimUpdate { addr, .. } => {
                let loc = self.mapper.decompose(*addr);
                (self.bank_index(loc.channel, loc.rank, loc.bank), loc.row)
            }
            MemRequest::GatherFim { row, .. }
            | MemRequest::ScatterFim { row, .. }
            | MemRequest::GatherNmp { row, .. }
            | MemRequest::ScatterNmp { row, .. } => {
                let (ch, ra, ba, r) = self.mapper.unpack_row_id(*row);
                (self.bank_index(ch, ra, ba), r)
            }
        };
        let bank = &self.banks[bank_idx];
        if bank.open_row == Some(row) {
            bank.col_ready.max(bank.busy_until)
        } else {
            bank.act_ready
                .max(bank.pre_ready)
                .max(bank.busy_until)
                .saturating_add(t.t_rp + t.t_rcd)
        }
    }

    fn row_coords(&self, row: RowId) -> (u32, u32, u32, u64) {
        self.mapper.unpack_row_id(row)
    }

    /// Plans a request starting no earlier than `earliest`, without mutating any state.
    fn plan(&self, req: &MemRequest, earliest: u64) -> Plan {
        match req {
            MemRequest::Read {
                addr, useful_bytes, ..
            } => self.plan_simple(*addr, false, *useful_bytes, earliest),
            MemRequest::Write {
                addr, useful_bytes, ..
            } => self.plan_simple(*addr, true, *useful_bytes, earliest),
            MemRequest::GatherFim { row, offsets, .. } => {
                self.plan_fim(*row, offsets.len() as u64, false, earliest)
            }
            MemRequest::ScatterFim { row, offsets, .. } => {
                self.plan_fim(*row, offsets.len() as u64, true, earliest)
            }
            MemRequest::GatherNmp { row, offsets, .. } => {
                self.plan_nmp(*row, offsets.len() as u64, false, earliest)
            }
            MemRequest::ScatterNmp { row, offsets, .. } => {
                self.plan_nmp(*row, offsets.len() as u64, true, earliest)
            }
            MemRequest::PimUpdate { addr, .. } => self.plan_pim(*addr, earliest),
        }
    }

    /// Opens `row` in the bank if needed. Returns the time at which a column command may
    /// issue, and updates the plan's bank/rank copies and statistics.
    #[allow(clippy::too_many_arguments)]
    fn ensure_row_open(
        &self,
        bank: &mut BankState,
        rank: &mut RankState,
        records: &mut Vec<CommandRecord>,
        stats: &mut MemStats,
        coords: (u32, u32, u32),
        row: u64,
        earliest: u64,
    ) -> u64 {
        let t = &self.cfg.timing;
        let (channel, rank_i, bank_i) = coords;
        let mut start = earliest.max(bank.busy_until);

        if bank.open_row == Some(row) {
            stats.row_hits += 1;
            return start.max(bank.col_ready);
        }
        stats.row_misses += 1;

        // Precharge if another row is open.
        if bank.open_row.is_some() {
            let t_pre = start.max(bank.pre_ready);
            records.push(CommandRecord {
                time: t_pre,
                kind: CommandKind::Pre,
                channel,
                rank: rank_i,
                bank: bank_i,
                row: 0,
                bus: (0, 0),
            });
            stats.precharges += 1;
            bank.act_ready = bank.act_ready.max(t_pre + t.t_rp);
            start = t_pre;
        }

        // Activate, respecting tRC (same bank), tRRD (same rank) and tFAW (4-activate
        // window per rank).
        let mut t_act = start
            .max(bank.act_ready)
            .max(bank.last_act + t.t_rc)
            .max(rank.last_act + t.t_rrd);
        if rank.act_times.len() >= 4 {
            let fourth_last = rank.act_times[rank.act_times.len() - 4];
            t_act = t_act.max(fourth_last + t.t_faw);
        }
        records.push(CommandRecord {
            time: t_act,
            kind: CommandKind::Act,
            channel,
            rank: rank_i,
            bank: bank_i,
            row,
            bus: (0, 0),
        });
        stats.activations += 1;
        bank.open_row = Some(row);
        bank.last_act = t_act;
        bank.col_ready = t_act + t.t_rcd;
        bank.pre_ready = t_act + t.t_ras;
        rank.last_act = t_act;
        rank.act_times.push_back(t_act);
        while rank.act_times.len() > 8 {
            rank.act_times.pop_front();
        }
        bank.col_ready
    }

    /// Issues one column burst (RD or WR), returning `(issue_time, data_end_time)`.
    #[allow(clippy::too_many_arguments)]
    fn issue_column(
        &self,
        bank: &mut BankState,
        channel: &mut ChannelState,
        records: &mut Vec<CommandRecord>,
        stats: &mut MemStats,
        coords: (u32, u32, u32),
        is_write: bool,
        ready: u64,
    ) -> (u64, u64) {
        let t = &self.cfg.timing;
        let (ch, ra, ba) = coords;
        let latency = if is_write { t.t_cwl } else { t.t_cl };
        // The data bus must be free for the burst; gap filling lets bursts to other banks
        // proceed during another bank's FIM gap.
        let earliest_data = ready.max(bank.col_ready) + latency;
        let data_start = channel.reserve(earliest_data, t.t_burst);
        let t_col = data_start - latency;
        let data_end = data_start + t.t_burst;
        bank.col_ready = t_col + t.t_ccd_l;
        if is_write {
            bank.pre_ready = bank.pre_ready.max(data_end + t.t_wr);
            stats.write_bursts += 1;
        } else {
            bank.pre_ready = bank.pre_ready.max(t_col + t.t_rtp);
            stats.read_bursts += 1;
        }
        records.push(CommandRecord {
            time: t_col,
            kind: if is_write {
                CommandKind::Wr
            } else {
                CommandKind::Rd
            },
            channel: ch,
            rank: ra,
            bank: ba,
            row: 0,
            bus: (data_start, data_end),
        });
        (t_col, data_end)
    }

    fn plan_simple(&self, addr: u64, is_write: bool, useful_bytes: u32, earliest: u64) -> Plan {
        let loc = self.mapper.decompose(addr);
        let bank_idx = self.bank_index(loc.channel, loc.rank, loc.bank);
        let rank_idx = self.rank_index(loc.channel, loc.rank);
        let channel_idx = loc.channel as usize;
        let mut bank = self.banks[bank_idx].clone();
        let mut rank = self.ranks[rank_idx].clone();
        let mut channel = self.channels[channel_idx].clone();
        let mut stats = MemStats::default();
        let mut records = Vec::new();
        let coords = (loc.channel, loc.rank, loc.bank);

        let ready = self.ensure_row_open(
            &mut bank,
            &mut rank,
            &mut records,
            &mut stats,
            coords,
            loc.row,
            earliest,
        );
        let (_, data_end) = self.issue_column(
            &mut bank,
            &mut channel,
            &mut records,
            &mut stats,
            coords,
            is_write,
            ready,
        );

        let burst = self.cfg.org.burst_bytes;
        stats.offchip_bytes += burst;
        stats.useful_offchip_bytes += u64::from(useful_bytes).min(burst);
        if is_write {
            stats.write_transactions += 1;
        } else {
            stats.read_transactions += 1;
        }

        Plan {
            completion: data_end,
            bank_idx,
            rank_idx,
            channel_idx,
            new_bank: bank,
            new_rank: rank,
            new_channel: channel,
            stats_delta: stats,
            records,
        }
    }

    /// Piccolo-FIM gather/scatter (Section IV/VI): offset-buffer write burst(s), the
    /// in-bank operation hidden under the virtual-row `tWR + tRP + tRCD` gap, and the
    /// data-buffer read (gather) or write (scatter) burst(s).
    fn plan_fim(&self, row: RowId, items: u64, is_scatter: bool, earliest: u64) -> Plan {
        let (ch, ra, ba, row_no) = self.row_coords(row);
        let bank_idx = self.bank_index(ch, ra, ba);
        let rank_idx = self.rank_index(ch, ra);
        let channel_idx = ch as usize;
        let mut bank = self.banks[bank_idx].clone();
        let mut rank = self.ranks[rank_idx].clone();
        let mut channel = self.channels[channel_idx].clone();
        let mut stats = MemStats::default();
        let mut records = Vec::new();
        let coords = (ch, ra, ba);
        let fim = &self.cfg.fim;
        let org = &self.cfg.org;

        let ready = self.ensure_row_open(
            &mut bank,
            &mut rank,
            &mut records,
            &mut stats,
            coords,
            row_no,
            earliest,
        );

        // 1. Offset-buffer write burst(s) over the data bus.
        let offset_bursts = fim.offset_bursts(org);
        let mut last_end = ready;
        for i in 0..offset_bursts {
            let r = if i == 0 { ready } else { last_end };
            let (_, end) = self.issue_column(
                &mut bank,
                &mut channel,
                &mut records,
                &mut stats,
                coords,
                true,
                r,
            );
            last_end = end;
        }

        // 2. The internal gather/scatter proceeds during the virtual-row gap. The memory
        //    controller may not touch this bank before the gap elapses.
        let gap = self
            .cfg
            .fim_gap_clocks()
            .max(self.cfg.fim_internal_clocks());
        let internal_done = last_end + gap;
        bank.col_ready = bank.col_ready.max(internal_done);

        // 3. Data-buffer access: read for gathers, write for scatters.
        let data_bursts = fim.data_bursts(org);
        let mut completion = internal_done;
        for i in 0..data_bursts {
            let r = if i == 0 { internal_done } else { completion };
            let (_, end) = self.issue_column(
                &mut bank,
                &mut channel,
                &mut records,
                &mut stats,
                coords,
                is_scatter,
                r,
            );
            completion = end;
        }
        bank.busy_until = completion;

        // Traffic accounting.
        let burst = org.burst_bytes;
        stats.offchip_bytes += (offset_bursts + data_bursts) * burst;
        stats.useful_offchip_bytes += items * 8;
        stats.internal_bytes += items * burst; // full internal column access per item
        stats.write_transactions += offset_bursts;
        if is_scatter {
            stats.write_transactions += data_bursts;
            stats.fim_scatters += 1;
        } else {
            stats.read_transactions += data_bursts;
            stats.fim_gathers += 1;
        }

        Plan {
            completion,
            bank_idx,
            rank_idx,
            channel_idx,
            new_bank: bank,
            new_rank: rank,
            new_channel: channel,
            stats_delta: stats,
            records,
        }
    }

    /// NMP (buffer-chip, rank-level) gather/scatter: the same off-chip traffic as a FIM
    /// operation, but the internal column accesses serialize on the rank-level bus shared
    /// by every bank of the rank.
    fn plan_nmp(&self, row: RowId, items: u64, is_scatter: bool, earliest: u64) -> Plan {
        let (ch, ra, ba, row_no) = self.row_coords(row);
        let bank_idx = self.bank_index(ch, ra, ba);
        let rank_idx = self.rank_index(ch, ra);
        let channel_idx = ch as usize;
        let mut bank = self.banks[bank_idx].clone();
        let mut rank = self.ranks[rank_idx].clone();
        let mut channel = self.channels[channel_idx].clone();
        let mut stats = MemStats::default();
        let mut records = Vec::new();
        let coords = (ch, ra, ba);
        let t = &self.cfg.timing;
        let org = &self.cfg.org;

        let ready = self.ensure_row_open(
            &mut bank,
            &mut rank,
            &mut records,
            &mut stats,
            coords,
            row_no,
            earliest,
        );

        // One command/offset burst from the host to the buffer chip.
        let (_, cmd_end) = self.issue_column(
            &mut bank,
            &mut channel,
            &mut records,
            &mut stats,
            coords,
            true,
            ready,
        );

        // The buffer chip then performs `items` column accesses serialized on the
        // rank-internal bus (one burst each), without occupying the off-chip channel.
        let mut internal_cursor = cmd_end.max(rank.internal_bus_free).max(bank.col_ready);
        for _ in 0..items {
            internal_cursor += t.t_ccd_l.max(t.t_burst);
        }
        rank.internal_bus_free = internal_cursor;
        bank.col_ready = bank.col_ready.max(internal_cursor);
        stats.internal_bytes += items * org.burst_bytes;

        // Finally one data burst over the channel carries the gathered words (or
        // acknowledges the scatter data which was sent along with the command).
        let (_, data_end) = self.issue_column(
            &mut bank,
            &mut channel,
            &mut records,
            &mut stats,
            coords,
            is_scatter,
            internal_cursor,
        );
        bank.busy_until = data_end;

        let burst = org.burst_bytes;
        stats.offchip_bytes += 2 * burst;
        stats.useful_offchip_bytes += items * 8;
        stats.nmp_ops += 1;
        stats.write_transactions += 1;
        if is_scatter {
            stats.write_transactions += 1;
        } else {
            stats.read_transactions += 1;
        }

        Plan {
            completion: data_end,
            bank_idx,
            rank_idx,
            channel_idx,
            new_bank: bank,
            new_rank: rank,
            new_channel: channel,
            stats_delta: stats,
            records,
        }
    }

    /// PIM near-bank update: in-bank read-modify-write of one word, no channel traffic.
    fn plan_pim(&self, addr: u64, earliest: u64) -> Plan {
        let loc = self.mapper.decompose(addr);
        let bank_idx = self.bank_index(loc.channel, loc.rank, loc.bank);
        let rank_idx = self.rank_index(loc.channel, loc.rank);
        let channel_idx = loc.channel as usize;
        let mut bank = self.banks[bank_idx].clone();
        let mut rank = self.ranks[rank_idx].clone();
        let channel = self.channels[channel_idx].clone();
        let mut stats = MemStats::default();
        let mut records = Vec::new();
        let coords = (loc.channel, loc.rank, loc.bank);
        let t = &self.cfg.timing;

        let ready = self.ensure_row_open(
            &mut bank,
            &mut rank,
            &mut records,
            &mut stats,
            coords,
            loc.row,
            earliest,
        );
        // Internal column read + compute + column write; the near-bank ALU adds a couple
        // of cycles of latency that is irrelevant next to the column timing.
        let completion = ready.max(bank.col_ready) + 2 * t.t_ccd_l + 2;
        bank.col_ready = completion;
        bank.pre_ready = bank.pre_ready.max(completion + t.t_wr);
        bank.busy_until = completion;
        stats.pim_updates += 1;
        stats.internal_bytes += 2 * self.cfg.org.burst_bytes;

        Plan {
            completion,
            bank_idx,
            rank_idx,
            channel_idx,
            new_bank: bank,
            new_rank: rank,
            new_channel: channel,
            stats_delta: stats,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Region;

    fn read(addr: u64) -> MemRequest {
        MemRequest::read(addr, Region::Other)
    }

    #[test]
    fn sequential_reads_hit_open_rows() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400_x16());
        let reqs: Vec<MemRequest> = (0..256u64).map(|i| read(i * 64)).collect();
        mem.service_batch(reqs);
        let s = mem.stats();
        assert_eq!(s.read_transactions, 256);
        // Sequential bursts across 2 channels: at most a handful of activations.
        assert!(s.activations <= 8, "activations = {}", s.activations);
        assert!(s.row_hit_rate() > 0.9);
    }

    #[test]
    fn random_reads_cause_activations() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400_x16());
        // Touch one burst per row over many rows.
        let row_stride = 1 << 20;
        let reqs: Vec<MemRequest> = (0..128u64).map(|i| read(i * row_stride)).collect();
        mem.service_batch(reqs);
        assert!(mem.stats().activations >= 64);
    }

    #[test]
    fn random_reads_take_longer_than_sequential() {
        let cfg = DramConfig::ddr4_2400_x16();
        let mut seq = MemorySystem::new(cfg);
        let t_seq = seq
            .service_batch((0..512u64).map(|i| read(i * 64)))
            .elapsed_clocks();
        let mut rnd = MemorySystem::new(cfg);
        // A pseudo-random pattern touching many distinct rows within one bank's address
        // range, defeating both row locality and channel interleave.
        let t_rnd = rnd
            .service_batch((0..512u64).map(|i| read(((i * 2654435761) % 100_000) * 8192)))
            .elapsed_clocks();
        assert!(
            t_rnd > t_seq,
            "random ({t_rnd}) should be slower than sequential ({t_seq})"
        );
    }

    #[test]
    fn fim_gather_moves_less_offchip_data_than_eight_reads() {
        let cfg = DramConfig::ddr4_2400_x16().with_fim();
        let mapper = AddressMapper::new(&cfg);
        let mut fim = MemorySystem::new(cfg);
        let row = mapper.row_id(0);
        fim.service_one(MemRequest::GatherFim {
            row,
            offsets: (0..8).collect(),
            region: Region::PropertyRandom,
        });
        let fim_bytes = fim.stats().offchip_bytes;

        let mut conv = MemorySystem::new(DramConfig::ddr4_2400_x16());
        conv.service_batch((0..8u64).map(|i| MemRequest::Read {
            addr: i * 1024,
            useful_bytes: 8,
            region: Region::PropertyRandom,
        }));
        let conv_bytes = conv.stats().offchip_bytes;
        assert_eq!(fim_bytes, 128); // one offset burst + one data burst
        assert_eq!(conv_bytes, 512); // eight 64 B bursts
        assert_eq!(fim.stats().fim_gathers, 1);
        assert!(fim.stats().internal_bytes > 0);
    }

    #[test]
    fn fim_gathers_on_different_banks_overlap() {
        // Two gathers to different banks should take much less than twice one gather,
        // because the virtual-row gap of one bank overlaps the other bank's work.
        let cfg = DramConfig::new(crate::config::MemoryKind::Ddr4X16, 1, 1).with_fim();
        let mapper = AddressMapper::new(&cfg);
        let mut one = MemorySystem::new(cfg);
        let row_a = mapper.row_id(0);
        // A different bank: bank bits sit above the column bits.
        let row_b = mapper.row_id(cfg.org.row_bytes * 2);
        let t1 = one
            .service_one(MemRequest::GatherFim {
                row: row_a,
                offsets: (0..8).collect(),
                region: Region::Other,
            })
            .elapsed_clocks();
        let mut two = MemorySystem::new(cfg);
        let t2 = two
            .service_batch(vec![
                MemRequest::GatherFim {
                    row: row_a,
                    offsets: (0..8).collect(),
                    region: Region::Other,
                },
                MemRequest::GatherFim {
                    row: row_b,
                    offsets: (0..8).collect(),
                    region: Region::Other,
                },
            ])
            .elapsed_clocks();
        assert!(
            t2 < 2 * t1,
            "two overlapped gathers ({t2}) should beat 2x one gather ({t1})"
        );
    }

    #[test]
    fn nmp_gather_is_slower_than_fim_gather_at_scale() {
        // With many gathers spread over the banks of one rank, rank-level serialization
        // should make NMP slower than Piccolo-FIM.
        let cfg = DramConfig::new(crate::config::MemoryKind::Ddr4X16, 1, 1).with_fim();
        let mapper = AddressMapper::new(&cfg);
        let rows: Vec<RowId> = (0..64u64)
            .map(|i| mapper.row_id(i * cfg.org.row_bytes * 2))
            .collect();
        let mut fim = MemorySystem::new(cfg);
        let t_fim = fim
            .service_batch(rows.iter().map(|&row| MemRequest::GatherFim {
                row,
                offsets: (0..8).collect(),
                region: Region::Other,
            }))
            .elapsed_clocks();
        let mut nmp = MemorySystem::new(cfg);
        let t_nmp = nmp
            .service_batch(rows.iter().map(|&row| MemRequest::GatherNmp {
                row,
                offsets: (0..8).collect(),
                region: Region::Other,
            }))
            .elapsed_clocks();
        assert!(
            t_nmp > t_fim,
            "NMP ({t_nmp}) should be slower than FIM ({t_fim})"
        );
    }

    #[test]
    fn pim_updates_have_no_offchip_traffic() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400_x16());
        mem.service_batch((0..32u64).map(|i| MemRequest::PimUpdate {
            addr: i * 8,
            region: Region::PropertyRandom,
        }));
        assert_eq!(mem.stats().offchip_bytes, 0);
        assert_eq!(mem.stats().pim_updates, 32);
        assert!(mem.stats().internal_bytes > 0);
    }

    #[test]
    fn more_ranks_reduce_random_access_time() {
        let one_rank = DramConfig::new(crate::config::MemoryKind::Ddr4X16, 1, 1);
        let four_rank = DramConfig::new(crate::config::MemoryKind::Ddr4X16, 1, 4);
        let pattern: Vec<MemRequest> = (0..512u64)
            .map(|i| read(((i * 2654435761) % (1 << 22)) * 4096))
            .collect();
        let mut m1 = MemorySystem::new(one_rank);
        let t1 = m1.service_batch(pattern.clone()).elapsed_clocks();
        let mut m4 = MemorySystem::new(four_rank);
        let t4 = m4.service_batch(pattern).elapsed_clocks();
        assert!(t4 < t1, "4 ranks ({t4}) should beat 1 rank ({t1})");
    }

    #[test]
    fn time_advances_monotonically_across_batches() {
        let mut mem = MemorySystem::new(DramConfig::default());
        let b1 = mem.service_batch((0..16u64).map(|i| read(i * 64)));
        let b2 = mem.service_batch((0..16u64).map(|i| read(i * 64)));
        assert!(b2.start_clock >= b1.end_clock);
        assert!(mem.now_ns() > 0.0);
    }
}
