//! Memory-system configuration: device kinds, organization and timing parameters.
//!
//! The paper evaluates Piccolo on DDR4 x4/x8/x16 (default: four-rank DDR4-2400R x16),
//! LPDDR4, GDDR5 and HBM (Fig. 15), with channel/rank sweeps (Fig. 16). Timing values are
//! expressed in memory-controller clock cycles (`nCK`), mirroring how Ramulator and the
//! DDR4 specification state them.

/// The memory device families evaluated in Fig. 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// DDR4-2400 with x4 devices (16 chips per rank).
    Ddr4X4,
    /// DDR4-2400 with x8 devices (8 chips per rank).
    Ddr4X8,
    /// DDR4-2400 with x16 devices (4 chips per rank) — the paper's default.
    Ddr4X16,
    /// LPDDR4 (32 B effective burst granularity).
    Lpddr4,
    /// GDDR5 (32 B effective burst granularity).
    Gddr5,
    /// HBM (many narrow channels, 32 B burst granularity).
    Hbm,
}

impl MemoryKind {
    /// All kinds, in the order Fig. 15 uses.
    pub const ALL: [MemoryKind; 6] = [
        MemoryKind::Ddr4X4,
        MemoryKind::Ddr4X8,
        MemoryKind::Ddr4X16,
        MemoryKind::Lpddr4,
        MemoryKind::Gddr5,
        MemoryKind::Hbm,
    ];

    /// Display name used in figures.
    pub fn name(&self) -> &'static str {
        match self {
            MemoryKind::Ddr4X4 => "DDR4x4",
            MemoryKind::Ddr4X8 => "DDR4x8",
            MemoryKind::Ddr4X16 => "DDR4x16",
            MemoryKind::Lpddr4 => "LPDDR4",
            MemoryKind::Gddr5 => "GDDR5",
            MemoryKind::Hbm => "HBM",
        }
    }
}

/// DRAM timing parameters in memory-clock cycles (`nCK`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// ACT to internal RD/WR delay.
    pub t_rcd: u64,
    /// PRE to ACT delay.
    pub t_rp: u64,
    /// ACT to PRE minimum.
    pub t_ras: u64,
    /// ACT to ACT (same bank) minimum.
    pub t_rc: u64,
    /// CAS latency (RD command to first data).
    pub t_cl: u64,
    /// CAS write latency (WR command to first data).
    pub t_cwl: u64,
    /// Column-to-column delay, same bank group.
    pub t_ccd_l: u64,
    /// Column-to-column delay, different bank group.
    pub t_ccd_s: u64,
    /// Data burst duration on the bus.
    pub t_burst: u64,
    /// Write recovery (end of write data to PRE).
    pub t_wr: u64,
    /// Read to PRE delay.
    pub t_rtp: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// ACT to ACT, different bank same rank.
    pub t_rrd: u64,
    /// Average refresh interval.
    pub t_refi: u64,
    /// Refresh cycle time.
    pub t_rfc: u64,
}

/// Physical organization of the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Organization {
    /// Number of independent channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// DRAM chips ganged into one rank (64-bit data path / device width).
    pub chips_per_rank: u32,
    /// Banks visible per rank (all chips operate in lockstep).
    pub banks_per_rank: u32,
    /// Bank groups per rank (tCCD_L applies within a group).
    pub bank_groups: u32,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Row (page) size in bytes at rank level (per-chip page × chips).
    pub row_bytes: u64,
    /// Bytes transferred by one burst on the channel.
    pub burst_bytes: u64,
    /// Device (chip) data width in bits.
    pub device_width_bits: u32,
}

impl Organization {
    /// Total banks across the whole memory system.
    pub fn total_banks(&self) -> u64 {
        self.channels as u64 * self.ranks_per_channel as u64 * self.banks_per_rank as u64
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_banks() * self.rows_per_bank * self.row_bytes
    }
}

/// Piccolo-FIM configuration (Section IV/VI and the enhanced designs of Fig. 20a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FimConfig {
    /// Whether the memory devices implement the Piccolo-FIM offset/data buffers.
    pub enabled: bool,
    /// Bits per column offset written to the offset buffer (16 by default; 11 in the
    /// "enhanced" design for narrow devices, Section VIII-B).
    pub offset_bits: u32,
    /// Number of 8 B items collected per FIM operation (8 for 64 B-burst DDR4; 4 for
    /// 32 B-burst LPDDR/GDDR/HBM unless the enhanced long-burst mode is enabled).
    pub items_per_op: u32,
    /// Enhanced design: allow a longer burst so 32 B-burst devices still move 8 items per
    /// operation (Fig. 20a, HBM case).
    pub long_burst: bool,
}

impl FimConfig {
    /// FIM disabled (conventional memory).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            offset_bits: 16,
            items_per_op: 8,
            long_burst: false,
        }
    }

    /// Number of offset-buffer write bursts needed for one FIM operation: the offsets are
    /// duplicated across all chips of the rank (Section IV-B).
    pub fn offset_bursts(&self, org: &Organization) -> u64 {
        let bits = self.offset_bits as u64 * self.items_per_op as u64 * org.chips_per_rank as u64;
        bits.div_ceil(org.burst_bytes * 8).max(1)
    }

    /// Number of data bursts per FIM operation (1 unless `items_per_op * 8` bytes exceeds
    /// the burst size, e.g. long-burst mode keeps it at 1 by widening the burst).
    pub fn data_bursts(&self, org: &Organization) -> u64 {
        if self.long_burst {
            1
        } else {
            (self.items_per_op as u64 * 8)
                .div_ceil(org.burst_bytes)
                .max(1)
        }
    }
}

/// Complete memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Device family.
    pub kind: MemoryKind,
    /// Timing parameters.
    pub timing: Timing,
    /// Physical organization.
    pub org: Organization,
    /// Memory-controller clock in GHz (command-rate clock; data rate is 2x).
    pub clock_ghz: f64,
    /// Piccolo-FIM settings.
    pub fim: FimConfig,
    /// FR-FCFS scheduling window (outstanding requests considered per channel).
    pub queue_depth: usize,
}

impl DramConfig {
    /// The paper's default system: four-rank DDR4-2400R x16, two channels.
    pub fn ddr4_2400_x16() -> Self {
        Self::new(MemoryKind::Ddr4X16, 2, 4)
    }

    /// Builds a configuration for `kind` with the requested channel/rank counts
    /// (Fig. 15/16 sweeps).
    pub fn new(kind: MemoryKind, channels: u32, ranks_per_channel: u32) -> Self {
        let (timing, org, clock_ghz) = match kind {
            MemoryKind::Ddr4X4 => (
                Self::ddr4_timing(),
                Organization {
                    channels,
                    ranks_per_channel,
                    chips_per_rank: 16,
                    banks_per_rank: 16,
                    bank_groups: 4,
                    rows_per_bank: 1 << 17,
                    row_bytes: 8192,
                    burst_bytes: 64,
                    device_width_bits: 4,
                },
                1.2,
            ),
            MemoryKind::Ddr4X8 => (
                Self::ddr4_timing(),
                Organization {
                    channels,
                    ranks_per_channel,
                    chips_per_rank: 8,
                    banks_per_rank: 16,
                    bank_groups: 4,
                    rows_per_bank: 1 << 16,
                    row_bytes: 8192,
                    burst_bytes: 64,
                    device_width_bits: 8,
                },
                1.2,
            ),
            MemoryKind::Ddr4X16 => (
                Self::ddr4_timing(),
                Organization {
                    channels,
                    ranks_per_channel,
                    chips_per_rank: 4,
                    banks_per_rank: 8,
                    bank_groups: 2,
                    rows_per_bank: 1 << 16,
                    row_bytes: 8192,
                    burst_bytes: 64,
                    device_width_bits: 16,
                },
                1.2,
            ),
            MemoryKind::Lpddr4 => (
                Timing {
                    t_rcd: 29,
                    t_rp: 34,
                    t_ras: 68,
                    t_rc: 102,
                    t_cl: 28,
                    t_cwl: 14,
                    t_ccd_l: 8,
                    t_ccd_s: 8,
                    t_burst: 8,
                    t_wr: 34,
                    t_rtp: 12,
                    t_faw: 64,
                    t_rrd: 8,
                    t_refi: 12480,
                    t_rfc: 448,
                },
                Organization {
                    channels,
                    ranks_per_channel,
                    chips_per_rank: 2,
                    banks_per_rank: 8,
                    bank_groups: 1,
                    rows_per_bank: 1 << 16,
                    row_bytes: 4096,
                    burst_bytes: 32,
                    device_width_bits: 16,
                },
                1.6,
            ),
            MemoryKind::Gddr5 => (
                Timing {
                    t_rcd: 18,
                    t_rp: 18,
                    t_ras: 42,
                    t_rc: 60,
                    t_cl: 18,
                    t_cwl: 6,
                    t_ccd_l: 3,
                    t_ccd_s: 2,
                    t_burst: 2,
                    t_wr: 18,
                    t_rtp: 4,
                    t_faw: 28,
                    t_rrd: 7,
                    t_refi: 4680,
                    t_rfc: 260,
                },
                Organization {
                    channels,
                    ranks_per_channel,
                    chips_per_rank: 2,
                    banks_per_rank: 16,
                    bank_groups: 4,
                    rows_per_bank: 1 << 15,
                    row_bytes: 4096,
                    burst_bytes: 32,
                    device_width_bits: 32,
                },
                1.5,
            ),
            MemoryKind::Hbm => (
                Timing {
                    t_rcd: 14,
                    t_rp: 14,
                    t_ras: 34,
                    t_rc: 48,
                    t_cl: 14,
                    t_cwl: 2,
                    t_ccd_l: 4,
                    t_ccd_s: 2,
                    t_burst: 2,
                    t_wr: 16,
                    t_rtp: 4,
                    t_faw: 30,
                    t_rrd: 4,
                    t_refi: 3900,
                    t_rfc: 350,
                },
                Organization {
                    // HBM exposes many narrow channels; we model 4x the requested channel
                    // count at 128-bit width via 32 B bursts.
                    channels: channels * 4,
                    ranks_per_channel,
                    chips_per_rank: 1,
                    banks_per_rank: 16,
                    bank_groups: 4,
                    rows_per_bank: 1 << 14,
                    row_bytes: 2048,
                    burst_bytes: 32,
                    device_width_bits: 128,
                },
                1.0,
            ),
        };
        let fim = FimConfig {
            enabled: false,
            offset_bits: 16,
            items_per_op: if org.burst_bytes >= 64 { 8 } else { 4 },
            long_burst: false,
        };
        Self {
            kind,
            timing,
            org,
            clock_ghz,
            fim,
            queue_depth: 32,
        }
    }

    fn ddr4_timing() -> Timing {
        // DDR4-2400R (JESD79-4) nominal values in nCK at 1200 MHz.
        Timing {
            t_rcd: 16,
            t_rp: 16,
            t_ras: 39,
            t_rc: 55,
            t_cl: 16,
            t_cwl: 12,
            t_ccd_l: 6,
            t_ccd_s: 4,
            t_burst: 4,
            t_wr: 18,
            t_rtp: 9,
            t_faw: 26,
            t_rrd: 6,
            t_refi: 9360,
            t_rfc: 420,
        }
    }

    /// Enables Piccolo-FIM on this configuration.
    pub fn with_fim(mut self) -> Self {
        self.fim.enabled = true;
        self
    }

    /// Shrinks the per-bank row (page) size, keeping capacity by adding rows. Scaled-down
    /// experiments use this so that the ratio of a tile's working set to the DRAM row size
    /// matches the paper's full-scale setup (see `DESIGN.md`): with the paper's 4 MiB
    /// cache a tile spans thousands of rows, so in-bank gathers enjoy full bank-level
    /// parallelism; a scaled cache needs proportionally smaller rows to stay in the same
    /// regime.
    pub fn with_row_bytes(mut self, row_bytes: u64) -> Self {
        assert!(row_bytes >= 128 && row_bytes.is_power_of_two());
        let factor = self.org.row_bytes / row_bytes.min(self.org.row_bytes);
        self.org.rows_per_bank *= factor.max(1);
        self.org.row_bytes = row_bytes.min(self.org.row_bytes);
        self
    }

    /// Enables the "enhanced" FIM design of Fig. 20a: short offsets for narrow devices,
    /// long bursts for 32 B-burst devices.
    pub fn with_enhanced_fim(mut self) -> Self {
        self.fim.enabled = true;
        self.fim.offset_bits = 11;
        if self.org.burst_bytes < 64 {
            self.fim.long_burst = true;
            self.fim.items_per_op = 8;
        }
        self
    }

    /// Duration of one memory-controller clock in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// Peak off-chip bandwidth in GB/s across all channels (double data rate).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        let bytes_per_clock = self.org.burst_bytes as f64 / self.timing.t_burst as f64;
        bytes_per_clock * self.clock_ghz * self.org.channels as f64
    }

    /// The time window created by the virtual-row trick (`tWR + tRP + tRCD`, Section VI)
    /// in memory clocks.
    pub fn fim_gap_clocks(&self) -> u64 {
        self.timing.t_wr + self.timing.t_rp + self.timing.t_rcd
    }

    /// Internal time needed by the in-bank gather/scatter (`items_per_op x tCCD_L`).
    pub fn fim_internal_clocks(&self) -> u64 {
        self.fim.items_per_op as u64 * self.timing.t_ccd_l
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr4_2400_x16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_configuration() {
        let c = DramConfig::default();
        assert_eq!(c.kind, MemoryKind::Ddr4X16);
        assert_eq!(c.org.ranks_per_channel, 4);
        assert_eq!(c.org.burst_bytes, 64);
        assert!(!c.fim.enabled);
        assert!(c.with_fim().fim.enabled);
    }

    #[test]
    fn fim_gap_exceeds_internal_time_for_ddr4() {
        // Section VI: 8 x tCCD_L (48 nCK = 40 ns) fits within tWR + tRP + tRCD (50 nCK).
        let c = DramConfig::ddr4_2400_x16().with_fim();
        assert!(c.fim_gap_clocks() >= c.fim_internal_clocks());
    }

    #[test]
    fn offset_bursts_grow_with_narrow_devices() {
        // Section IV-B: x16 needs one offset burst, x8 two, x4 four.
        let x16 = DramConfig::new(MemoryKind::Ddr4X16, 1, 1).with_fim();
        let x8 = DramConfig::new(MemoryKind::Ddr4X8, 1, 1).with_fim();
        let x4 = DramConfig::new(MemoryKind::Ddr4X4, 1, 1).with_fim();
        assert_eq!(x16.fim.offset_bursts(&x16.org), 1);
        assert_eq!(x8.fim.offset_bursts(&x8.org), 2);
        assert_eq!(x4.fim.offset_bursts(&x4.org), 4);
    }

    #[test]
    fn enhanced_design_reduces_offset_bursts_on_x4() {
        let x4 = DramConfig::new(MemoryKind::Ddr4X4, 1, 1).with_fim();
        let x4e = DramConfig::new(MemoryKind::Ddr4X4, 1, 1).with_enhanced_fim();
        assert!(x4e.fim.offset_bursts(&x4e.org) < x4.fim.offset_bursts(&x4.org));
    }

    #[test]
    fn enhanced_design_enables_long_burst_on_hbm() {
        let hbm = DramConfig::new(MemoryKind::Hbm, 1, 1).with_fim();
        assert_eq!(hbm.fim.items_per_op, 4);
        let hbme = DramConfig::new(MemoryKind::Hbm, 1, 1).with_enhanced_fim();
        assert_eq!(hbme.fim.items_per_op, 8);
        assert_eq!(hbme.fim.data_bursts(&hbme.org), 1);
    }

    #[test]
    fn peak_bandwidth_is_sane() {
        let c = DramConfig::ddr4_2400_x16();
        // 2 channels x 19.2 GB/s.
        assert!((c.peak_bandwidth_gbps() - 38.4).abs() < 0.1);
        let hbm = DramConfig::new(MemoryKind::Hbm, 2, 1);
        assert!(hbm.peak_bandwidth_gbps() > c.peak_bandwidth_gbps());
    }

    #[test]
    fn capacity_and_bank_counts() {
        let c = DramConfig::ddr4_2400_x16();
        assert_eq!(c.org.total_banks(), 2 * 4 * 8);
        assert!(c.org.capacity_bytes() > 1 << 30);
    }
}
