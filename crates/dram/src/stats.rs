//! Statistics collected by the DRAM model.

/// Command/traffic counters accumulated while servicing requests.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// Row activations issued.
    pub activations: u64,
    /// Precharges issued.
    pub precharges: u64,
    /// Read bursts on the channel (includes FIM data-buffer reads).
    pub read_bursts: u64,
    /// Write bursts on the channel (includes FIM offset/data-buffer writes).
    pub write_bursts: u64,
    /// Piccolo-FIM gather operations executed.
    pub fim_gathers: u64,
    /// Piccolo-FIM scatter operations executed.
    pub fim_scatters: u64,
    /// NMP gather/scatter operations executed.
    pub nmp_ops: u64,
    /// PIM near-bank updates executed.
    pub pim_updates: u64,
    /// Bytes transferred over the off-chip channel (both directions).
    pub offchip_bytes: u64,
    /// Bytes of off-chip traffic that the requester marked as useful.
    pub useful_offchip_bytes: u64,
    /// Bytes moved inside the DRAM devices (bank-internal column accesses of FIM/NMP/PIM
    /// operations) that never cross the channel.
    pub internal_bytes: u64,
    /// Read transactions as counted by the paper (Fig. 3/12): one per RD burst.
    pub read_transactions: u64,
    /// Write transactions as counted by the paper.
    pub write_transactions: u64,
    /// Row-buffer hits among column accesses.
    pub row_hits: u64,
    /// Row-buffer misses (required an activation).
    pub row_misses: u64,
}

impl MemStats {
    /// Total transactions (RD + WR).
    pub fn total_transactions(&self) -> u64 {
        self.read_transactions + self.write_transactions
    }

    /// Fraction of off-chip traffic that was useful.
    pub fn useful_fraction(&self) -> f64 {
        if self.offchip_bytes == 0 {
            1.0
        } else {
            self.useful_offchip_bytes as f64 / self.offchip_bytes as f64
        }
    }

    /// Row-buffer hit rate among column accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &MemStats) {
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.read_bursts += other.read_bursts;
        self.write_bursts += other.write_bursts;
        self.fim_gathers += other.fim_gathers;
        self.fim_scatters += other.fim_scatters;
        self.nmp_ops += other.nmp_ops;
        self.pim_updates += other.pim_updates;
        self.offchip_bytes += other.offchip_bytes;
        self.useful_offchip_bytes += other.useful_offchip_bytes;
        self.internal_bytes += other.internal_bytes;
        self.read_transactions += other.read_transactions;
        self.write_transactions += other.write_transactions;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_derived_metrics() {
        let mut a = MemStats {
            read_transactions: 10,
            write_transactions: 5,
            offchip_bytes: 1000,
            useful_offchip_bytes: 250,
            row_hits: 6,
            row_misses: 2,
            ..Default::default()
        };
        let b = MemStats {
            read_transactions: 2,
            offchip_bytes: 200,
            useful_offchip_bytes: 200,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total_transactions(), 17);
        assert!((a.useful_fraction() - 450.0 / 1200.0).abs() < 1e-12);
        assert!((a.row_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_edge_cases() {
        let s = MemStats::default();
        assert_eq!(s.total_transactions(), 0);
        assert_eq!(s.useful_fraction(), 1.0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }
}
