//! Command-level DRAM timing and energy simulator with the Piccolo-FIM extension.
//!
//! This crate is the off-chip half of the Piccolo reproduction. It plays the role that
//! Ramulator plays in the paper's evaluation, extended with:
//!
//! * **Piccolo-FIM** (Section IV/VI): in-bank random scatter/gather driven by per-bank
//!   offset/data buffers, commanded through virtual rows so only standard DDR commands
//!   appear on the bus, with the internal operation hidden under the
//!   `tWR + tRP + tRCD` gap;
//! * an **NMP** memory-side model (rank-level scatter/gather in a buffer chip) and a
//!   **PIM** model (near-bank Process/Reduce/Apply) used by the paper's baselines;
//! * per-command **energy accounting** and a **timing-legality checker** standing in for
//!   the paper's FPGA protocol validation.
//!
//! # Example
//!
//! ```
//! use piccolo_dram::{DramConfig, MemorySystem, MemRequest, Region};
//!
//! let mut mem = MemorySystem::new(DramConfig::ddr4_2400_x16().with_fim());
//! let batch = mem.service_batch((0..64u64).map(|i| MemRequest::read(i * 64, Region::Other)));
//! assert!(batch.elapsed_clocks() > 0);
//! assert_eq!(mem.stats().read_transactions, 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod config;
pub mod energy;
pub mod request;
pub mod stats;
pub mod system;
pub mod verify;

pub use address::{AddressMapper, Location, RowId};
pub use config::{DramConfig, FimConfig, MemoryKind, Organization, Timing};
pub use energy::{dram_energy, DramEnergy, EnergyParams};
pub use request::{MemRequest, Region};
pub use stats::MemStats;
pub use system::{BatchResult, CommandKind, CommandRecord, MemorySystem};
pub use verify::{check_trace, Violation};

#[cfg(test)]
mod send_audit {
    //! Parallel sweeps (`piccolo::sweep`) own one `MemorySystem` per run and ship it to
    //! a worker thread. These assertions fail to compile if the DRAM model grows shared
    //! mutability (`Rc`, `RefCell`, raw pointers) instead of per-run ownership.
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn memory_system_state_is_send() {
        assert_send::<MemorySystem>();
        assert_send::<DramConfig>();
        assert_send::<MemStats>();
        assert_send::<BatchResult>();
        assert_send::<Vec<MemRequest>>();
        assert_sync::<DramConfig>();
        assert_sync::<AddressMapper>();
    }
}
