//! DRAM energy model.
//!
//! The paper reports the energy breakdown of Fig. 14 with the categories accelerator,
//! cache, DRAM read, DRAM write, DRAM I/O and "others" (static + refresh). The DRAM-side
//! categories are computed here from the command counts gathered by the timing model,
//! using per-operation energies in the range published for DDR4-class devices
//! (datasheet/DRAMPower-style constants). Absolute joules are not the point — the paper's
//! own numbers come from a model as well — but the relative weights (I/O dominating,
//! activation second) follow the same structure.

use crate::config::DramConfig;
use crate::stats::MemStats;

/// Per-operation energy constants in nanojoules (per rank-level operation / per 64 B of
/// data) plus background power in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy of one activate + precharge pair.
    pub act_pre_nj: f64,
    /// Core (array + peripheral) energy of reading one 64 B burst.
    pub read_nj_per_burst: f64,
    /// Core energy of writing one 64 B burst.
    pub write_nj_per_burst: f64,
    /// Off-chip I/O (and ODT) energy per 64 B crossing the channel.
    pub io_nj_per_burst: f64,
    /// Energy of one bank-internal column access that does not cross the channel
    /// (FIM gather/scatter step, NMP internal read, PIM update).
    pub internal_col_nj: f64,
    /// Background (static + peripheral) power per rank, in watts.
    pub static_w_per_rank: f64,
    /// Refresh energy per rank per tREFI interval.
    pub refresh_nj_per_refi: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            act_pre_nj: 1.7,
            read_nj_per_burst: 1.1,
            write_nj_per_burst: 1.2,
            io_nj_per_burst: 2.6,
            internal_col_nj: 0.45,
            static_w_per_rank: 0.08,
            refresh_nj_per_refi: 28.0,
        }
    }
}

/// DRAM energy broken down into the categories of Fig. 14.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramEnergy {
    /// Read-path core energy (activations attributed to reads + read bursts + internal
    /// column reads), in nanojoules.
    pub read_nj: f64,
    /// Write-path core energy, in nanojoules.
    pub write_nj: f64,
    /// Channel I/O energy, in nanojoules.
    pub io_nj: f64,
    /// Static + refresh energy ("Others" in Fig. 14), in nanojoules.
    pub others_nj: f64,
}

impl DramEnergy {
    /// Total DRAM energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.read_nj + self.write_nj + self.io_nj + self.others_nj
    }
}

/// Computes the DRAM energy of a run from its statistics and elapsed time.
pub fn dram_energy(
    cfg: &DramConfig,
    params: &EnergyParams,
    stats: &MemStats,
    elapsed_ns: f64,
) -> DramEnergy {
    let burst64 = |bursts: u64| bursts as f64 * cfg.org.burst_bytes as f64 / 64.0;

    // Attribute activations proportionally to read vs write column traffic.
    let rd_cols = stats.read_bursts as f64;
    let wr_cols = stats.write_bursts as f64;
    let col_total = (rd_cols + wr_cols).max(1.0);
    let act_energy = stats.activations as f64 * params.act_pre_nj;
    let act_rd = act_energy * rd_cols / col_total;
    let act_wr = act_energy * wr_cols / col_total;

    // Internal column accesses: gathers are internal reads, scatters internal writes, PIM
    // updates one read + one write.
    let internal_reads =
        (stats.fim_gathers + stats.nmp_ops / 2) as f64 * 8.0 + stats.pim_updates as f64;
    let internal_writes =
        (stats.fim_scatters + stats.nmp_ops / 2) as f64 * 8.0 + stats.pim_updates as f64;

    let read_nj = act_rd
        + burst64(stats.read_bursts) * params.read_nj_per_burst
        + internal_reads * params.internal_col_nj;
    let write_nj = act_wr
        + burst64(stats.write_bursts) * params.write_nj_per_burst
        + internal_writes * params.internal_col_nj;
    let io_nj = (stats.offchip_bytes as f64 / 64.0) * params.io_nj_per_burst;

    let ranks = (cfg.org.channels * cfg.org.ranks_per_channel) as f64;
    let static_nj = params.static_w_per_rank * ranks * elapsed_ns; // W * ns = nJ
    let refi_ns = cfg.timing.t_refi as f64 * cfg.clock_ns();
    let refresh_nj = if refi_ns > 0.0 {
        (elapsed_ns / refi_ns) * params.refresh_nj_per_refi * ranks
    } else {
        0.0
    };

    DramEnergy {
        read_nj,
        write_nj,
        io_nj,
        others_nj: static_nj + refresh_nj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_scales_with_offchip_bytes() {
        let cfg = DramConfig::default();
        let p = EnergyParams::default();
        let mut s = MemStats {
            offchip_bytes: 64 * 1000,
            ..Default::default()
        };
        let e1 = dram_energy(&cfg, &p, &s, 1000.0);
        s.offchip_bytes = 64 * 2000;
        let e2 = dram_energy(&cfg, &p, &s, 1000.0);
        assert!(e2.io_nj > 1.9 * e1.io_nj);
    }

    #[test]
    fn static_energy_scales_with_time() {
        let cfg = DramConfig::default();
        let p = EnergyParams::default();
        let s = MemStats::default();
        let e1 = dram_energy(&cfg, &p, &s, 1000.0);
        let e2 = dram_energy(&cfg, &p, &s, 2000.0);
        assert!(e2.others_nj > 1.9 * e1.others_nj);
        assert_eq!(e1.read_nj, 0.0);
    }

    #[test]
    fn reads_and_writes_split_activation_energy() {
        let cfg = DramConfig::default();
        let p = EnergyParams::default();
        let s = MemStats {
            activations: 100,
            read_bursts: 300,
            write_bursts: 100,
            ..Default::default()
        };
        let e = dram_energy(&cfg, &p, &s, 0.0);
        assert!(e.read_nj > e.write_nj);
        assert!(e.total_nj() > 0.0);
    }
}
