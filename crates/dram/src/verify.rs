//! Timing-legality checker for command traces.
//!
//! The paper validates Piccolo-FIM's commanding against the DDR4 standard on an FPGA
//! (Section VII-B). Our substitute is this checker: with tracing enabled, every command
//! the model issues is recorded and then checked against the configured timing
//! constraints. The property tests in `tests/timing.rs` drive random request mixes through
//! the model and assert that no constraint is ever violated.

use crate::config::DramConfig;
use crate::system::{CommandKind, CommandRecord};
use std::collections::BTreeMap;

/// A single detected violation of a timing constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Human-readable description of the violated constraint.
    pub constraint: String,
    /// The command that violated it.
    pub command: CommandRecord,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at t={} (bank {}/{}/{})",
            self.constraint,
            self.command.time,
            self.command.channel,
            self.command.rank,
            self.command.bank
        )
    }
}

/// Checks a command trace against the timing parameters of `cfg`.
///
/// Verified constraints: `tRC`/`tRRD`/`tFAW` between activations, `tRP` after precharge,
/// `tRCD` before column commands, `tRAS`/`tRTP`/`tWR` before precharge, and exclusive use
/// of each channel's data bus.
pub fn check_trace(cfg: &DramConfig, trace: &[CommandRecord]) -> Vec<Violation> {
    let t = &cfg.timing;
    let mut violations = Vec::new();

    #[derive(Default, Clone)]
    struct BankHist {
        last_act: Option<u64>,
        last_pre: Option<u64>,
        last_rd: Option<u64>,
        last_wr_data_end: Option<u64>,
    }
    let mut banks: BTreeMap<(u32, u32, u32), BankHist> = BTreeMap::new();
    let mut rank_acts: BTreeMap<(u32, u32), Vec<u64>> = BTreeMap::new();
    let mut bus_intervals: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();

    let mut sorted: Vec<&CommandRecord> = trace.iter().collect();
    sorted.sort_by_key(|r| r.time);

    for rec in sorted {
        let bkey = (rec.channel, rec.rank, rec.bank);
        let hist = banks.entry(bkey).or_default();
        match rec.kind {
            CommandKind::Act => {
                if let Some(prev) = hist.last_act {
                    if rec.time < prev + t.t_rc {
                        violations.push(Violation {
                            constraint: format!("tRC: ACT-to-ACT {} < {}", rec.time - prev, t.t_rc),
                            command: *rec,
                        });
                    }
                }
                if let Some(pre) = hist.last_pre {
                    if rec.time < pre + t.t_rp {
                        violations.push(Violation {
                            constraint: format!("tRP: PRE-to-ACT {} < {}", rec.time - pre, t.t_rp),
                            command: *rec,
                        });
                    }
                }
                let acts = rank_acts.entry((rec.channel, rec.rank)).or_default();
                if let Some(&last) = acts.last() {
                    if rec.time < last + t.t_rrd {
                        violations.push(Violation {
                            constraint: format!(
                                "tRRD: ACT-to-ACT {} < {}",
                                rec.time - last,
                                t.t_rrd
                            ),
                            command: *rec,
                        });
                    }
                }
                if acts.len() >= 4 {
                    let fourth = acts[acts.len() - 4];
                    if rec.time < fourth + t.t_faw {
                        violations.push(Violation {
                            constraint: format!(
                                "tFAW: 5th ACT within {} < {}",
                                rec.time - fourth,
                                t.t_faw
                            ),
                            command: *rec,
                        });
                    }
                }
                acts.push(rec.time);
                hist.last_act = Some(rec.time);
            }
            CommandKind::Pre => {
                if let Some(act) = hist.last_act {
                    if rec.time < act + t.t_ras {
                        violations.push(Violation {
                            constraint: format!(
                                "tRAS: ACT-to-PRE {} < {}",
                                rec.time - act,
                                t.t_ras
                            ),
                            command: *rec,
                        });
                    }
                }
                if let Some(rd) = hist.last_rd {
                    if rec.time < rd + t.t_rtp {
                        violations.push(Violation {
                            constraint: format!("tRTP: RD-to-PRE {} < {}", rec.time - rd, t.t_rtp),
                            command: *rec,
                        });
                    }
                }
                if let Some(wr_end) = hist.last_wr_data_end {
                    if rec.time < wr_end + t.t_wr {
                        violations.push(Violation {
                            constraint: format!(
                                "tWR: write-data-to-PRE {} < {}",
                                rec.time.saturating_sub(wr_end),
                                t.t_wr
                            ),
                            command: *rec,
                        });
                    }
                }
                hist.last_pre = Some(rec.time);
            }
            CommandKind::Rd | CommandKind::Wr => {
                if let Some(act) = hist.last_act {
                    if rec.time < act + t.t_rcd {
                        violations.push(Violation {
                            constraint: format!(
                                "tRCD: ACT-to-column {} < {}",
                                rec.time - act,
                                t.t_rcd
                            ),
                            command: *rec,
                        });
                    }
                } else {
                    violations.push(Violation {
                        constraint: "column command without prior ACT".to_string(),
                        command: *rec,
                    });
                }
                if rec.kind == CommandKind::Rd {
                    hist.last_rd = Some(rec.time);
                } else {
                    hist.last_wr_data_end = Some(rec.bus.1);
                }
                bus_intervals.entry(rec.channel).or_default().push(rec.bus);
            }
        }
    }

    // Data-bus exclusivity per channel.
    for (channel, mut intervals) in bus_intervals {
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            let (_, end_a) = w[0];
            let (start_b, _) = w[1];
            if start_b < end_a {
                violations.push(Violation {
                    constraint: format!(
                        "data-bus overlap on channel {channel}: burst starting at {start_b} overlaps one ending at {end_a}"
                    ),
                    command: CommandRecord {
                        time: start_b,
                        kind: CommandKind::Rd,
                        channel,
                        rank: 0,
                        bank: 0,
                        row: 0,
                        bus: (start_b, end_a),
                    },
                });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{MemRequest, Region};
    use crate::system::MemorySystem;

    #[test]
    fn clean_trace_has_no_violations() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_2400_x16());
        mem.enable_trace();
        mem.service_batch((0..200u64).map(|i| MemRequest::read(i * 4096, Region::Other)));
        let v = check_trace(mem.config(), mem.trace().unwrap());
        assert!(v.is_empty(), "violations: {:?}", &v[..v.len().min(5)]);
    }

    #[test]
    fn detector_catches_fabricated_violation() {
        let cfg = DramConfig::ddr4_2400_x16();
        let trace = vec![
            CommandRecord {
                time: 0,
                kind: CommandKind::Act,
                channel: 0,
                rank: 0,
                bank: 0,
                row: 1,
                bus: (0, 0),
            },
            CommandRecord {
                time: 2, // far below tRCD
                kind: CommandKind::Rd,
                channel: 0,
                rank: 0,
                bank: 0,
                row: 0,
                bus: (18, 22),
            },
        ];
        let v = check_trace(&cfg, &trace);
        assert_eq!(v.len(), 1);
        assert!(v[0].constraint.contains("tRCD"));
        assert!(v[0].to_string().contains("tRCD"));
    }
}
