//! Property-style tests on the cache models: inclusion/consistency invariants that must
//! hold for any access sequence, and the relative behaviour the paper relies on
//! (Piccolo-cache ≈ 8 B-line cache; sectored cache wastes capacity under sparse access).
//!
//! No crates.io access in the build container, so instead of `proptest` these run seeded
//! random cases through [`piccolo_graph::rng::Rng64`]; a failing seed is printed in the
//! assertion message.

use piccolo_cache::{
    MissAction, PiccoloCache, PiccoloCacheConfig, ReplacementPolicy, SectorCache, SectoredCache,
    SetAssocCache,
};
use piccolo_graph::rng::Rng64;
use std::collections::HashMap;

const CASES: u64 = 32;

/// A simple oracle that tracks, per 8-byte word, the last written value origin so we can
/// verify write-back completeness: every dirty word must either still be in the cache or
/// have been written back exactly as many times as it was evicted dirty.
fn check_writeback_conservation<C: SectorCache>(mut cache: C, ops: &[(u64, bool)]) {
    check_writeback_conservation_inner(&mut cache, ops, true);
}

/// `strict_spurious` is false for coarse-grained caches, whose 64 B line write-backs
/// legitimately carry words that were never written (they travel with a dirty line).
fn check_writeback_conservation_inner<C: SectorCache>(
    cache: &mut C,
    ops: &[(u64, bool)],
    strict_spurious: bool,
) {
    let mut dirty_words: HashMap<u64, bool> = HashMap::new();
    let mut writebacks: Vec<u64> = Vec::new();
    for &(addr, write) in ops {
        let addr = addr & !7;
        let r = cache.access(addr, 8, write);
        for a in &r.actions {
            if let MissAction::Writeback { addr, bytes } = a {
                assert_eq!(*bytes % 8, 0);
                for w in 0..(*bytes as u64 / 8) {
                    writebacks.push(addr + w * 8);
                }
            }
        }
        if write {
            dirty_words.insert(addr, true);
        }
    }
    for a in cache.flush() {
        if let MissAction::Writeback { addr, bytes } = a {
            for w in 0..(bytes as u64 / 8) {
                writebacks.push(addr + w * 8);
            }
        }
    }
    // Every word that was ever written must appear among the write-backs at least once
    // (it cannot be silently dropped), and no word that was never written may be written
    // back.
    let written: std::collections::HashSet<u64> = dirty_words.keys().copied().collect();
    if strict_spurious {
        for wb in &writebacks {
            assert!(
                written.contains(wb),
                "write-back of a never-written word {wb:#x}"
            );
        }
    }
    for w in &written {
        assert!(
            writebacks.contains(w),
            "dirty word {w:#x} was neither resident at flush nor written back"
        );
    }
}

/// Random access trace: 1..400 (address, is_write) pairs below `max_addr`.
fn random_ops(rng: &mut Rng64, max_addr: u64) -> Vec<(u64, bool)> {
    let len = 1 + rng.gen_index(399);
    (0..len)
        .map(|_| (rng.gen_u64_below(max_addr), rng.gen_bool(0.5)))
        .collect()
}

/// Dirty data is never lost by any cache design.
#[test]
fn writeback_conservation_conventional() {
    for seed in 0..CASES {
        let ops = random_ops(&mut Rng64::seed_from_u64(seed), 1 << 16);
        // 64 B line write-backs carry neighbouring never-written words, so only the
        // "no dirty data lost" direction is checked for the conventional cache.
        check_writeback_conservation_inner(&mut SetAssocCache::conventional(4096, 4), &ops, false);
    }
}

#[test]
fn writeback_conservation_line8() {
    for seed in 0..CASES {
        let ops = random_ops(&mut Rng64::seed_from_u64(seed), 1 << 16);
        check_writeback_conservation(SetAssocCache::line8(2048, 4), &ops);
    }
}

#[test]
fn writeback_conservation_sectored() {
    for seed in 0..CASES {
        let ops = random_ops(&mut Rng64::seed_from_u64(seed), 1 << 16);
        check_writeback_conservation(SectoredCache::new(4096, 4), &ops);
    }
}

#[test]
fn writeback_conservation_piccolo() {
    for seed in 0..CASES {
        let ops = random_ops(&mut Rng64::seed_from_u64(seed), 1 << 16);
        check_writeback_conservation(PiccoloCache::with_capacity(4096), &ops);
    }
}

#[test]
fn writeback_conservation_piccolo_rrip() {
    for seed in 0..CASES {
        let ops = random_ops(&mut Rng64::seed_from_u64(seed), 1 << 16);
        check_writeback_conservation(
            PiccoloCache::new(PiccoloCacheConfig {
                capacity_bytes: 4096,
                policy: ReplacementPolicy::Rrip,
                ..Default::default()
            }),
            &ops,
        );
    }
}

/// A second identical read always hits, in every design.
#[test]
fn immediate_rereference_hits() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let addr = rng.gen_u64_below(1 << 20) & !7;
        let mut caches: Vec<Box<dyn SectorCache>> = vec![
            Box::new(SetAssocCache::conventional(8192, 8)),
            Box::new(SetAssocCache::line8(8192, 8)),
            Box::new(SectoredCache::new(8192, 8)),
            Box::new(PiccoloCache::with_capacity(8192)),
        ];
        for cache in caches.iter_mut() {
            cache.access(addr, 8, false);
            assert!(
                cache.access(addr, 8, false).hit,
                "seed {seed}: {} must hit",
                cache.name()
            );
        }
    }
}

/// Hit/miss counters always add up and fills never exceed accesses.
#[test]
fn stats_are_consistent() {
    for seed in 0..CASES {
        let ops = random_ops(&mut Rng64::seed_from_u64(seed), 1 << 18);
        let mut cache = PiccoloCache::with_capacity(8192);
        for &(addr, write) in &ops {
            cache.access(addr & !7, 8, write);
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, s.accesses, "seed {seed}");
        assert_eq!(s.accesses, ops.len() as u64, "seed {seed}");
        assert!(s.fill_bytes <= s.misses * 8, "seed {seed}");
    }
}

/// The headline claim of Fig. 11: under sparse random accesses Piccolo-cache hits nearly
/// as often as the ideal 8 B-line cache, and far more often than a sectored cache of the
/// same capacity.
#[test]
fn piccolo_cache_tracks_ideal_8b_cache_on_sparse_random_accesses() {
    let mut rng = Rng64::seed_from_u64(42);

    let capacity = 64 * 1024u64;
    let mut piccolo = PiccoloCache::with_capacity(capacity);
    let mut ideal = SetAssocCache::line8(capacity, 8);
    let mut sectored = SectoredCache::new(capacity, 8);

    // The 4 MiB access range spans two distinct Piccolo-cache line tags at this geometry;
    // the accelerator would announce that via way partitioning at the start of a tile.
    piccolo.begin_tile(2);
    ideal.begin_tile(2);
    sectored.begin_tile(2);

    // Sparse random accesses: 4K distinct hot words spread over a 4 MiB range (so 64 B
    // lines are mostly wasted), re-accessed with a skewed distribution.
    let hot: Vec<u64> = (0..4096).map(|_| rng.gen_u64_below(4 << 20) & !7).collect();
    for _ in 0..200_000 {
        let idx = (rng.gen_f64().powi(2) * hot.len() as f64) as usize;
        let addr = hot[idx.min(hot.len() - 1)];
        piccolo.access(addr, 8, false);
        ideal.access(addr, 8, false);
        sectored.access(addr, 8, false);
    }

    let hp = piccolo.stats().hit_rate();
    let hi = ideal.stats().hit_rate();
    let hs = sectored.stats().hit_rate();
    assert!(
        hp > hi - 0.08,
        "Piccolo-cache ({hp:.3}) should be within a few percent of the 8B-line cache ({hi:.3})"
    );
    assert!(
        hp > hs + 0.05,
        "Piccolo-cache ({hp:.3}) should clearly beat the sectored cache ({hs:.3})"
    );
}

/// Conventional 64 B caches waste most of their fetched bytes on sparse 8 B accesses
/// (the Fig. 3 motivation): the fill traffic is 8x the useful traffic.
#[test]
fn conventional_cache_overfetches_on_sparse_accesses() {
    let mut rng = Rng64::seed_from_u64(7);
    let mut conv = SetAssocCache::conventional(16 * 1024, 8);
    let mut useful = 0u64;
    for _ in 0..50_000 {
        let addr = rng.gen_u64_below(16 << 20) & !7;
        let r = conv.access(addr, 8, false);
        for a in r.actions {
            if let MissAction::Fill { useful: u, .. } = a {
                useful += u as u64;
            }
        }
    }
    let s = conv.stats();
    assert!(
        s.fill_bytes >= useful * 7,
        "fills {} useful {}",
        s.fill_bytes,
        useful
    );
}
