//! Piccolo-cache (Section V of the paper).
//!
//! Piccolo-cache stores 8 B sectors inside 128 B lines (16 sectors). Each line carries one
//! address *tag*; each sector additionally carries an 8-bit *fine-grained tag* (fg-tag),
//! so the sectors of one line may come from anywhere in a 32 KiB window (fg-tag 8 bits +
//! fg-offset 4 bits + byte offset 3 bits) that shares the line tag. This keeps the tag
//! overhead near a conventional cache (≈2 % line tags + 12.5 % fg-tags) while behaving
//! almost like the ideal 8 B-line cache.
//!
//! Address split (paper example: 48-bit addresses, 4 MiB, 8-way):
//!
//! ```text
//!  | tag | fg-tag | set index | fg-offset | byte offset |
//!  |  21 |      8 |        12 |         4 |           3 |
//! ```
//!
//! The same tag may occupy several ways of a set; lookups search the ways sequentially
//! (cheap, throughput-oriented). Replacement follows Section V-B: on an fg-tag miss the
//! victim is a *sector* of the LRU line with the same tag, unless the tag occupies fewer
//! ways than its way-partitioning allocation, in which case a whole line of another tag
//! is evicted to install a new line for this tag.

use crate::stats::CacheStats;
use crate::traits::{AccessResult, MissAction, ReplacementPolicy, SectorCache};

const SECTOR_BYTES: u64 = 8;

#[derive(Debug, Clone)]
struct Line {
    valid: bool,
    tag: u64,
    lru: u64,
    /// 2-bit re-reference prediction value when RRIP replacement is used.
    rrpv: u8,
    sector_valid: Vec<bool>,
    sector_dirty: Vec<bool>,
    sector_fgtag: Vec<u16>,
}

impl Line {
    fn empty(sectors: usize) -> Self {
        Self {
            valid: false,
            tag: 0,
            lru: 0,
            rrpv: 3,
            sector_valid: vec![false; sectors],
            sector_dirty: vec![false; sectors],
            sector_fgtag: vec![0; sectors],
        }
    }
}

/// Geometry of a [`PiccoloCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PiccoloCacheConfig {
    /// Total data capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (16 sectors of 8 B by default).
    pub line_bytes: u32,
    /// Number of fg-tag bits (8 in the paper).
    pub fg_tag_bits: u32,
    /// Replacement policy among same-tag lines / victim lines.
    pub policy: ReplacementPolicy,
}

impl Default for PiccoloCacheConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 4 << 20,
            ways: 8,
            line_bytes: 128,
            fg_tag_bits: 8,
            policy: ReplacementPolicy::Lru,
        }
    }
}

/// The Piccolo-cache model.
#[derive(Debug, Clone)]
pub struct PiccoloCache {
    cfg: PiccoloCacheConfig,
    sets: u64,
    sectors_per_line: u32,
    lines: Vec<Line>,
    lru_clock: u64,
    /// Ways each tag may occupy in a set (equal way partitioning over the tags of the
    /// current tile); `ways` when tiling information is absent.
    allocated_ways_per_tag: u32,
    stats: CacheStats,
}

impl PiccoloCache {
    /// Creates a Piccolo-cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero ways, line smaller than a sector).
    pub fn new(cfg: PiccoloCacheConfig) -> Self {
        assert!(cfg.ways > 0, "ways must be positive");
        assert!(
            cfg.line_bytes as u64 >= SECTOR_BYTES && cfg.line_bytes.is_multiple_of(8),
            "line must be a multiple of 8 B"
        );
        let sets = (cfg.capacity_bytes / (cfg.line_bytes as u64 * cfg.ways as u64)).max(1);
        let sectors_per_line = cfg.line_bytes / SECTOR_BYTES as u32;
        Self {
            cfg,
            sets,
            sectors_per_line,
            lines: vec![Line::empty(sectors_per_line as usize); (sets * cfg.ways as u64) as usize],
            lru_clock: 0,
            allocated_ways_per_tag: cfg.ways,
            stats: CacheStats::default(),
        }
    }

    /// Creates a Piccolo-cache with the given capacity, 8 ways, LRU, 128 B lines.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        Self::new(PiccoloCacheConfig {
            capacity_bytes,
            ..Default::default()
        })
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// The address fields `(tag, fg_tag, set, fg_offset)` of an 8 B-aligned address.
    fn fields(&self, addr: u64) -> (u64, u16, u64, usize) {
        let word = addr / SECTOR_BYTES;
        let fg_offset = (word % self.sectors_per_line as u64) as usize;
        let rest = word / self.sectors_per_line as u64;
        let set = rest % self.sets;
        let rest = rest / self.sets;
        let fg_mask = (1u64 << self.cfg.fg_tag_bits) - 1;
        let fg_tag = (rest & fg_mask) as u16;
        let tag = rest >> self.cfg.fg_tag_bits;
        (tag, fg_tag, set, fg_offset)
    }

    /// Reconstructs the byte address of a sector from its stored coordinates.
    fn sector_addr(&self, tag: u64, fg_tag: u16, set: u64, fg_offset: usize) -> u64 {
        let rest = (tag << self.cfg.fg_tag_bits) | fg_tag as u64;
        let word = (rest * self.sets + set) * self.sectors_per_line as u64 + fg_offset as u64;
        word * SECTOR_BYTES
    }

    fn touch(&mut self, idx: usize) {
        self.lru_clock += 1;
        self.lines[idx].lru = self.lru_clock;
        self.lines[idx].rrpv = 0;
    }
}

impl SectorCache for PiccoloCache {
    fn access(&mut self, addr: u64, bytes: u32, write: bool) -> AccessResult {
        self.stats.accesses += 1;
        let (tag, fg_tag, set, fg_offset) = self.fields(addr);
        let requested = bytes.min(SECTOR_BYTES as u32);
        let start = (set * self.cfg.ways as u64) as usize;
        let ways = self.cfg.ways as usize;

        // Sequential search of the ways for matching tags (Section V-A).
        let mut same_tag_ways: Vec<usize> = Vec::with_capacity(ways);
        let mut invalid_way: Option<usize> = None;
        for w in 0..ways {
            let line = &self.lines[start + w];
            if line.valid && line.tag == tag {
                same_tag_ways.push(start + w);
            } else if !line.valid && invalid_way.is_none() {
                invalid_way = Some(start + w);
            }
        }

        // Hit: a same-tag line whose sector holds our fg-tag.
        for &idx in &same_tag_ways {
            let line = &self.lines[idx];
            if line.sector_valid[fg_offset] && line.sector_fgtag[fg_offset] == fg_tag {
                self.touch(idx);
                self.lines[idx].sector_dirty[fg_offset] |= write;
                self.stats.hits += 1;
                return AccessResult::hit();
            }
        }

        self.stats.misses += 1;
        let mut actions = Vec::with_capacity(2);

        // Decide between installing a new line (way partitioning allows it) or replacing
        // a sector inside an existing same-tag line.
        let may_take_new_way = (same_tag_ways.len() as u32) < self.allocated_ways_per_tag;
        let install_idx = if may_take_new_way {
            if let Some(idx) = invalid_way {
                Some(idx)
            } else {
                // Evict a whole line belonging to another tag, chosen by LRU/RRIP.
                (0..ways)
                    .map(|w| start + w)
                    .filter(|&i| !same_tag_ways.contains(&i))
                    .min_by_key(|&i| match self.cfg.policy {
                        ReplacementPolicy::Lru => self.lines[i].lru,
                        ReplacementPolicy::Rrip => {
                            // Higher RRPV = evict first; fall back to LRU order.
                            (u64::from(3 - self.lines[i].rrpv) << 60) | self.lines[i].lru
                        }
                    })
            }
        } else {
            None
        };

        let idx = match install_idx {
            Some(idx) => {
                // Whole-line eviction (write back every dirty sector).
                let line = &self.lines[idx];
                if line.valid {
                    let (vtag, vset) = (line.tag, set);
                    for s in 0..self.sectors_per_line as usize {
                        if line.sector_valid[s] && line.sector_dirty[s] {
                            let a = self.sector_addr(vtag, line.sector_fgtag[s], vset, s);
                            actions.push(MissAction::Writeback {
                                addr: a,
                                bytes: SECTOR_BYTES as u32,
                            });
                            self.stats.writeback_bytes += SECTOR_BYTES;
                        }
                    }
                    self.stats.line_evictions += 1;
                }
                let line = &mut self.lines[idx];
                *line = Line::empty(self.sectors_per_line as usize);
                line.valid = true;
                line.tag = tag;
                idx
            }
            None => {
                // Sector replacement among the same-tag lines (Fig. 6 right): prefer a
                // line whose target sector slot is still invalid (no data lost), otherwise
                // the LRU/RRIP line, whose sector is evicted.
                let idx = same_tag_ways
                    .iter()
                    .copied()
                    .find(|&i| !self.lines[i].sector_valid[fg_offset])
                    .unwrap_or_else(|| {
                        *same_tag_ways
                            .iter()
                            .min_by_key(|&&i| match self.cfg.policy {
                                ReplacementPolicy::Lru => self.lines[i].lru,
                                ReplacementPolicy::Rrip => {
                                    (u64::from(3 - self.lines[i].rrpv) << 60) | self.lines[i].lru
                                }
                            })
                            .expect("at least one same-tag line when partition is full")
                    });
                let line = &self.lines[idx];
                if line.sector_valid[fg_offset] && line.sector_dirty[fg_offset] {
                    let a =
                        self.sector_addr(line.tag, line.sector_fgtag[fg_offset], set, fg_offset);
                    actions.push(MissAction::Writeback {
                        addr: a,
                        bytes: SECTOR_BYTES as u32,
                    });
                    self.stats.writeback_bytes += SECTOR_BYTES;
                }
                if line.sector_valid[fg_offset] {
                    self.stats.sector_evictions += 1;
                }
                idx
            }
        };

        // Install the new sector.
        let line = &mut self.lines[idx];
        line.sector_valid[fg_offset] = true;
        line.sector_dirty[fg_offset] = write;
        line.sector_fgtag[fg_offset] = fg_tag;
        self.touch(idx);
        self.stats.fill_bytes += SECTOR_BYTES;
        actions.push(MissAction::Fill {
            addr: addr & !(SECTOR_BYTES - 1),
            bytes: SECTOR_BYTES as u32,
            useful: requested,
        });

        AccessResult {
            hit: false,
            actions,
        }
    }

    fn flush(&mut self) -> Vec<MissAction> {
        let mut actions = Vec::new();
        for set in 0..self.sets {
            for w in 0..self.cfg.ways as u64 {
                let idx = (set * self.cfg.ways as u64 + w) as usize;
                let sectors = self.sectors_per_line as usize;
                for s in 0..sectors {
                    let line = &self.lines[idx];
                    if line.valid && line.sector_valid[s] && line.sector_dirty[s] {
                        let a = self.sector_addr(line.tag, line.sector_fgtag[s], set, s);
                        actions.push(MissAction::Writeback {
                            addr: a,
                            bytes: SECTOR_BYTES as u32,
                        });
                        self.stats.writeback_bytes += SECTOR_BYTES;
                    }
                }
                self.lines[idx] = Line::empty(self.sectors_per_line as usize);
            }
        }
        actions
    }

    fn begin_tile(&mut self, distinct_tags: u32) {
        // Equal way partitioning over the tags of the tile (Section V-B).
        self.allocated_ways_per_tag = (self.cfg.ways / distinct_tags.max(1)).max(1);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        match self.cfg.policy {
            ReplacementPolicy::Lru => "Piccolo (LRU)",
            ReplacementPolicy::Rrip => "Piccolo (RRIP)",
        }
    }

    fn capacity_bytes(&self) -> u64 {
        self.sets * self.cfg.ways as u64 * self.cfg.line_bytes as u64
    }

    fn tag_coverage_bytes(&self) -> u64 {
        // Addresses sharing one line tag span fg-tag x set x fg-offset x 8 B
        // (32 KiB for the paper's 4 MiB geometry).
        (1u64 << self.cfg.fg_tag_bits) * self.sets * self.sectors_per_line as u64 * SECTOR_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PiccoloCache {
        PiccoloCache::new(PiccoloCacheConfig {
            capacity_bytes: 4096,
            ways: 4,
            line_bytes: 128,
            fg_tag_bits: 8,
            policy: ReplacementPolicy::Lru,
        })
    }

    #[test]
    fn address_field_roundtrip() {
        let c = small();
        for addr in [0u64, 8, 4096, 123456 & !7, (1 << 30) + 8 * 77] {
            let (tag, fg, set, off) = c.fields(addr);
            assert_eq!(c.sector_addr(tag, fg, set, off), addr & !7);
        }
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small();
        assert!(!c.access(64, 8, false).hit);
        assert!(c.access(64, 8, false).hit);
        assert!(c.access(64, 8, true).hit);
    }

    #[test]
    fn fills_are_sector_sized() {
        let mut c = small();
        let r = c.access(1 << 20, 8, false);
        assert!(matches!(
            r.actions.last().unwrap(),
            MissAction::Fill {
                bytes: 8,
                useful: 8,
                ..
            }
        ));
    }

    #[test]
    fn same_tag_different_fgtag_evicts_sector_not_line() {
        let mut c = small();
        // Two addresses with the same (tag, set, fg-offset) but different fg-tags: the
        // fg-tag stride is sets * sectors_per_line * 8 bytes.
        let stride = c.sets() * 16 * 8;
        c.access(0, 8, true);
        c.begin_tile(4); // one way per tag -> forces sector replacement for same tag
                         // Fill the allowed way, then force an fg-tag conflict.
        let r = c.access(stride, 8, false);
        assert!(!r.hit);
        // Second access to the first address misses again (its sector was replaced) but
        // the line itself was reused, not evicted.
        assert_eq!(c.stats().line_evictions, 0);
        assert!(c.stats().sector_evictions >= 1);
        // The dirty evicted sector produced a writeback.
        assert!(r
            .actions
            .iter()
            .any(|a| matches!(a, MissAction::Writeback { addr: 0, bytes: 8 })));
    }

    #[test]
    fn different_tags_can_coexist_across_ways() {
        let mut c = small();
        c.begin_tile(2);
        // Two different tags map to the same set; with 4 ways and 2 tags each may hold 2.
        let tag_stride = c.sets() * 16 * 8 * 256; // beyond the fg-tag range -> new tag
        c.access(0, 8, false);
        c.access(tag_stride, 8, false);
        assert!(c.access(0, 8, false).hit);
        assert!(c.access(tag_stride, 8, false).hit);
    }

    #[test]
    fn way_partitioning_limits_ways_per_tag() {
        let mut c = small();
        c.begin_tile(4);
        assert_eq!(c.allocated_ways_per_tag, 1);
        c.begin_tile(1);
        assert_eq!(c.allocated_ways_per_tag, 4);
        c.begin_tile(100);
        assert_eq!(c.allocated_ways_per_tag, 1);
    }

    #[test]
    fn flush_writes_back_dirty_sectors() {
        let mut c = small();
        c.access(8, 8, true);
        c.access(80, 8, false);
        let wb = c.flush();
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].addr(), 8);
        assert!(!c.access(8, 8, false).hit);
    }

    #[test]
    fn rrip_variant_works() {
        let mut c = PiccoloCache::new(PiccoloCacheConfig {
            capacity_bytes: 2048,
            ways: 2,
            policy: ReplacementPolicy::Rrip,
            ..Default::default()
        });
        assert_eq!(c.name(), "Piccolo (RRIP)");
        for i in 0..64 {
            c.access(i * 8, 8, i % 2 == 0);
        }
        assert!(c.stats().accesses == 64);
    }

    #[test]
    fn behaves_like_8b_cache_for_dense_working_set_within_capacity() {
        // A dense working set smaller than capacity should be fully held after a warm-up
        // pass, like the ideal 8B-line cache.
        let mut c = PiccoloCache::with_capacity(64 * 1024);
        let words = 4096u64; // 32 KiB of 8 B words
        for i in 0..words {
            c.access(i * 8, 8, false);
        }
        let misses_before = c.stats().misses;
        for i in 0..words {
            c.access(i * 8, 8, false);
        }
        let misses_after = c.stats().misses;
        assert_eq!(misses_before, words, "first pass all cold misses");
        assert_eq!(misses_after, misses_before, "second pass must be all hits");
    }
}
