//! Tag/metadata overhead model (Fig. 5 and the area analysis of Section VII-F).
//!
//! The paper quantifies the storage cost of each cache organisation relative to its data
//! capacity: an 8 B-line cache needs a full tag per 8 B (≈45 % overhead), while
//! Piccolo-cache needs one short tag per 128 B line (≈2 %) plus an 8-bit fg-tag per 8 B
//! sector (12.5 %). These functions reproduce those numbers for any geometry.

/// Tag/metadata overhead of a cache organisation, as a fraction of the data capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagOverhead {
    /// Per-line tag bits relative to data bits.
    pub line_tag_fraction: f64,
    /// Per-sector metadata bits (fg-tags, valid/dirty bits) relative to data bits.
    pub sector_meta_fraction: f64,
}

impl TagOverhead {
    /// Total overhead fraction.
    pub fn total(&self) -> f64 {
        self.line_tag_fraction + self.sector_meta_fraction
    }
}

fn log2_ceil(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// Overhead of a plain set-associative cache with `line_bytes` lines.
///
/// The tag is `address_bits - set_bits - offset_bits` wide; one valid + one dirty bit per
/// line is charged to the sector metadata fraction.
pub fn set_assoc_overhead(
    address_bits: u32,
    capacity_bytes: u64,
    line_bytes: u32,
    ways: u32,
) -> TagOverhead {
    let sets = (capacity_bytes / (line_bytes as u64 * ways as u64)).max(1);
    let set_bits = log2_ceil(sets);
    let offset_bits = log2_ceil(line_bytes as u64);
    let tag_bits = address_bits.saturating_sub(set_bits + offset_bits);
    let data_bits = line_bytes as f64 * 8.0;
    TagOverhead {
        line_tag_fraction: tag_bits as f64 / data_bits,
        sector_meta_fraction: 2.0 / data_bits,
    }
}

/// Overhead of the sectored cache: one line tag plus a valid + dirty bit per 8 B sector.
pub fn sectored_overhead(
    address_bits: u32,
    capacity_bytes: u64,
    line_bytes: u32,
    ways: u32,
) -> TagOverhead {
    let base = set_assoc_overhead(address_bits, capacity_bytes, line_bytes, ways);
    let sectors = (line_bytes / 8) as f64;
    TagOverhead {
        line_tag_fraction: base.line_tag_fraction,
        sector_meta_fraction: (2.0 * sectors) / (line_bytes as f64 * 8.0),
    }
}

/// Overhead of Piccolo-cache: a short per-line tag (the address bits above the fg-tag)
/// plus `fg_tag_bits` + valid + dirty per 8 B sector.
pub fn piccolo_overhead(
    address_bits: u32,
    capacity_bytes: u64,
    line_bytes: u32,
    ways: u32,
    fg_tag_bits: u32,
) -> TagOverhead {
    let sets = (capacity_bytes / (line_bytes as u64 * ways as u64)).max(1);
    let set_bits = log2_ceil(sets);
    let offset_bits = log2_ceil(line_bytes as u64);
    let tag_bits = address_bits.saturating_sub(set_bits + offset_bits + fg_tag_bits);
    let data_bits = line_bytes as f64 * 8.0;
    TagOverhead {
        line_tag_fraction: tag_bits as f64 / data_bits,
        sector_meta_fraction: (fg_tag_bits as f64 + 2.0) / 64.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper's example: 4 MiB, 8-way, 48-bit addresses.
    const CAP: u64 = 4 << 20;
    const ADDR: u32 = 48;

    #[test]
    fn eight_byte_line_cache_has_about_45_percent_tag_overhead() {
        let o = set_assoc_overhead(ADDR, CAP, 8, 8);
        // 29-bit tag per 64 data bits = 45.31 %.
        assert!((o.line_tag_fraction - 0.4531).abs() < 0.01, "{o:?}");
    }

    #[test]
    fn conventional_cache_tag_overhead_is_small() {
        let o = set_assoc_overhead(ADDR, CAP, 64, 8);
        assert!(o.line_tag_fraction < 0.06);
    }

    #[test]
    fn piccolo_cache_matches_paper_fractions() {
        let o = piccolo_overhead(ADDR, CAP, 128, 8, 8);
        // 21-bit tag per 1024 data bits = 2.05 %; 8-bit fg-tag per 64 data bits = 12.5 %
        // (plus the valid/dirty bits we also charge).
        assert!((o.line_tag_fraction - 0.0205).abs() < 0.002, "{o:?}");
        assert!((o.sector_meta_fraction - 0.15625).abs() < 0.04, "{o:?}");
        assert!(o.total() < set_assoc_overhead(ADDR, CAP, 8, 8).total() / 2.0);
    }

    #[test]
    fn sectored_cache_overhead_sits_between_conventional_and_piccolo() {
        let sec = sectored_overhead(ADDR, CAP, 64, 8);
        let conv = set_assoc_overhead(ADDR, CAP, 64, 8);
        assert!(sec.total() > conv.total());
        assert!(sec.total() < set_assoc_overhead(ADDR, CAP, 8, 8).total());
    }
}
