//! On-chip cache models and miss-handling architecture for the Piccolo reproduction.
//!
//! This crate implements the on-chip half of Piccolo and of the designs it is compared
//! against in Fig. 11 of the paper:
//!
//! * [`SetAssocCache`] — the conventional 64 B cache, the ideal 8 B-line cache, and
//!   reduced-effective-capacity approximations of Amoeba/Scrabble/Graphfire,
//! * [`SectoredCache`] — the classic sectored design (one tag per line, per-sector valid),
//! * [`PiccoloCache`] — the paper's fg-tag cache with way partitioning (Section V),
//! * [`CollectionMshr`] — the collection-extended MSHR that turns 8 B misses into
//!   in-memory gather/scatter operations (Section V-C),
//! * [`area`] — the tag/metadata overhead model behind Fig. 5's percentages.
//!
//! # Example
//!
//! ```
//! use piccolo_cache::{PiccoloCache, SectorCache};
//!
//! let mut cache = PiccoloCache::with_capacity(64 * 1024);
//! let miss = cache.access(0x1000, 8, false);
//! assert!(!miss.hit);
//! assert!(cache.access(0x1000, 8, false).hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod collection_mshr;
pub mod piccolo;
pub mod sectored;
pub mod setassoc;
pub mod stats;
pub mod traits;

pub use collection_mshr::{CollectionMshr, CollectionMshrStats, ScatterGatherKind};
pub use piccolo::{PiccoloCache, PiccoloCacheConfig};
pub use sectored::SectoredCache;
pub use setassoc::SetAssocCache;
pub use stats::CacheStats;
pub use traits::{AccessResult, MissAction, ReplacementPolicy, SectorCache};

#[cfg(test)]
mod send_audit {
    //! Parallel sweeps (`piccolo::sweep`) ship per-run simulation state — including the
    //! boxed cache models inside the accelerator's memory path — to worker threads.
    //! These assertions fail to compile if a cache model grows shared mutability
    //! (`Rc`, `RefCell`, raw pointers) instead of per-run ownership.
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn every_cache_model_is_send() {
        assert_send::<SetAssocCache>();
        assert_send::<SectoredCache>();
        assert_send::<PiccoloCache>();
        assert_send::<CollectionMshr>();
        assert_send::<CacheStats>();
        assert_send::<Box<dyn SectorCache>>();
    }
}
