//! The interface every on-chip vertex-cache model implements.
//!
//! Caches operate on fine-grained accesses (typically 8 B vertex properties). They do not
//! talk to DRAM directly: a miss produces [`MissAction`]s (fills and writebacks) that the
//! accelerator's memory path translates into conventional 64 B bursts, or — for Piccolo
//! and NMP — feeds into the collection-extended MSHR to become in-memory scatter/gather
//! operations. This split mirrors Fig. 7 of the paper and lets Fig. 11 evaluate every
//! cache design "on top of Piccolo-FIM".

use crate::stats::CacheStats;

/// What a cache needs from the memory system after an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissAction {
    /// Bring `bytes` at `addr` on chip; only `useful` of them were actually requested by
    /// the program (the rest is over-fetch, counted as "unuseful" in Fig. 3).
    Fill {
        /// Byte address of the fill (aligned to the fill granularity).
        addr: u64,
        /// Total bytes to fetch.
        bytes: u32,
        /// Bytes of the fetch the program asked for.
        useful: u32,
    },
    /// Write `bytes` of dirty data at `addr` back to memory.
    Writeback {
        /// Byte address of the writeback.
        addr: u64,
        /// Bytes to write back.
        bytes: u32,
    },
}

impl MissAction {
    /// Returns the address of the action.
    pub fn addr(&self) -> u64 {
        match self {
            MissAction::Fill { addr, .. } | MissAction::Writeback { addr, .. } => *addr,
        }
    }

    /// Returns `true` for fills.
    pub fn is_fill(&self) -> bool {
        matches!(self, MissAction::Fill { .. })
    }
}

/// Outcome of one cache access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the requested bytes were already on chip.
    pub hit: bool,
    /// Fills/writebacks the memory path must perform.
    pub actions: Vec<MissAction>,
}

impl AccessResult {
    /// A plain hit with no memory actions.
    pub fn hit() -> Self {
        Self {
            hit: true,
            actions: Vec::new(),
        }
    }
}

/// Replacement policies evaluated for Piccolo-cache (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Least recently used.
    Lru,
    /// Re-reference interval prediction (2-bit RRPV).
    Rrip,
}

/// The interface shared by every cache model in this crate.
///
/// `Send` is a supertrait: parallel design-space sweeps (`piccolo::sweep`) execute one
/// simulation per worker thread, so every cache model — including boxed trait objects
/// inside the accelerator's memory path — must be shippable to a worker. All models are
/// plain owned data, so this costs nothing; it exists to keep it that way.
pub trait SectorCache: Send {
    /// Accesses `bytes` bytes at `addr`. `write == true` marks the data dirty.
    fn access(&mut self, addr: u64, bytes: u32, write: bool) -> AccessResult;

    /// Writes back all dirty data and invalidates the cache (used between tiles or at the
    /// end of a run).
    fn flush(&mut self) -> Vec<MissAction>;

    /// Informs the cache that a new tile begins, with `distinct_tags` distinct cache-line
    /// tags covering the tile's destination range (Piccolo-cache uses this for way
    /// partitioning; other designs ignore it).
    fn begin_tile(&mut self, distinct_tags: u32) {
        let _ = distinct_tags;
    }

    /// Accumulated statistics.
    fn stats(&self) -> &CacheStats;

    /// Human-readable design name (used in reports).
    fn name(&self) -> &'static str;

    /// Total data capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Bytes of address space covered by one line tag (relevant to way partitioning:
    /// a tile spanning `N x tag_coverage_bytes()` contains `N` distinct tags). Designs
    /// without a split tag return `u64::MAX` so a tile always maps to one "tag".
    fn tag_coverage_bytes(&self) -> u64 {
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_action_accessors() {
        let f = MissAction::Fill {
            addr: 64,
            bytes: 64,
            useful: 8,
        };
        assert!(f.is_fill());
        assert_eq!(f.addr(), 64);
        let w = MissAction::Writeback { addr: 8, bytes: 8 };
        assert!(!w.is_fill());
        assert_eq!(w.addr(), 8);
        assert!(AccessResult::hit().hit);
    }
}
