//! Generic set-associative cache with a configurable line size.
//!
//! This single implementation backs several of the designs compared in Fig. 11:
//!
//! * the **conventional 64 B cache** used by the GraphDyns (Cache) baseline,
//! * the **8 B-line cache** (the performance-ideal, tag-heavy design of Fig. 5a),
//! * approximations of **Amoeba-cache**, **Scrabble-cache** and **Graphfire**: all three
//!   manage data at fine granularity like the 8 B-line cache but store additional
//!   metadata in or next to the data array, which we model as a reduced effective
//!   capacity (the paper's own explanation of why they fall short: "they store the
//!   metadata along with the cache data, resulting in lower effective cache capacity").
//!   The exact metadata factors are documented per constructor and in `DESIGN.md`.

use crate::stats::CacheStats;
use crate::traits::{AccessResult, MissAction, SectorCache};

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    dirty: bool,
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    name: &'static str,
    line_bytes: u32,
    ways: u32,
    sets: u64,
    lines: Vec<Line>,
    lru_clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache with an arbitrary line size. `capacity_bytes` is the *effective*
    /// data capacity after any metadata overhead has been subtracted.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one line per way or the line size is 0.
    pub fn new(name: &'static str, capacity_bytes: u64, line_bytes: u32, ways: u32) -> Self {
        assert!(
            line_bytes > 0 && ways > 0,
            "line size and ways must be positive"
        );
        let sets = (capacity_bytes / (line_bytes as u64 * ways as u64)).max(1);
        Self {
            name,
            line_bytes,
            ways,
            sets,
            lines: vec![Line::default(); (sets * ways as u64) as usize],
            lru_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Conventional 64 B-line cache (the baseline design).
    pub fn conventional(capacity_bytes: u64, ways: u32) -> Self {
        Self::new("Conventional64B", capacity_bytes, 64, ways)
    }

    /// 8 B-line cache: every sector has its own full tag (Fig. 5a). Performance-ideal but
    /// with ~45 % tag overhead (see [`crate::area`]).
    pub fn line8(capacity_bytes: u64, ways: u32) -> Self {
        Self::new("8B-Line", capacity_bytes, 8, ways)
    }

    /// Amoeba-cache approximation: fine-grained blocks with in-array metadata; we charge
    /// 30 % of the data capacity for the region tags/bitmaps.
    pub fn amoeba(capacity_bytes: u64, ways: u32) -> Self {
        Self::new("Amoeba", capacity_bytes * 70 / 100, 8, ways)
    }

    /// Scrabble-cache approximation: merged fine-grained blocks; metadata cost is small
    /// (5 %) but comparator/design complexity is high (captured in the area model).
    pub fn scrabble(capacity_bytes: u64, ways: u32) -> Self {
        Self::new("Scrabble", capacity_bytes * 95 / 100, 8, ways)
    }

    /// Graphfire approximation: graph-tailored fetch/insertion/replacement with per-line
    /// metadata; we charge 22 % of the capacity.
    pub fn graphfire(capacity_bytes: u64, ways: u32) -> Self {
        Self::new("Graphfire", capacity_bytes * 78 / 100, 8, ways)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    fn set_of(&self, line_addr: u64) -> u64 {
        line_addr % self.sets
    }

    fn tag_of(&self, line_addr: u64) -> u64 {
        line_addr / self.sets
    }

    fn set_slice_mut(&mut self, set: u64) -> &mut [Line] {
        let start = (set * self.ways as u64) as usize;
        &mut self.lines[start..start + self.ways as usize]
    }
}

impl SectorCache for SetAssocCache {
    fn access(&mut self, addr: u64, bytes: u32, write: bool) -> AccessResult {
        self.stats.accesses += 1;
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let line_bytes = self.line_bytes as u64;
        let line_addr = addr / line_bytes;
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        let sets = self.sets;
        let ways = self.ways;
        let requested = bytes.min(self.line_bytes);
        let line_size = self.line_bytes;

        let _ = ways;
        {
            let set_lines = self.set_slice_mut(set);
            // Hit path.
            if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
                line.lru = clock;
                line.dirty |= write;
                self.stats.hits += 1;
                return AccessResult::hit();
            }
        }

        // Miss: choose an invalid way, else the LRU way.
        let mut actions = Vec::with_capacity(2);
        let mut line_evictions = 0;
        let mut writeback_bytes = 0;
        {
            let set_lines = self.set_slice_mut(set);
            let victim_idx = set_lines
                .iter()
                .enumerate()
                .find(|(_, l)| !l.valid)
                .map(|(i, _)| i)
                .unwrap_or_else(|| {
                    set_lines
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.lru)
                        .map(|(i, _)| i)
                        .expect("at least one way")
                });
            let victim = &mut set_lines[victim_idx];
            if victim.valid {
                line_evictions += 1;
                if victim.dirty {
                    let victim_addr = (victim.tag * sets + set) * line_bytes;
                    actions.push(MissAction::Writeback {
                        addr: victim_addr,
                        bytes: line_size,
                    });
                    writeback_bytes += line_bytes;
                }
            }
            *victim = Line {
                valid: true,
                tag,
                dirty: write,
                lru: clock,
            };
        }
        actions.push(MissAction::Fill {
            addr: line_addr * line_bytes,
            bytes: line_size,
            useful: requested,
        });
        self.stats.misses += 1;
        self.stats.line_evictions += line_evictions;
        self.stats.writeback_bytes += writeback_bytes;
        self.stats.fill_bytes += line_bytes;
        AccessResult {
            hit: false,
            actions,
        }
    }

    fn flush(&mut self) -> Vec<MissAction> {
        let mut actions = Vec::new();
        let line_bytes = self.line_bytes as u64;
        let sets = self.sets;
        for set in 0..sets {
            for way in 0..self.ways as u64 {
                let idx = (set * self.ways as u64 + way) as usize;
                let line = &mut self.lines[idx];
                if line.valid && line.dirty {
                    actions.push(MissAction::Writeback {
                        addr: (line.tag * sets + set) * line_bytes,
                        bytes: line_bytes as u32,
                    });
                    self.stats.writeback_bytes += line_bytes;
                }
                *line = Line::default();
            }
        }
        actions
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn capacity_bytes(&self) -> u64 {
        self.sets * self.ways as u64 * self.line_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_to_same_line_hits() {
        let mut c = SetAssocCache::conventional(1024, 4);
        let first = c.access(100, 8, false);
        assert!(!first.hit);
        assert!(matches!(
            first.actions[0],
            MissAction::Fill {
                bytes: 64,
                useful: 8,
                ..
            }
        ));
        let second = c.access(96, 8, true);
        assert!(second.hit, "same 64B line should hit");
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eight_byte_lines_do_not_share() {
        let mut c = SetAssocCache::line8(1024, 4);
        c.access(0, 8, false);
        let r = c.access(8, 8, false);
        assert!(
            !r.hit,
            "adjacent 8B words are different lines in an 8B-line cache"
        );
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        // Direct-mapped 2-set cache with 64B lines: addresses 0 and 128 collide.
        let mut c = SetAssocCache::new("test", 128, 64, 1);
        assert_eq!(c.sets(), 2);
        c.access(0, 8, true);
        let r = c.access(128, 8, false);
        assert!(!r.hit);
        assert!(r
            .actions
            .iter()
            .any(|a| matches!(a, MissAction::Writeback { addr: 0, bytes: 64 })));
        assert_eq!(c.stats().line_evictions, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = SetAssocCache::new("test", 128, 64, 2); // 1 set, 2 ways of 64 B
        assert_eq!(c.sets(), 1);
        c.access(0, 8, false); // A
        c.access(64, 8, false); // B
        c.access(0, 8, false); // touch A so B is LRU
        let r = c.access(128, 8, false); // C evicts B
        assert!(!r.hit);
        assert!(c.access(0, 8, false).hit, "A must still be resident");
    }

    #[test]
    fn flush_writes_back_dirty_lines_and_invalidates() {
        let mut c = SetAssocCache::conventional(4096, 8);
        c.access(0, 8, true);
        c.access(64, 8, false);
        let wb = c.flush();
        assert_eq!(wb.len(), 1);
        assert!(!c.access(0, 8, false).hit, "flush must invalidate");
    }

    #[test]
    fn metadata_variants_have_reduced_capacity() {
        let full = SetAssocCache::line8(1 << 20, 8).capacity_bytes();
        assert!(SetAssocCache::amoeba(1 << 20, 8).capacity_bytes() < full);
        assert!(SetAssocCache::graphfire(1 << 20, 8).capacity_bytes() < full);
        assert!(SetAssocCache::scrabble(1 << 20, 8).capacity_bytes() <= full);
        assert_eq!(
            SetAssocCache::conventional(1 << 20, 8).name(),
            "Conventional64B"
        );
    }
}
