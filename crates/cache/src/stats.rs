//! Cache statistics.

/// Counters accumulated by every cache model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit on chip.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Whole cache lines evicted.
    pub line_evictions: u64,
    /// Individual sectors evicted (fine-grained designs only).
    pub sector_evictions: u64,
    /// Dirty bytes written back to memory.
    pub writeback_bytes: u64,
    /// Bytes fetched from memory by fills.
    pub fill_bytes: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.line_evictions += other.line_evictions;
        self.sector_evictions += other.sector_evictions;
        self.writeback_bytes += other.writeback_bytes;
        self.fill_bytes += other.fill_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_merge() {
        let mut a = CacheStats {
            accesses: 10,
            hits: 7,
            misses: 3,
            ..Default::default()
        };
        assert!((a.hit_rate() - 0.7).abs() < 1e-12);
        let b = CacheStats {
            accesses: 10,
            hits: 3,
            misses: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 20);
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
