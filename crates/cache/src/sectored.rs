//! Sectored cache (Liptay-style), one of the alternatives Piccolo-cache is compared
//! against in Fig. 5/6/11.
//!
//! A sectored cache keeps one address tag per (64 B) line but validity/dirtiness per 8 B
//! sector, so it can fetch at sector granularity. Its weakness — the reason it loses to
//! Piccolo-cache — is that a *new tag* still allocates an entire line even if only one
//! sector will ever be used, wasting capacity on sparse random accesses (Section V-B).

use crate::stats::CacheStats;
use crate::traits::{AccessResult, MissAction, SectorCache};

const SECTOR_BYTES: u32 = 8;

#[derive(Debug, Clone)]
struct Line {
    valid: bool,
    tag: u64,
    lru: u64,
    sector_valid: Vec<bool>,
    sector_dirty: Vec<bool>,
}

impl Line {
    fn empty(sectors: usize) -> Self {
        Self {
            valid: false,
            tag: 0,
            lru: 0,
            sector_valid: vec![false; sectors],
            sector_dirty: vec![false; sectors],
        }
    }
}

/// Sectored cache: per-line tag, per-sector valid/dirty.
#[derive(Debug, Clone)]
pub struct SectoredCache {
    line_bytes: u32,
    sectors_per_line: u32,
    ways: u32,
    sets: u64,
    lines: Vec<Line>,
    lru_clock: u64,
    stats: CacheStats,
}

impl SectoredCache {
    /// Creates a sectored cache with 64 B lines of 8 B sectors.
    pub fn new(capacity_bytes: u64, ways: u32) -> Self {
        Self::with_line_size(capacity_bytes, 64, ways)
    }

    /// Creates a sectored cache with an explicit line size (must be a multiple of 8).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a positive multiple of 8 or `ways == 0`.
    pub fn with_line_size(capacity_bytes: u64, line_bytes: u32, ways: u32) -> Self {
        assert!(
            line_bytes >= 8 && line_bytes.is_multiple_of(8),
            "line must be a multiple of 8 B"
        );
        assert!(ways > 0, "ways must be positive");
        let sets = (capacity_bytes / (line_bytes as u64 * ways as u64)).max(1);
        let sectors_per_line = line_bytes / SECTOR_BYTES;
        Self {
            line_bytes,
            sectors_per_line,
            ways,
            sets,
            lines: vec![Line::empty(sectors_per_line as usize); (sets * ways as u64) as usize],
            lru_clock: 0,
            stats: CacheStats::default(),
        }
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr / self.line_bytes as u64
    }

    fn sector_of(&self, addr: u64) -> usize {
        ((addr % self.line_bytes as u64) / SECTOR_BYTES as u64) as usize
    }

    fn evict_line(
        line: &mut Line,
        line_base_addr: u64,
        stats: &mut CacheStats,
        actions: &mut Vec<MissAction>,
    ) {
        for (i, (&valid, &dirty)) in line
            .sector_valid
            .iter()
            .zip(line.sector_dirty.iter())
            .enumerate()
        {
            if valid && dirty {
                actions.push(MissAction::Writeback {
                    addr: line_base_addr + (i as u64) * SECTOR_BYTES as u64,
                    bytes: SECTOR_BYTES,
                });
                stats.writeback_bytes += SECTOR_BYTES as u64;
            }
        }
        stats.line_evictions += 1;
    }
}

impl SectorCache for SectoredCache {
    fn access(&mut self, addr: u64, bytes: u32, write: bool) -> AccessResult {
        self.stats.accesses += 1;
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let line_addr = self.line_addr(addr);
        let set = line_addr % self.sets;
        let tag = line_addr / self.sets;
        let sector = self.sector_of(addr);
        let sets = self.sets;
        let line_bytes = self.line_bytes as u64;
        let requested = bytes.min(SECTOR_BYTES);

        let start = (set * self.ways as u64) as usize;
        let ways = self.ways as usize;
        let set_lines = &mut self.lines[start..start + ways];

        // Tag match?
        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = clock;
            if line.sector_valid[sector] {
                line.sector_dirty[sector] |= write;
                self.stats.hits += 1;
                return AccessResult::hit();
            }
            // Sector miss within a present line: fetch just the sector.
            self.stats.misses += 1;
            line.sector_valid[sector] = true;
            line.sector_dirty[sector] = write;
            self.stats.fill_bytes += SECTOR_BYTES as u64;
            return AccessResult {
                hit: false,
                actions: vec![MissAction::Fill {
                    addr: addr & !(SECTOR_BYTES as u64 - 1),
                    bytes: SECTOR_BYTES,
                    useful: requested,
                }],
            };
        }

        // Line miss: allocate a whole line for this single sector (the sectored cache's
        // fundamental inefficiency).
        self.stats.misses += 1;
        let victim_idx = set_lines
            .iter()
            .enumerate()
            .find(|(_, l)| !l.valid)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                set_lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(i, _)| i)
                    .expect("at least one way")
            });
        let mut actions = Vec::new();
        let victim = &mut set_lines[victim_idx];
        if victim.valid {
            let base = (victim.tag * sets + set) * line_bytes;
            Self::evict_line(victim, base, &mut self.stats, &mut actions);
        }
        victim.valid = true;
        victim.tag = tag;
        victim.lru = clock;
        victim.sector_valid.iter_mut().for_each(|v| *v = false);
        victim.sector_dirty.iter_mut().for_each(|v| *v = false);
        victim.sector_valid[sector] = true;
        victim.sector_dirty[sector] = write;
        self.stats.fill_bytes += SECTOR_BYTES as u64;
        actions.push(MissAction::Fill {
            addr: addr & !(SECTOR_BYTES as u64 - 1),
            bytes: SECTOR_BYTES,
            useful: requested,
        });
        AccessResult {
            hit: false,
            actions,
        }
    }

    fn flush(&mut self) -> Vec<MissAction> {
        let mut actions = Vec::new();
        let sets = self.sets;
        let line_bytes = self.line_bytes as u64;
        let ways = self.ways as u64;
        for set in 0..sets {
            for way in 0..ways {
                let idx = (set * ways + way) as usize;
                let line = &mut self.lines[idx];
                if line.valid {
                    let base = (line.tag * sets + set) * line_bytes;
                    for (i, (&v, &d)) in line
                        .sector_valid
                        .iter()
                        .zip(line.sector_dirty.iter())
                        .enumerate()
                    {
                        if v && d {
                            actions.push(MissAction::Writeback {
                                addr: base + i as u64 * SECTOR_BYTES as u64,
                                bytes: SECTOR_BYTES,
                            });
                            self.stats.writeback_bytes += SECTOR_BYTES as u64;
                        }
                    }
                }
                *line = Line::empty(self.sectors_per_line as usize);
            }
        }
        actions
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "Sectored"
    }

    fn capacity_bytes(&self) -> u64 {
        self.sets * self.ways as u64 * self.line_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_fills_are_fine_grained() {
        let mut c = SectoredCache::new(1024, 4);
        let r = c.access(0, 8, false);
        assert!(!r.hit);
        assert!(matches!(r.actions[0], MissAction::Fill { bytes: 8, .. }));
        // A different sector of the same line: still a miss, but no line eviction.
        let r2 = c.access(8, 8, false);
        assert!(!r2.hit);
        assert_eq!(c.stats().line_evictions, 0);
        // Now both sectors hit.
        assert!(c.access(0, 8, false).hit);
        assert!(c.access(8, 8, false).hit);
    }

    #[test]
    fn new_tag_evicts_entire_line() {
        // 1 set, 1 way of 64 B: two different line tags collide.
        let mut c = SectoredCache::with_line_size(64, 64, 1);
        c.access(0, 8, true);
        c.access(8, 8, true);
        let r = c.access(64, 8, false);
        assert!(!r.hit);
        // Both dirty sectors of the evicted line are written back.
        let wbs = r.actions.iter().filter(|a| !a.is_fill()).count();
        assert_eq!(wbs, 2);
        assert_eq!(c.stats().line_evictions, 1);
    }

    #[test]
    fn flush_invalidates_and_writes_back() {
        let mut c = SectoredCache::new(512, 2);
        c.access(16, 8, true);
        let wb = c.flush();
        assert_eq!(wb.len(), 1);
        assert!(!c.access(16, 8, false).hit);
    }
}
