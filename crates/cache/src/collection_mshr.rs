//! Collection-extended MSHR (Section V-C, Fig. 7).
//!
//! The collection-extended MSHR turns fine-grained cache misses into Piccolo-FIM
//! operations. It is indexed by DRAM row address; half of its entries collect read misses
//! (GA-MSHR — gathers) and half collect write-backs (SC-MSHR — scatters). When an entry
//! accumulates `items_per_op` column offsets (eight for DDR4), the corresponding
//! gather/scatter request is emitted. Entries evicted to make room emit a partially
//! filled operation. Reads that hit a pending scatter entry are served from the
//! write-back data without touching memory (the controller flow on the right of Fig. 7).

use crate::stats::CacheStats;
use piccolo_dram::{MemRequest, Region, RowId};
use std::collections::BTreeMap;

/// Statistics specific to the collection-extended MSHR.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectionMshrStats {
    /// Read misses pushed into GA-MSHR.
    pub read_pushes: u64,
    /// Write-backs pushed into SC-MSHR.
    pub write_pushes: u64,
    /// Reads served directly from pending write-back data (SC-MSHR hits).
    pub forwarded_from_writeback: u64,
    /// Reads merged into an existing pending gather (GA-MSHR subentry hits).
    pub merged_reads: u64,
    /// Full (8-offset) operations emitted.
    pub full_ops: u64,
    /// Partially filled operations emitted due to capacity eviction or draining.
    pub partial_ops: u64,
}

/// Whether an emitted memory operation should use the Piccolo-FIM path or the NMP
/// (buffer-chip) path. The MSHR logic is identical; only the request type differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterGatherKind {
    /// Emit [`MemRequest::GatherFim`] / [`MemRequest::ScatterFim`].
    Fim,
    /// Emit [`MemRequest::GatherNmp`] / [`MemRequest::ScatterNmp`].
    Nmp,
}

#[derive(Debug, Clone, Default)]
struct Entry {
    offsets: Vec<u16>,
    /// Insertion order used as an LRU proxy for capacity eviction.
    stamp: u64,
}

/// The collection-extended MSHR.
#[derive(Debug, Clone)]
pub struct CollectionMshr {
    kind: ScatterGatherKind,
    region: Region,
    items_per_op: u32,
    capacity_entries: usize,
    gather: BTreeMap<RowId, Entry>,
    scatter: BTreeMap<RowId, Entry>,
    clock: u64,
    stats: CollectionMshrStats,
}

impl CollectionMshr {
    /// Creates a collection-extended MSHR.
    ///
    /// `capacity_entries` is the total number of row entries (split evenly between the
    /// gather and scatter halves, following the 16-entry buffer of Fig. 7 scaled to the
    /// 4 K entries used in the evaluation). `items_per_op` is how many offsets trigger an
    /// operation (8 for DDR4).
    pub fn new(
        kind: ScatterGatherKind,
        region: Region,
        capacity_entries: usize,
        items_per_op: u32,
    ) -> Self {
        Self {
            kind,
            region,
            items_per_op: items_per_op.max(1),
            capacity_entries: capacity_entries.max(2),
            gather: BTreeMap::new(),
            scatter: BTreeMap::new(),
            clock: 0,
            stats: CollectionMshrStats::default(),
        }
    }

    /// Statistics.
    pub fn stats(&self) -> &CollectionMshrStats {
        &self.stats
    }

    /// Number of row entries currently occupied (both halves).
    pub fn occupancy(&self) -> usize {
        self.gather.len() + self.scatter.len()
    }

    fn make_request(&self, row: RowId, offsets: Vec<u16>, is_scatter: bool) -> MemRequest {
        match (self.kind, is_scatter) {
            (ScatterGatherKind::Fim, false) => MemRequest::GatherFim {
                row,
                offsets,
                region: self.region,
            },
            (ScatterGatherKind::Fim, true) => MemRequest::ScatterFim {
                row,
                offsets,
                region: self.region,
            },
            (ScatterGatherKind::Nmp, false) => MemRequest::GatherNmp {
                row,
                offsets,
                region: self.region,
            },
            (ScatterGatherKind::Nmp, true) => MemRequest::ScatterNmp {
                row,
                offsets,
                region: self.region,
            },
        }
    }

    /// Evicts the oldest entry of the fuller half if the MSHR is over capacity, emitting a
    /// partially filled operation.
    fn evict_if_needed(&mut self, out: &mut Vec<MemRequest>) {
        while self.gather.len() + self.scatter.len() > self.capacity_entries {
            let from_gather = self.gather.len() >= self.scatter.len();
            let map = if from_gather {
                &mut self.gather
            } else {
                &mut self.scatter
            };
            if let Some((&row, _)) = map.iter().min_by_key(|(_, e)| e.stamp) {
                let entry = map.remove(&row).expect("entry exists");
                self.stats.partial_ops += 1;
                out.push(self.make_request(row, entry.offsets, !from_gather));
            } else {
                break;
            }
        }
    }

    /// Registers a read miss for `offset` (8-byte word index) in `row`. Returns any memory
    /// requests that became ready (a full gather, or evictions).
    pub fn push_read(&mut self, row: RowId, offset: u16) -> Vec<MemRequest> {
        self.clock += 1;
        self.stats.read_pushes += 1;
        let mut out = Vec::new();

        // Controller flow (Fig. 7): a read whose column offset is pending in SC-MSHR is
        // served by the write-back data.
        if let Some(entry) = self.scatter.get(&row) {
            if entry.offsets.contains(&offset) {
                self.stats.forwarded_from_writeback += 1;
                return out;
            }
        }
        // A read already pending in GA-MSHR just adds a subentry.
        if let Some(entry) = self.gather.get(&row) {
            if entry.offsets.contains(&offset) {
                self.stats.merged_reads += 1;
                return out;
            }
        }

        let clock = self.clock;
        let entry = self.gather.entry(row).or_insert_with(|| Entry {
            offsets: Vec::with_capacity(8),
            stamp: clock,
        });
        entry.offsets.push(offset);
        if entry.offsets.len() >= self.items_per_op as usize {
            let entry = self.gather.remove(&row).expect("entry exists");
            self.stats.full_ops += 1;
            out.push(self.make_request(row, entry.offsets, false));
        }
        self.evict_if_needed(&mut out);
        out
    }

    /// Registers a write-back of `offset` in `row`. Returns any memory requests that
    /// became ready (a full scatter, or evictions).
    pub fn push_write(&mut self, row: RowId, offset: u16) -> Vec<MemRequest> {
        self.clock += 1;
        self.stats.write_pushes += 1;
        let mut out = Vec::new();

        let clock = self.clock;
        let entry = self.scatter.entry(row).or_insert_with(|| Entry {
            offsets: Vec::with_capacity(8),
            stamp: clock,
        });
        if !entry.offsets.contains(&offset) {
            entry.offsets.push(offset);
        }
        if entry.offsets.len() >= self.items_per_op as usize {
            let entry = self.scatter.remove(&row).expect("entry exists");
            self.stats.full_ops += 1;
            out.push(self.make_request(row, entry.offsets, true));
        }
        self.evict_if_needed(&mut out);
        out
    }

    /// Drains every pending entry (end of a tile/iteration), emitting partially filled
    /// operations.
    pub fn drain(&mut self) -> Vec<MemRequest> {
        let mut out = Vec::new();
        let mut gathers: Vec<(RowId, Entry)> =
            std::mem::take(&mut self.gather).into_iter().collect();
        gathers.sort_by_key(|(_, e)| e.stamp);
        for (row, entry) in gathers {
            self.stats.partial_ops += 1;
            out.push(self.make_request(row, entry.offsets, false));
        }
        let mut scatters: Vec<(RowId, Entry)> =
            std::mem::take(&mut self.scatter).into_iter().collect();
        scatters.sort_by_key(|(_, e)| e.stamp);
        for (row, entry) in scatters {
            self.stats.partial_ops += 1;
            out.push(self.make_request(row, entry.offsets, true));
        }
        out
    }

    /// Converts the MSHR statistics into generic cache statistics (for reporting).
    pub fn as_cache_stats(&self) -> CacheStats {
        CacheStats {
            accesses: self.stats.read_pushes + self.stats.write_pushes,
            hits: self.stats.forwarded_from_writeback + self.stats.merged_reads,
            misses: self.stats.read_pushes + self.stats.write_pushes
                - self.stats.forwarded_from_writeback
                - self.stats.merged_reads,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mshr(cap: usize) -> CollectionMshr {
        CollectionMshr::new(ScatterGatherKind::Fim, Region::PropertyRandom, cap, 8)
    }

    #[test]
    fn eight_reads_in_one_row_emit_one_gather() {
        let mut m = mshr(64);
        let row = RowId(7);
        let mut emitted = Vec::new();
        for off in 0..8u16 {
            emitted.extend(m.push_read(row, off));
        }
        assert_eq!(emitted.len(), 1);
        match &emitted[0] {
            MemRequest::GatherFim {
                row: r, offsets, ..
            } => {
                assert_eq!(*r, row);
                assert_eq!(offsets.len(), 8);
            }
            other => panic!("unexpected request {other:?}"),
        }
        assert_eq!(m.stats().full_ops, 1);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn duplicate_read_offsets_merge() {
        let mut m = mshr(64);
        let row = RowId(1);
        assert!(m.push_read(row, 3).is_empty());
        assert!(m.push_read(row, 3).is_empty());
        assert_eq!(m.stats().merged_reads, 1);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn read_hitting_pending_writeback_is_forwarded() {
        let mut m = mshr(64);
        let row = RowId(2);
        m.push_write(row, 5);
        let out = m.push_read(row, 5);
        assert!(out.is_empty());
        assert_eq!(m.stats().forwarded_from_writeback, 1);
    }

    #[test]
    fn capacity_eviction_emits_partial_op() {
        let mut m = mshr(2);
        let mut out = Vec::new();
        out.extend(m.push_read(RowId(1), 0));
        out.extend(m.push_read(RowId(2), 0));
        out.extend(m.push_read(RowId(3), 0));
        assert_eq!(out.len(), 1, "third row evicts the oldest entry");
        assert_eq!(m.stats().partial_ops, 1);
        assert!(m.occupancy() <= 2);
    }

    #[test]
    fn drain_flushes_everything_in_insertion_order() {
        let mut m = mshr(64);
        m.push_read(RowId(10), 1);
        m.push_read(RowId(11), 2);
        m.push_write(RowId(12), 3);
        let out = m.drain();
        assert_eq!(out.len(), 3);
        assert_eq!(m.occupancy(), 0);
        assert!(matches!(
            out[0],
            MemRequest::GatherFim { row: RowId(10), .. }
        ));
        assert!(matches!(
            out[2],
            MemRequest::ScatterFim { row: RowId(12), .. }
        ));
    }

    #[test]
    fn nmp_kind_emits_nmp_requests() {
        let mut m = CollectionMshr::new(ScatterGatherKind::Nmp, Region::PropertyRandom, 16, 4);
        let mut out = Vec::new();
        for off in 0..4u16 {
            out.extend(m.push_write(RowId(9), off));
        }
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], MemRequest::ScatterNmp { .. }));
        let cs = m.as_cache_stats();
        assert_eq!(cs.accesses, 4);
    }
}
