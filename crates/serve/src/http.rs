//! A minimal HTTP/1.1 GET surface on the coordinator's port.
//!
//! The accept loop sniffs each connection's first bytes: `GET ` means HTTP,
//! anything else is a protocol worker. Four routes, all read-only:
//!
//! | route | body | notes |
//! |---|---|---|
//! | `/results.json` | the merged results document | `503` until the campaign completes |
//! | `/BENCH.json` | the derived bench document | `503` until the campaign completes |
//! | `/status` | integer-only progress counters | always available |
//! | `/events` | live `piccolo-events/v1` stream | checksummed lines until the client hangs up |
//!
//! `/events` attaches a bounded [`RelaySink`] to the coordinator's own event
//! dispatcher for the life of the connection, so a curl sees exactly what an
//! `--events` file would record from that moment on — schema header line
//! first, then one checksummed line per event. A slow client drops its own
//! oldest lines; it never blocks the coordinator.
//!
//! This is deliberately not a general HTTP server: GET only, no keep-alive,
//! no request bodies, headers capped at 8 KiB.

use crate::coordinator::{self, Shared as SharedState};
use piccolo_obs as obs;
use piccolo_obs::linecodec;
use piccolo_obs::sink::RelaySink;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Longest request head (request line + headers) we will read.
const MAX_HEAD: usize = 8 * 1024;
/// How many undrained lines an `/events` client may lag before losing oldest.
const EVENTS_RELAY_CAP: usize = 4096;
/// Drain cadence for `/events`.
const EVENTS_TICK: Duration = Duration::from_millis(150);

fn write_response(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()));
}

fn not_ready(stream: &mut TcpStream) {
    write_response(
        stream,
        "503 Service Unavailable",
        "application/json",
        "{\"error\":\"campaign not complete\"}\n",
    );
}

/// Reads the request head and returns the GET path, or `None` for anything
/// malformed, non-GET, or oversized.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut reader = BufReader::new(Read::take(&mut *stream, MAX_HEAD as u64));
    let mut request_line = String::new();
    reader.read_line(&mut request_line).ok()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Drain the headers so the client sees a clean response, not a reset.
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).ok()?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    Some(path.to_string())
}

/// Serves one HTTP connection. `stream`'s first bytes are known to be `GET `.
pub(crate) fn handle(mut stream: TcpStream, shared: &Arc<SharedState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let Some(path) = read_request_path(&mut stream) else {
        write_response(&mut stream, "400 Bad Request", "text/plain", "GET only\n");
        return;
    };
    match path.as_str() {
        "/results.json" => match coordinator::finalized_docs(shared) {
            Some((results, _)) => {
                write_response(&mut stream, "200 OK", "application/json", &results);
            }
            None => not_ready(&mut stream),
        },
        "/BENCH.json" => match coordinator::finalized_docs(shared) {
            Some((_, bench)) => {
                write_response(&mut stream, "200 OK", "application/json", &bench);
            }
            None => not_ready(&mut stream),
        },
        "/status" => {
            let mut body = coordinator::status_doc(shared);
            body.push('\n');
            write_response(&mut stream, "200 OK", "application/json", &body);
        }
        "/events" => stream_events(stream, shared),
        _ => {
            write_response(&mut stream, "404 Not Found", "text/plain", "not found\n");
        }
    }
}

/// Streams live events until the client disconnects (or the coordinator shuts
/// down). No `Content-Length`: the stream ends when the connection closes.
fn stream_events(mut stream: TcpStream, shared: &Arc<SharedState>) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/jsonl\r\nConnection: close\r\n\r\n";
    let mut header_line =
        linecodec::encode_line(&format!(r#"{{"schema":"{}"}}"#, obs::EVENTS_SCHEMA));
    header_line.push('\n');
    if stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(header_line.as_bytes()))
        .is_err()
    {
        return;
    }
    let relay = Arc::new(RelaySink::new(EVENTS_RELAY_CAP));
    let sink_id = obs::add_sink(Arc::clone(&relay) as Arc<dyn obs::sink::Sink>);
    loop {
        std::thread::sleep(EVENTS_TICK);
        let mut batch = String::new();
        for payload in relay.drain() {
            batch.push_str(&linecodec::encode_line(&payload));
            batch.push('\n');
        }
        // An empty write still probes liveness poorly, so only write when
        // there is something to say; a dead client is detected on the next
        // non-empty batch.
        if !batch.is_empty() && stream.write_all(batch.as_bytes()).is_err() {
            break;
        }
        if coordinator::is_shutting_down(shared) {
            let _ = stream.flush();
            break;
        }
    }
    obs::remove_sink(sink_id);
}
