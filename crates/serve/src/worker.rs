//! The worker: connects to a coordinator, rebuilds the campaign plan from the
//! wire options, and executes leases until told `done`.
//!
//! The worker owns all the heavy machinery — graph builds, the simulator, the
//! figure sweeps — while the coordinator owns only the grid. The handshake
//! pins determinism end to end: the coordinator sends its [`CommonOpts`] wire
//! object, the worker rebuilds the campaign *independently* and answers with
//! its own plan hash, and a mismatch (different binary, different dataset
//! files behind the same `--external` paths) is rejected before any unit runs.
//!
//! Inside a lease, units stream back the moment each completes — the
//! [`PlannedCampaign::execute_units`] per-unit hook sends a `result` frame
//! under the write lock — so a worker killed mid-lease loses only its
//! unfinished units, never completed ones.
//!
//! A background heartbeat thread keeps the lease deadlines alive during long
//! graph builds and relays this worker's own event stream (spans, log lines)
//! to the coordinator as `event` frames, giving the coordinator's event log
//! per-worker attribution.
//!
//! [`CommonOpts`]: piccolo_bench::cli::CommonOpts

use crate::protocol::{
    self, event_msg, heartbeat_msg, hello_msg, lease_units, next_msg, parse_msg, ready_msg,
    result_msg,
};
use piccolo::campaign::PlannedCampaign;
use piccolo::json::Json;
use piccolo_bench::cli::{build_campaign, CommonOpts};
use piccolo_obs as obs;
use piccolo_obs::sink::RelaySink;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Worker tunables; every field has a driver flag.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Intra-unit simulation lanes (`--intra-jobs` equivalent is inherited
    /// from the coordinator; this is the unit-level `--jobs` for one lease).
    pub jobs: usize,
    /// Name reported in `hello` (shows up in the coordinator's worker spans).
    pub name: String,
    /// Connection attempts before giving up (the coordinator may still be
    /// starting when the worker launches).
    pub connect_retries: u32,
    /// Pause between connection attempts.
    pub retry_backoff: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            jobs: 1,
            name: "worker".to_string(),
            connect_retries: 30,
            retry_backoff: Duration::from_millis(200),
        }
    }
}

/// What one worker run accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Leases taken.
    pub leases: usize,
    /// Units executed and streamed back.
    pub units: usize,
}

fn connect(addr: &str, cfg: &WorkerConfig) -> Result<TcpStream, String> {
    let mut last_err = String::new();
    for attempt in 0..=cfg.connect_retries {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                if attempt > 0 {
                    obs::info(format!("{}: connected after {attempt} retries", cfg.name));
                }
                return Ok(stream);
            }
            Err(e) => {
                last_err = e.to_string();
                std::thread::sleep(cfg.retry_backoff);
            }
        }
    }
    Err(format!(
        "cannot connect to {addr} after {} attempts: {last_err}",
        cfg.connect_retries + 1
    ))
}

/// Guards a frame write: frames must never interleave, and the executor hook,
/// the main loop, and the heartbeat thread all send.
fn send_locked(stream: &Mutex<TcpStream>, payload: &str) -> std::io::Result<()> {
    let mut stream = stream.lock().unwrap_or_else(PoisonError::into_inner);
    protocol::send_msg(&mut *stream, payload)
}

/// Runs a worker against the coordinator at `addr` until the campaign is done
/// or the connection fails.
///
/// # Errors
///
/// Connection failures, protocol violations, a coordinator `reject`, and
/// execution errors, all as human-readable strings (the driver exits nonzero).
#[allow(clippy::too_many_lines)] // one connection's whole state machine, linear
pub fn run_worker(addr: &str, cfg: &WorkerConfig) -> Result<WorkerSummary, String> {
    let stream = connect(addr, cfg)?;
    let _ = stream.set_nodelay(true);
    let reader = Arc::new(Mutex::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?,
    ));
    let writer = Arc::new(Mutex::new(stream));

    send_locked(&writer, &hello_msg(&cfg.name)).map_err(|e| format!("hello failed: {e}"))?;
    let job = recv(&reader)?.ok_or("coordinator hung up before sending a job")?;
    let (kind, doc) = parse_msg(&job)?;
    let opts = match kind.as_str() {
        "job" => {
            let wire = doc.get("opts").ok_or("job frame has no opts")?;
            CommonOpts::from_wire_json(&wire.to_string())?
        }
        "reject" => return Err(reject_reason(&doc)),
        other => return Err(format!("expected job, got '{other}'")),
    };

    // Rebuild the campaign exactly as the coordinator did. `setup.datasets`
    // keeps externally registered graphs alive for the life of the run.
    let setup = build_campaign(&opts)?;
    for warning in &setup.unknown {
        obs::warn(format!("{}: {warning}", cfg.name));
    }
    let campaign = PlannedCampaign::new(setup.scale, setup.specs);
    piccolo::set_intra_jobs(opts.intra_jobs);
    send_locked(&writer, &ready_msg(&campaign.plan_hex()))
        .map_err(|e| format!("ready failed: {e}"))?;
    obs::info(format!(
        "{}: plan {} ready ({} units in grid)",
        cfg.name,
        campaign.plan_hex(),
        campaign.num_units()
    ));

    // Heartbeat + event relay: keeps leases alive through long graph builds
    // and forwards this worker's own event stream for coordinator-side
    // attribution. Every frame counts as a heartbeat on the other end.
    let relay = Arc::new(RelaySink::new(4096));
    let relay_id = obs::add_sink(Arc::clone(&relay) as Arc<dyn obs::sink::Sink>);
    let stop = Arc::new(AtomicBool::new(false));
    let hb_writer = Arc::clone(&writer);
    let hb_relay = Arc::clone(&relay);
    let hb_stop = Arc::clone(&stop);
    let heartbeat = std::thread::spawn(move || {
        while !hb_stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(500));
            if hb_stop.load(Ordering::Acquire) {
                break;
            }
            for line in hb_relay.drain() {
                if send_locked(&hb_writer, &event_msg(&line)).is_err() {
                    return;
                }
            }
            if send_locked(&hb_writer, &heartbeat_msg()).is_err() {
                return;
            }
        }
    });
    let finish = |result: Result<WorkerSummary, String>| {
        stop.store(true, Ordering::Release);
        let _ = heartbeat.join();
        obs::remove_sink(relay_id);
        result
    };

    let mut summary = WorkerSummary {
        leases: 0,
        units: 0,
    };
    loop {
        if let Err(e) = send_locked(&writer, &next_msg()) {
            return finish(Err(format!("next failed: {e}")));
        }
        let reply = match recv(&reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                // EOF between frames after work was done is the coordinator
                // exiting; treat it as completion rather than an error.
                return finish(Ok(summary));
            }
            Err(e) => return finish(Err(e)),
        };
        let (kind, doc) = match parse_msg(&reply) {
            Ok(parsed) => parsed,
            Err(e) => return finish(Err(e)),
        };
        match kind.as_str() {
            "lease" => {
                let units = match lease_units(&doc) {
                    Ok(units) => units,
                    Err(e) => return finish(Err(e)),
                };
                summary.leases += 1;
                obs::debug(format!("{}: lease of {} unit(s)", cfg.name, units.len()));
                let send_failed = AtomicBool::new(false);
                let hook = |unit: usize, result_json: &str| {
                    if send_locked(&writer, &result_msg(unit, result_json)).is_err() {
                        send_failed.store(true, Ordering::Release);
                    }
                };
                match campaign.execute_units(cfg.jobs, &units, &hook) {
                    Ok(_) => summary.units += units.len(),
                    Err(e) => return finish(Err(format!("lease execution failed: {e}"))),
                }
                if send_failed.load(Ordering::Acquire) {
                    return finish(Err("coordinator connection lost mid-lease".to_string()));
                }
            }
            "wait" => {
                let ms = doc.get("ms").and_then(Json::as_f64).unwrap_or(100.0);
                std::thread::sleep(Duration::from_millis(ms as u64));
            }
            "done" => {
                obs::info(format!(
                    "{}: campaign complete ({} lease(s), {} unit(s) here)",
                    cfg.name, summary.leases, summary.units
                ));
                return finish(Ok(summary));
            }
            "reject" => return finish(Err(reject_reason(&doc))),
            other => return finish(Err(format!("unexpected message '{other}'"))),
        }
    }
}

fn recv(reader: &Mutex<TcpStream>) -> Result<Option<String>, String> {
    let mut stream = reader.lock().unwrap_or_else(PoisonError::into_inner);
    protocol::recv_msg(&mut *stream).map_err(|e| format!("recv failed: {e}"))
}

fn reject_reason(doc: &Json) -> String {
    format!(
        "coordinator rejected this worker: {}",
        doc.get("reason")
            .and_then(Json::as_str)
            .unwrap_or("unspecified")
    )
}
