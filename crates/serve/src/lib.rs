//! `piccolo-serve`: networked campaigns for the Piccolo reproduction.
//!
//! A campaign's unit grid is a deterministic function of (scale, figure set)
//! — that is what makes `results.json` byte-reproducible, and it is also what
//! makes the grid trivially distributable: any worker that rebuilds the same
//! plan can execute any unit and produce the same canonical bytes. This crate
//! adds the network layer on top of that invariant:
//!
//! - [`protocol`] — the length-prefixed, checksummed TCP frame codec and
//!   message vocabulary shared by both sides;
//! - [`coordinator`] — the daemon ([`Coordinator`]): leases the grid to
//!   workers with heartbeat-based fault tolerance, streams every completed
//!   unit into a resumable journal, merges the finished grid through the
//!   `plan_hash`-validated shard path, and serves results over HTTP;
//! - [`worker`] — the execution side ([`run_worker`]): rebuilds the plan from
//!   the coordinator's wire options, verifies the hash, and streams unit
//!   results back as they complete.
//!
//! The binaries (`piccolo-serve`, `piccolo-worker`) are thin drivers over
//! these modules and share their flag surface with `repro`/`bench`/`graphtool`
//! via [`piccolo_bench::cli`].
//!
//! End to end, a networked campaign with any number of workers — including
//! workers that die mid-lease — produces `results.json` byte-identical to a
//! local `repro --jobs 1` run, and a restarted coordinator resumes from its
//! journal without re-executing a single completed unit.

#![forbid(unsafe_code)]

pub mod coordinator;
mod http;
pub mod protocol;
pub mod worker;

pub use coordinator::{CampaignOutcome, Coordinator, CoordinatorConfig};
pub use worker::{run_worker, WorkerConfig, WorkerSummary};
