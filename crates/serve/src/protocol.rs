//! The coordinator/worker wire protocol: length-prefixed, checksummed frames
//! carrying compact JSON messages.
//!
//! A frame is a `u32` little-endian byte length followed by exactly that many
//! bytes: one [`piccolo_obs::linecodec`]-encoded line (`<16-hex FNV-1a-64
//! checksum> <compact JSON payload>`, no trailing newline). The checksum is the
//! same codec the run journal and the event stream use, so a corrupted frame is
//! detected the same way a torn journal line is — and a frame payload can be
//! appended to a journal or an event log verbatim.
//!
//! Message vocabulary (the `"type"` field):
//!
//! | direction | type | fields | meaning |
//! |---|---|---|---|
//! | worker → coord | `hello` | `version`, `worker` | introduce; version must match |
//! | coord → worker | `job` | `opts` | the campaign-shaping [`CommonOpts`] wire object |
//! | worker → coord | `ready` | `plan` | worker rebuilt the plan; 16-hex hash to compare |
//! | coord → worker | `reject` | `reason` | plan/version mismatch — worker exits |
//! | worker → coord | `next` | | request a lease |
//! | coord → worker | `lease` | `units` | ascending global unit indices to execute |
//! | coord → worker | `wait` | `ms` | nothing open right now; ask again after `ms` |
//! | coord → worker | `done` | | campaign complete — worker exits cleanly |
//! | worker → coord | `result` | `unit`, `result` | one completed unit's codec JSON |
//! | worker → coord | `heartbeat` | | liveness; extends the worker's lease deadlines |
//! | worker → coord | `event` | `payload` | one relayed `piccolo-events/v1` line |
//!
//! Every worker → coord message counts as a heartbeat. Results are idempotent:
//! they land by global unit index and the grid is deterministic, so a duplicate
//! (after a lease timeout and re-dispatch) is byte-identical and discarded by
//! slot.
//!
//! [`CommonOpts`]: piccolo_bench::cli::CommonOpts

use piccolo::json::{parse, Json};
use piccolo_obs::linecodec;
use std::io::{ErrorKind, Read, Write};

/// Protocol version spoken by this build; `hello` frames carry it and the
/// coordinator rejects mismatches outright.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a single frame (16 MiB). A unit result is a few hundred
/// bytes; anything near this limit is a corrupt or hostile length prefix.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, msg)
}

/// Writes one message as a checksummed frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn send_msg(out: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let line = linecodec::encode_line(payload);
    let len = u32::try_from(line.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME)
        .ok_or_else(|| bad_data(format!("frame too large ({} bytes)", line.len())))?;
    // One buffered write per frame so a frame is never interleaved with another
    // thread's (callers serialize writes per stream anyway).
    let mut buf = Vec::with_capacity(4 + line.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(line.as_bytes());
    out.write_all(&buf)
}

/// Reads one frame and returns its verified payload. `Ok(None)` is a clean
/// end-of-stream (the peer closed between frames).
///
/// # Errors
///
/// `InvalidData` for an oversized length prefix or a checksum failure;
/// `UnexpectedEof` for a stream torn mid-frame; otherwise the underlying read
/// error (including timeouts, surfaced as `WouldBlock`/`TimedOut`).
pub fn recv_msg(input: &mut impl Read) -> std::io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    match input.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(bad_data(format!("frame length {len} exceeds {MAX_FRAME}")));
    }
    let mut frame = vec![0u8; len as usize];
    input.read_exact(&mut frame)?;
    let line =
        std::str::from_utf8(&frame).map_err(|_| bad_data("frame is not UTF-8".to_string()))?;
    match linecodec::decode_line(line) {
        Some(payload) => Ok(Some(payload.to_string())),
        None => Err(bad_data("frame checksum mismatch".to_string())),
    }
}

/// Parses a message payload and returns `(type, document)`.
///
/// # Errors
///
/// Describes the malformation.
pub fn parse_msg(payload: &str) -> Result<(String, Json), String> {
    let doc = parse(payload).map_err(|e| format!("unparseable message: {e}"))?;
    let kind = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or("message has no type")?
        .to_string();
    Ok((kind, doc))
}

/// `hello` — worker introduces itself.
#[must_use]
pub fn hello_msg(worker: &str) -> String {
    Json::obj([
        ("type", Json::str("hello")),
        ("version", Json::Num(PROTOCOL_VERSION as f64)),
        ("worker", Json::str(worker)),
    ])
    .to_string()
}

/// `job` — the campaign-shaping options, as the [`CommonOpts`] wire object.
///
/// [`CommonOpts`]: piccolo_bench::cli::CommonOpts
#[must_use]
pub fn job_msg(opts_wire: &Json) -> String {
    Json::obj([("type", Json::str("job")), ("opts", opts_wire.clone())]).to_string()
}

/// `ready` — the worker's independently computed plan hash.
#[must_use]
pub fn ready_msg(plan_hex: &str) -> String {
    Json::obj([("type", Json::str("ready")), ("plan", Json::str(plan_hex))]).to_string()
}

/// `reject` — coordinator refuses the worker.
#[must_use]
pub fn reject_msg(reason: &str) -> String {
    Json::obj([("type", Json::str("reject")), ("reason", Json::str(reason))]).to_string()
}

/// `next` — worker asks for a lease.
#[must_use]
pub fn next_msg() -> String {
    Json::obj([("type", Json::str("next"))]).to_string()
}

/// `lease` — ascending global unit indices for the worker to execute.
#[must_use]
pub fn lease_msg(units: &[usize]) -> String {
    Json::obj([
        ("type", Json::str("lease")),
        (
            "units",
            Json::Arr(units.iter().map(|&u| Json::Num(u as f64)).collect()),
        ),
    ])
    .to_string()
}

/// `wait` — nothing open; ask again after `ms`.
#[must_use]
pub fn wait_msg(ms: u64) -> String {
    Json::obj([("type", Json::str("wait")), ("ms", Json::Num(ms as f64))]).to_string()
}

/// `done` — campaign complete.
#[must_use]
pub fn done_msg() -> String {
    Json::obj([("type", Json::str("done"))]).to_string()
}

/// `result` — one completed unit. `result_json` is the unit's canonical codec
/// bytes, embedded verbatim (it is already compact JSON).
#[must_use]
pub fn result_msg(unit: usize, result_json: &str) -> String {
    format!("{{\"type\":\"result\",\"unit\":{unit},\"result\":{result_json}}}")
}

/// `heartbeat` — liveness only.
#[must_use]
pub fn heartbeat_msg() -> String {
    Json::obj([("type", Json::str("heartbeat"))]).to_string()
}

/// `event` — one relayed `piccolo-events/v1` payload line.
#[must_use]
pub fn event_msg(payload_line: &str) -> String {
    Json::obj([
        ("type", Json::str("event")),
        ("payload", Json::str(payload_line)),
    ])
    .to_string()
}

/// Extracts `lease.units` as ascending indices.
///
/// # Errors
///
/// Rejects missing/NaN/negative/fractional entries.
pub fn lease_units(doc: &Json) -> Result<Vec<usize>, String> {
    let arr = doc
        .get("units")
        .and_then(Json::as_array)
        .ok_or("lease has no units array")?;
    let mut units = Vec::with_capacity(arr.len());
    for v in arr {
        let n = v
            .as_f64()
            .filter(|n| n.fract() == 0.0 && *n >= 0.0)
            .ok_or("lease unit is not a non-negative integer")?;
        units.push(n as usize);
    }
    Ok(units)
}

/// Extracts `result.unit` and re-serializes `result.result` to a compact string.
///
/// # Errors
///
/// Rejects missing fields. (Semantic validation — range, kind, losslessness —
/// is [`piccolo::campaign::PlannedCampaign::validate_result`]'s job.)
pub fn result_fields(doc: &Json) -> Result<(usize, String), String> {
    let unit = doc
        .get("unit")
        .and_then(Json::as_f64)
        .filter(|n| n.fract() == 0.0 && *n >= 0.0)
        .ok_or("result has no unit index")? as usize;
    let result = doc.get("result").ok_or("result has no result object")?;
    Ok((unit, result.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_byte_pipe() {
        let mut pipe: Vec<u8> = Vec::new();
        send_msg(&mut pipe, &hello_msg("w1")).unwrap();
        send_msg(&mut pipe, &lease_msg(&[0, 2, 4])).unwrap();
        let mut cursor = &pipe[..];
        let first = recv_msg(&mut cursor).unwrap().unwrap();
        let (kind, doc) = parse_msg(&first).unwrap();
        assert_eq!(kind, "hello");
        assert_eq!(doc.get("worker").and_then(Json::as_str), Some("w1"));
        let second = recv_msg(&mut cursor).unwrap().unwrap();
        let (kind, doc) = parse_msg(&second).unwrap();
        assert_eq!(kind, "lease");
        assert_eq!(lease_units(&doc).unwrap(), vec![0, 2, 4]);
        // Clean end-of-stream between frames.
        assert!(recv_msg(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn corrupt_frames_are_rejected_not_decoded() {
        let mut pipe: Vec<u8> = Vec::new();
        send_msg(&mut pipe, &next_msg()).unwrap();
        // Flip one payload byte; the length prefix still matches.
        let last = pipe.len() - 1;
        pipe[last] ^= 0x01;
        let err = recv_msg(&mut &pipe[..]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);

        // A torn frame (advertised length longer than the stream) is
        // UnexpectedEof, distinguishable from a clean close.
        let torn = [8u8, 0, 0, 0, b'x'];
        let err = recv_msg(&mut &torn[..]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);

        // An absurd length prefix fails fast without allocating.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let err = recv_msg(&mut &huge[..]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn result_frames_embed_canonical_bytes_verbatim() {
        let canonical = r#"{"kind":"sim","iters":"3","value":1.5}"#;
        let msg = result_msg(7, canonical);
        let (kind, doc) = parse_msg(&msg).unwrap();
        assert_eq!(kind, "result");
        let (unit, result) = result_fields(&doc).unwrap();
        assert_eq!(unit, 7);
        // The embedded object re-serializes to the exact input bytes: compact
        // JSON in, compact JSON out — the property duplicate discard relies on.
        assert_eq!(result, canonical);
    }
}
