//! The campaign coordinator daemon.
//!
//! Usage: `piccolo-serve [figure ...] [--quick|--full] [--intra-jobs N]
//! [--out PATH] [--external NAME=PATH ...] [--snapshot-dir DIR]
//! [--events PATH] [--events-max-bytes N] [--metrics PATH]
//! [--log-level LEVEL] [--addr HOST:PORT] [--port-file PATH] [--lease N]
//! [--heartbeat-timeout-ms N] [--journal PATH] [--bench-out PATH]
//! [--exit-when-done]`
//!
//! The common flags are the shared driver surface ([`piccolo_bench::cli`]) and
//! mean exactly what they mean to `repro`: figures, scale, externals and the
//! snapshot dir **shape the campaign plan**, and the coordinator forwards them
//! to every worker over the wire ([`CommonOpts::to_wire_json`]), so workers
//! never re-specify them — they inherit them, rebuild the plan, and must land
//! on the same hash. `--intra-jobs` is likewise inherited: it is part of the
//! execution recipe, not the plan, but forwarding it keeps every worker's
//! thread split identical. Paths travel verbatim; external graph files and
//! snapshot dirs must resolve on the worker's filesystem.
//!
//! The coordinator's own flags:
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:0`: loopback, OS
//!   picks the port). Workers and HTTP clients share the one port.
//! * `--port-file PATH` — write the bound address (one line) once listening;
//!   how scripts that passed `:0` find the port.
//! * `--lease N` — units per work lease (default 2).
//! * `--heartbeat-timeout-ms N` — a lease unheard-of for this long is
//!   re-dispatched (default 2000).
//! * `--journal PATH` — the streamed server-side journal (default
//!   `serve.journal`). Restarting with the same journal resumes: completed
//!   units replay, only the rest are re-dispatched.
//! * `--bench-out PATH` — also write the derived `BENCH.json` on completion.
//! * `--exit-when-done` — shut down after writing results (the default is to
//!   keep serving HTTP until killed).
//!
//! `--out` names the merged `results.json` (default `results.json`) — by
//! construction byte-identical to `repro --jobs 1` with the same plan flags.

#![forbid(unsafe_code)]

use piccolo::campaign::PlannedCampaign;
use piccolo_bench::cli::{build_campaign, CliParser, CommonOpts, FlagSet};
use piccolo_obs as obs;
use piccolo_serve::{Coordinator, CoordinatorConfig};
use std::path::PathBuf;
use std::time::Duration;

fn flags() -> FlagSet {
    FlagSet {
        scale: true,
        intra_jobs: true,
        out: true,
        external: true,
        snapshot_dir: true,
        events: true,
        metrics: true,
        log_level: true,
        ..FlagSet::default()
    }
}

fn parser() -> CliParser {
    CliParser::new(
        "piccolo-serve",
        format!(
            "piccolo-serve [figure ...] {} \
             [--addr HOST:PORT] [--port-file PATH] [--lease N] \
             [--heartbeat-timeout-ms N] [--journal PATH] [--bench-out PATH] \
             [--exit-when-done]",
            flags().usage_fragment()
        ),
    )
}

fn main() {
    obs::init_stderr(obs::LevelFilter::Info);
    obs::metrics::reset_metrics();
    let cli = parser();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = CommonOpts::new(flags());
    let mut cfg = CoordinatorConfig::default();
    let mut port_file: Option<PathBuf> = None;
    let mut exit_when_done = false;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if opts.accept(arg, &mut it, &cli) {
            continue;
        }
        match arg.as_str() {
            "--addr" => cfg.addr = cli.value("--addr", &mut it).to_string(),
            "--port-file" => {
                port_file = Some(PathBuf::from(cli.value("--port-file", &mut it)));
            }
            "--lease" => {
                let v = cli.value("--lease", &mut it);
                cfg.lease_size = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| cli.fail(&format!("invalid --lease value '{v}'")));
            }
            "--heartbeat-timeout-ms" => {
                let v = cli.value("--heartbeat-timeout-ms", &mut it);
                let ms: u64 = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    cli.fail(&format!("invalid --heartbeat-timeout-ms value '{v}'"))
                });
                cfg.heartbeat_timeout = Duration::from_millis(ms);
            }
            "--journal" => cfg.journal = PathBuf::from(cli.value("--journal", &mut it)),
            "--bench-out" => {
                cfg.bench_out = Some(PathBuf::from(cli.value("--bench-out", &mut it)));
            }
            "--exit-when-done" => exit_when_done = true,
            other if other.starts_with("--") => cli.unknown_flag(other),
            other => opts.figures.push(other.to_string()),
        }
    }
    opts.attach_sinks(&cli);
    if let Some(out) = &opts.out {
        cfg.results_out = PathBuf::from(out);
    }

    // Build the plan locally — the coordinator never executes a unit, but it
    // must know the grid (to lease it) and the plan hash (to vet workers).
    // `setup.datasets` keeps external graph registrations alive for the
    // daemon's lifetime.
    let setup = build_campaign(&opts).unwrap_or_else(|e| cli.fail(&e));
    for f in &setup.unknown {
        obs::warn(format!("unknown figure '{f}'"));
    }
    let campaign = PlannedCampaign::new(setup.scale, setup.specs);
    let wire = opts.to_wire_json();
    let _datasets = setup.datasets;

    let coordinator = Coordinator::start(campaign, &wire, cfg).unwrap_or_else(|e| {
        obs::error(format!("piccolo-serve: cannot start coordinator: {e}"));
        obs::flush_sinks();
        std::process::exit(1);
    });
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", coordinator.addr())) {
            obs::error(format!(
                "piccolo-serve: cannot write port file {}: {e}",
                path.display()
            ));
            obs::flush_sinks();
            std::process::exit(1);
        }
    }

    match coordinator.wait_complete() {
        Ok(outcome) => {
            let line = format!(
                "campaign complete: {} unit(s) ({} replayed from journal, {} executed by \
                 {} worker(s)); {} duplicate(s) discarded, {} lease timeout(s)",
                outcome.replayed + outcome.executed,
                outcome.replayed,
                outcome.executed,
                outcome.workers,
                outcome.duplicates,
                outcome.lease_timeouts,
            );
            println!("{line}");
            obs::info(line);
        }
        Err(e) => {
            obs::error(format!("piccolo-serve: merge failed: {e}"));
            obs::flush_sinks();
            std::process::exit(1);
        }
    }
    if let Some(path) = &opts.metrics {
        match obs::metrics::write_metrics_file(path) {
            Ok(()) => obs::info(format!("wrote {}", path.display())),
            Err(e) => obs::error(format!(
                "piccolo-serve: cannot write {}: {e}",
                path.display()
            )),
        }
    }
    obs::flush_sinks();
    if exit_when_done {
        coordinator.shutdown();
        // Joining the connection handlers above produced the worker spans'
        // close events; push them to disk before exiting.
        obs::flush_sinks();
    } else {
        // Keep serving /results.json, /BENCH.json, /status and /events until
        // killed; late workers get `done` and exit cleanly.
        obs::info("campaign served; coordinator stays up (no --exit-when-done)");
        obs::flush_sinks();
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}
