//! The campaign worker: executes leases for a `piccolo-serve` coordinator.
//!
//! Usage: `piccolo-worker HOST:PORT [--jobs N] [--events PATH]
//! [--events-max-bytes N] [--log-level LEVEL] [--name NAME] [--retry N]
//! [--backoff-ms N]`
//!
//! The worker specifies **no campaign flags** — figures, scale, externals and
//! the snapshot dir all arrive over the wire from the coordinator
//! ([`CommonOpts::from_wire_json`]), the worker rebuilds the plan and must
//! land on the coordinator's hash before it gets a single lease. Only
//! execution-local knobs live here:
//!
//! * `--jobs N` — worker threads for this process's leases (0 = all cores),
//!   exactly `repro --jobs`. The intra-simulation split is inherited from the
//!   coordinator's `--intra-jobs`.
//! * `--events PATH` / `--events-max-bytes N` — this worker's own local event
//!   log; independent of the relay (every worker always forwards its event
//!   stream to the coordinator for per-worker attribution).
//! * `--name NAME` — reported in `hello`; defaults to `worker-<pid>`. Shows
//!   up in the coordinator's per-worker spans and log lines.
//! * `--retry N` / `--backoff-ms N` — connection attempts and the pause
//!   between them (default 30 x 200 ms), so a worker can launch before its
//!   coordinator finishes binding.

#![forbid(unsafe_code)]

use piccolo_bench::cli::{CliParser, CommonOpts, FlagSet};
use piccolo_obs as obs;
use piccolo_serve::{run_worker, WorkerConfig};
use std::time::Duration;

fn flags() -> FlagSet {
    FlagSet {
        jobs: true,
        events: true,
        log_level: true,
        ..FlagSet::default()
    }
}

fn parser() -> CliParser {
    CliParser::new(
        "piccolo-worker",
        format!(
            "piccolo-worker HOST:PORT {} [--name NAME] [--retry N] [--backoff-ms N]",
            flags().usage_fragment()
        ),
    )
}

fn main() {
    obs::init_stderr(obs::LevelFilter::Info);
    let cli = parser();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = CommonOpts::new(flags());
    let mut cfg = WorkerConfig {
        name: format!("worker-{}", std::process::id()),
        ..WorkerConfig::default()
    };
    let mut addr: Option<String> = None;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if opts.accept(arg, &mut it, &cli) {
            continue;
        }
        match arg.as_str() {
            "--name" => cfg.name = cli.value("--name", &mut it).to_string(),
            "--retry" => {
                let v = cli.value("--retry", &mut it);
                cfg.connect_retries = v
                    .parse()
                    .unwrap_or_else(|_| cli.fail(&format!("invalid --retry value '{v}'")));
            }
            "--backoff-ms" => {
                let v = cli.value("--backoff-ms", &mut it);
                let ms: u64 = v
                    .parse()
                    .unwrap_or_else(|_| cli.fail(&format!("invalid --backoff-ms value '{v}'")));
                cfg.retry_backoff = Duration::from_millis(ms);
            }
            other if other.starts_with("--") => cli.unknown_flag(other),
            other if addr.is_none() => addr = Some(other.to_string()),
            other => cli.fail(&format!("unexpected argument '{other}'")),
        }
    }
    let Some(addr) = addr else {
        cli.fail("missing coordinator address (HOST:PORT)");
    };
    opts.attach_sinks(&cli);
    cfg.jobs = opts.jobs;

    match run_worker(&addr, &cfg) {
        Ok(summary) => {
            let line = format!(
                "{}: done ({} lease(s), {} unit(s))",
                cfg.name, summary.leases, summary.units
            );
            println!("{line}");
            obs::flush_sinks();
        }
        Err(e) => {
            obs::error(format!("piccolo-worker: {e}"));
            obs::flush_sinks();
            std::process::exit(1);
        }
    }
}
