//! The coordinator: leases the deterministic unit grid to TCP workers, streams
//! a resumable journal, and merges the completed grid into `results.json`.
//!
//! # Lease / heartbeat state machine
//!
//! Every grid slot is `Open`, `Leased { worker, deadline }` or `Done(bytes)`.
//! A `next` request takes the lowest-indexed `Open` slots (up to the lease
//! size) and stamps them with a deadline; **every** frame a worker sends —
//! results, heartbeats, relayed events — pushes its deadlines forward. The
//! reaper thread returns expired leases to `Open`, and a worker disconnect
//! releases its leases immediately, so a dead or slow worker's units are
//! re-dispatched to whoever asks next.
//!
//! Execution is therefore **at least once**, and that is safe by construction:
//! results land by global unit index, the grid is deterministic, and every
//! accepted result is normalized to canonical codec bytes
//! ([`PlannedCampaign::validate_result`]) — so a late duplicate from a slow
//! worker is necessarily byte-identical to the slot it finds already `Done`,
//! and is counted and discarded.
//!
//! Each accepted result is appended to the server-side journal **before** its
//! slot flips to `Done` — the exact `repro --resume` line format — so a killed
//! coordinator restarts by replaying its own journal and re-dispatches only
//! the missing units; completed units are never re-executed.
//!
//! When the grid completes, the coordinator merges through the same
//! `plan_hash`-validated [`merge_shards`] path as `repro --merge`
//! ([`PlannedCampaign::evaluate`]), making `results.json` byte-identical to a
//! local `--jobs 1` run. The derived `BENCH.json` carries the deterministic
//! speedup metrics; its wall-clock and scheduling-stats fields are zero in
//! networked mode (timing lives with the workers).
//!
//! [`merge_shards`]: piccolo::campaign::merge_shards

use crate::http;
use crate::protocol::{self, job_msg, parse_msg, reject_msg, result_fields, PROTOCOL_VERSION};
use piccolo::campaign::{CampaignJournal, PlannedCampaign};
use piccolo::json::{parse, Json};
use piccolo::report::results_json;
use piccolo_bench::{bench_json, speedup_metrics, FigureBench};
use piccolo_obs as obs;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Coordinator tunables; every field has a driver flag.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Bind address (`127.0.0.1:0` picks a free port; see [`Coordinator::addr`]).
    pub addr: String,
    /// Units per lease. Small leases re-dispatch less on worker death; large
    /// leases amortize graph builds better.
    pub lease_size: usize,
    /// A lease unheard-of for this long goes back to `Open`.
    pub heartbeat_timeout: Duration,
    /// The streamed server-side journal (`repro --resume` line format).
    pub journal: PathBuf,
    /// Where to write `results.json` on completion.
    pub results_out: PathBuf,
    /// Where to write `BENCH.json` on completion (also served over HTTP).
    pub bench_out: Option<PathBuf>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            lease_size: 2,
            heartbeat_timeout: Duration::from_millis(2000),
            journal: PathBuf::from("serve.journal"),
            results_out: PathBuf::from("results.json"),
            bench_out: None,
        }
    }
}

/// One grid slot's lease state.
#[derive(Debug)]
enum Slot {
    Open,
    Leased { conn: u64, deadline: Instant },
    Done(String),
}

/// The mutable coordinator state, behind one mutex.
#[derive(Debug)]
struct Grid {
    slots: Vec<Slot>,
    completed: usize,
    /// Slots prefilled from the journal at startup — never re-executed.
    replayed: usize,
    duplicates: u64,
    lease_timeouts: u64,
    workers_seen: u64,
    /// `Some` once the campaign finalized (evaluation result or error).
    outcome: Option<Result<Finalized, String>>,
    shutting_down: bool,
}

#[derive(Debug, Clone)]
struct Finalized {
    results_doc: String,
    bench_doc: String,
}

/// What a completed campaign looked like from the coordinator's side.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The final `results.json` bytes.
    pub results_doc: String,
    /// Units replayed from the journal at startup (never re-executed).
    pub replayed: usize,
    /// Units executed by workers during this coordinator's lifetime.
    pub executed: usize,
    /// Duplicate results discarded by slot (late arrivals after re-dispatch).
    pub duplicates: u64,
    /// Leases that timed out and were re-dispatched.
    pub lease_timeouts: u64,
    /// Distinct worker connections that reached `ready`.
    pub workers: u64,
}

pub(crate) struct Shared {
    campaign: PlannedCampaign,
    opts_wire: Json,
    cfg: CoordinatorConfig,
    journal: CampaignJournal,
    grid: Mutex<Grid>,
    changed: Condvar,
    conn_ids: AtomicU64,
    /// Live connection-handler threads, joined on shutdown so every worker
    /// span closes (and reaches the sinks) before the process exits.
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A running coordinator. Dropping it does **not** stop the daemon threads;
/// call [`Coordinator::shutdown`] (or let the process exit).
pub struct Coordinator {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    reaper_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

fn lock_grid<'a>(shared: &'a Shared) -> std::sync::MutexGuard<'a, Grid> {
    shared.grid.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_conns<'a>(
    shared: &'a Shared,
) -> std::sync::MutexGuard<'a, Vec<std::thread::JoinHandle<()>>> {
    shared.conns.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Coordinator {
    /// Starts the coordinator: replays the journal (a missing file is an empty
    /// one), binds the listener, and begins accepting workers and HTTP clients.
    /// `opts_wire` is the campaign-shaping [`CommonOpts`] wire JSON sent to
    /// every worker — it must describe exactly the plan `campaign` was built
    /// from, or workers will compute a different plan hash and be rejected.
    ///
    /// # Errors
    ///
    /// Journal replay/open and listener bind errors.
    ///
    /// [`CommonOpts`]: piccolo_bench::cli::CommonOpts
    pub fn start(
        campaign: PlannedCampaign,
        opts_wire: &str,
        cfg: CoordinatorConfig,
    ) -> std::io::Result<Self> {
        let opts_wire = parse(opts_wire).map_err(|e| {
            std::io::Error::new(ErrorKind::InvalidInput, format!("bad options wire: {e}"))
        })?;
        let replay = campaign.replay_journal(&cfg.journal)?;
        if replay.corrupt + replay.mismatched > 0 {
            obs::warn(format!(
                "journal {}: ignored {} corrupt line(s) and {} foreign entr(ies)",
                cfg.journal.display(),
                replay.corrupt,
                replay.mismatched
            ));
        }
        let journal = campaign.open_journal(&cfg.journal)?;
        let mut slots: Vec<Slot> = (0..campaign.num_units()).map(|_| Slot::Open).collect();
        let mut completed = 0usize;
        for (gid, canonical) in replay.entries {
            slots[gid] = Slot::Done(canonical);
            completed += 1;
        }
        let grid = Grid {
            slots,
            completed,
            replayed: completed,
            duplicates: 0,
            lease_timeouts: 0,
            workers_seen: 0,
            outcome: None,
            shutting_down: false,
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            campaign,
            opts_wire,
            cfg,
            journal,
            grid: Mutex::new(grid),
            changed: Condvar::new(),
            conn_ids: AtomicU64::new(1),
            conns: Mutex::new(Vec::new()),
        });
        obs::info(format!(
            "coordinator: plan {} on {local_addr}: {} unit(s), {} replayed from journal",
            shared.campaign.plan_hex(),
            shared.campaign.num_units(),
            completed,
        ));
        {
            // A journal that already covers the whole grid finalizes immediately
            // (the restart-resume path): zero units re-executed.
            let mut grid = lock_grid(&shared);
            if grid.completed == shared.campaign.num_units() {
                finalize(&shared, &mut grid);
            }
        }
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        let reaper_shared = Arc::clone(&shared);
        let reaper_thread = std::thread::spawn(move || reaper_loop(&reaper_shared));
        Ok(Self {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            reaper_thread: Some(reaper_thread),
        })
    }

    /// The bound address (with the OS-assigned port when `addr` ended in `:0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until the campaign completes (every slot `Done`, results merged
    /// and written).
    ///
    /// # Errors
    ///
    /// The merge error, if the completed grid failed plan validation — an
    /// invariant breach, since every slot was validated on arrival.
    pub fn wait_complete(&self) -> Result<CampaignOutcome, String> {
        let mut grid = lock_grid(&self.shared);
        loop {
            if let Some(outcome) = &grid.outcome {
                return outcome
                    .as_ref()
                    .map_err(Clone::clone)
                    .map(|fin| CampaignOutcome {
                        results_doc: fin.results_doc.clone(),
                        replayed: grid.replayed,
                        executed: grid.completed - grid.replayed,
                        duplicates: grid.duplicates,
                        lease_timeouts: grid.lease_timeouts,
                        workers: grid.workers_seen,
                    });
            }
            grid = self
                .shared
                .changed
                .wait(grid)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops the accept and reaper threads, then joins every live connection
    /// handler. The joins are bounded: a worker's next request gets `done`,
    /// its next liveness frame breaks the handler, a silent socket hits the
    /// read timeout, and the `/events` streamer polls the shutdown flag —
    /// and joining is what guarantees every per-worker span closes (and
    /// reaches the sinks) before the process exits.
    pub fn shutdown(mut self) {
        {
            let mut grid = lock_grid(&self.shared);
            grid.shutting_down = true;
            self.shared.changed.notify_all();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.reaper_thread.take() {
            let _ = t.join();
        }
        // The accept thread is gone, so no new handlers can appear under us.
        let handlers = std::mem::take(&mut *lock_conns(&self.shared));
        for t in handlers {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, peer)) = listener.accept() else {
            break;
        };
        if lock_grid(shared).shutting_down {
            break;
        }
        let conn_shared = Arc::clone(shared);
        // A connection thread exits when its socket closes, times out, or the
        // worker drains after `done`; the handle is kept so shutdown can join
        // the stragglers.
        let handle = std::thread::spawn(move || {
            // Sniff the first bytes: an HTTP client says "GET ", a worker's
            // first frame starts with a binary length prefix.
            let mut first = [0u8; 4];
            let is_http = matches!(stream.peek(&mut first), Ok(4) if &first == b"GET ");
            if is_http {
                http::handle(stream, &conn_shared);
            } else {
                handle_worker(stream, &conn_shared, peer);
            }
        });
        let mut conns = lock_conns(shared);
        // Retire finished handles so a long-lived daemon doesn't accumulate
        // one handle per connection it ever served.
        conns.retain(|h| !h.is_finished());
        conns.push(handle);
    }
}

/// Returns expired leases to `Open`; runs until shutdown (and keeps running
/// through completion so late workers still get their leases reclaimed — they
/// only matter for the counters at that point).
fn reaper_loop(shared: &Arc<Shared>) {
    let tick = shared.cfg.heartbeat_timeout / 2;
    let mut grid = lock_grid(shared);
    while !grid.shutting_down {
        let (g, _) = shared
            .changed
            .wait_timeout(grid, tick)
            .unwrap_or_else(PoisonError::into_inner);
        grid = g;
        let now = Instant::now();
        let mut expired = 0;
        for slot in &mut grid.slots {
            if matches!(slot, Slot::Leased { deadline, .. } if *deadline <= now) {
                *slot = Slot::Open;
                expired += 1;
            }
        }
        grid.lease_timeouts += expired;
    }
}

/// Merges the completed grid and stores/writes the output documents. Caller
/// holds the grid lock; every slot is `Done`.
fn finalize(shared: &Shared, grid: &mut Grid) {
    let results: Vec<(usize, String)> = grid
        .slots
        .iter()
        .enumerate()
        .map(|(gid, slot)| match slot {
            Slot::Done(canonical) => (gid, canonical.clone()),
            _ => unreachable!("finalize called with a non-Done slot"),
        })
        .collect();
    let outcome = shared.campaign.evaluate(&results).map(|figures| {
        let results_doc = results_json(shared.campaign.scale(), &figures);
        let mut metrics: Vec<(String, f64)> = Vec::new();
        let mut benched: Vec<FigureBench> = Vec::new();
        for (spec, figure) in shared.campaign.specs().iter().zip(&figures) {
            metrics.extend(speedup_metrics(spec.name(), &figure.points));
            benched.push(FigureBench {
                name: spec.name().to_string(),
                title: spec.title().to_string(),
                rows: figure.points.len(),
                // Wall-clock lives with the workers; networked BENCH.json
                // carries only the deterministic speedup metrics.
                min_ms: 0.0,
                mean_ms: 0.0,
            });
        }
        let bench_doc = bench_json(
            0,
            grid.workers_seen.max(1) as usize,
            &benched,
            &metrics,
            &piccolo::campaign::CampaignStats::default(),
            None,
        );
        Finalized {
            results_doc,
            bench_doc,
        }
    });
    match &outcome {
        Ok(fin) => {
            if let Err(e) = std::fs::write(&shared.cfg.results_out, &fin.results_doc) {
                obs::error(format!(
                    "coordinator: cannot write {}: {e}",
                    shared.cfg.results_out.display()
                ));
            } else {
                obs::info(format!("wrote {}", shared.cfg.results_out.display()));
            }
            if let Some(path) = &shared.cfg.bench_out {
                if let Err(e) = std::fs::write(path, &fin.bench_doc) {
                    obs::error(format!("coordinator: cannot write {}: {e}", path.display()));
                } else {
                    obs::info(format!("wrote {}", path.display()));
                }
            }
        }
        Err(e) => obs::error(format!("coordinator: merge failed: {e}")),
    }
    grid.outcome = Some(outcome);
}

/// Pushes every lease held by `conn` forward — called on any frame from it.
fn extend_leases(grid: &mut Grid, conn: u64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    for slot in &mut grid.slots {
        if let Slot::Leased {
            conn: holder,
            deadline: d,
        } = slot
        {
            if *holder == conn {
                *d = deadline;
            }
        }
    }
}

/// Releases every lease still held by `conn` — called on disconnect.
fn release_leases(grid: &mut Grid, conn: u64) -> usize {
    let mut released = 0;
    for slot in &mut grid.slots {
        if matches!(slot, Slot::Leased { conn: holder, .. } if *holder == conn) {
            *slot = Slot::Open;
            released += 1;
        }
    }
    released
}

fn send_or_break(stream: &mut TcpStream, payload: &str, worker: &str) -> bool {
    if let Err(e) = protocol::send_msg(stream, payload) {
        obs::warn(format!("coordinator: send to {worker} failed: {e}"));
        return false;
    }
    true
}

#[allow(clippy::too_many_lines)] // one connection's whole state machine, linear
fn handle_worker(mut stream: TcpStream, shared: &Arc<Shared>, peer: SocketAddr) {
    let conn = shared.conn_ids.fetch_add(1, Ordering::Relaxed);
    // A worker silent for two timeouts is dead even if its socket lingers;
    // heartbeats arrive every timeout/3, so a healthy link never trips this.
    let _ = stream.set_read_timeout(Some(shared.cfg.heartbeat_timeout * 2));

    // Handshake: hello (version check) -> job (options) -> ready (plan check).
    let hello = match protocol::recv_msg(&mut stream) {
        Ok(Some(payload)) => payload,
        _ => return,
    };
    let worker_name = match parse_msg(&hello) {
        Ok((kind, doc)) if kind == "hello" => {
            let version = doc.get("version").and_then(Json::as_f64).unwrap_or(-1.0);
            if version != PROTOCOL_VERSION as f64 {
                let _ = protocol::send_msg(
                    &mut stream,
                    &reject_msg(&format!("protocol version {version} != {PROTOCOL_VERSION}")),
                );
                return;
            }
            doc.get("worker")
                .and_then(Json::as_str)
                .unwrap_or("anonymous")
                .to_string()
        }
        _ => {
            obs::warn(format!("coordinator: {peer} sent no hello; dropping"));
            return;
        }
    };
    if !send_or_break(&mut stream, &job_msg(&shared.opts_wire), &worker_name) {
        return;
    }
    match protocol::recv_msg(&mut stream) {
        Ok(Some(payload)) => match parse_msg(&payload) {
            Ok((kind, doc)) if kind == "ready" => {
                let plan = doc.get("plan").and_then(Json::as_str).unwrap_or("");
                let expected = shared.campaign.plan_hex();
                if plan != expected {
                    obs::warn(format!(
                        "coordinator: {worker_name} computed plan {plan}, expected {expected}; rejecting"
                    ));
                    let _ = protocol::send_msg(
                        &mut stream,
                        &reject_msg(&format!("plan mismatch: {plan} != {expected}")),
                    );
                    return;
                }
            }
            _ => return,
        },
        _ => return,
    }
    lock_grid(shared).workers_seen += 1;

    // Per-worker span attribution: every unit this worker completes and every
    // event it relays hangs off this span in the coordinator's own stream.
    let worker_span = obs::span(
        "worker",
        vec![
            ("worker", worker_name.clone().into()),
            ("peer", peer.to_string().into()),
        ],
    );
    let mut units_done = 0u64;
    let mut leases = 0u64;

    loop {
        let payload = match protocol::recv_msg(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(e) => {
                if !matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                    obs::warn(format!("coordinator: {worker_name}: recv failed: {e}"));
                }
                break;
            }
        };
        let (kind, doc) = match parse_msg(&payload) {
            Ok(parsed) => parsed,
            Err(e) => {
                obs::warn(format!("coordinator: {worker_name}: {e}; dropping"));
                break;
            }
        };
        let mut grid = lock_grid(shared);
        extend_leases(&mut grid, conn, shared.cfg.heartbeat_timeout);
        // After shutdown, liveness frames no longer matter: break so the
        // handler (and its span) can retire instead of being kept alive by a
        // worker that heartbeats forever. `next` still answers `done` below,
        // and results are still accepted and journaled.
        if grid.shutting_down && matches!(kind.as_str(), "heartbeat" | "event") {
            break;
        }
        match kind.as_str() {
            "next" => {
                if grid.outcome.is_some() || grid.shutting_down {
                    drop(grid);
                    let _ = protocol::send_msg(&mut stream, &protocol::done_msg());
                    break;
                }
                let deadline = Instant::now() + shared.cfg.heartbeat_timeout;
                let mut units = Vec::with_capacity(shared.cfg.lease_size);
                for (gid, slot) in grid.slots.iter_mut().enumerate() {
                    if matches!(slot, Slot::Open) {
                        *slot = Slot::Leased { conn, deadline };
                        units.push(gid);
                        if units.len() == shared.cfg.lease_size {
                            break;
                        }
                    }
                }
                drop(grid);
                if units.is_empty() {
                    // Everything is leased or done; the straggler leases may
                    // yet time out, so tell the worker to ask again soon.
                    let ms = (shared.cfg.heartbeat_timeout.as_millis() / 4).max(10) as u64;
                    if !send_or_break(&mut stream, &protocol::wait_msg(ms), &worker_name) {
                        break;
                    }
                } else {
                    leases += 1;
                    if !send_or_break(&mut stream, &protocol::lease_msg(&units), &worker_name) {
                        break;
                    }
                }
            }
            "result" => {
                let (unit, result_json) = match result_fields(&doc) {
                    Ok(fields) => fields,
                    Err(e) => {
                        obs::warn(format!("coordinator: {worker_name}: {e}; dropping"));
                        break;
                    }
                };
                // Validation normalizes to canonical bytes — but never trust
                // the wire: a result failing validation costs the worker its
                // connection, and the slot goes back to Open via lease release.
                let canonical = match shared.campaign.validate_result(unit, &result_json) {
                    Ok(canonical) => canonical,
                    Err(e) => {
                        drop(grid);
                        obs::warn(format!("coordinator: {worker_name}: rejected result: {e}"));
                        break;
                    }
                };
                if matches!(grid.slots[unit], Slot::Done(_)) {
                    // At-least-once: a re-dispatched unit's late twin. The
                    // grid is deterministic, so the bytes are identical —
                    // count it and drop it by slot.
                    grid.duplicates += 1;
                    obs::debug(format!(
                        "coordinator: duplicate result for unit {unit} from {worker_name} discarded"
                    ));
                } else {
                    // Journal first: a crash between journal and slot flip
                    // costs nothing (replay fills the slot); the reverse order
                    // would lose the unit on restart.
                    shared.journal.record_result(unit, &canonical);
                    grid.slots[unit] = Slot::Done(canonical);
                    grid.completed += 1;
                    units_done += 1;
                    obs::point_with_parent(
                        "unit_received",
                        worker_span.id(),
                        vec![
                            ("unit", (unit as u64).into()),
                            ("worker", worker_name.clone().into()),
                        ],
                    );
                    if grid.completed == shared.campaign.num_units() {
                        finalize(shared, &mut grid);
                        shared.changed.notify_all();
                    }
                }
            }
            "heartbeat" => {}
            "event" => {
                // Relay: re-emit the worker's event line as a point under this
                // worker's span. The payload stays a string field, so the
                // coordinator's own stream stays span-balanced no matter what
                // the worker emitted.
                if let Some(line) = doc.get("payload").and_then(Json::as_str) {
                    obs::point_with_parent(
                        "relay",
                        worker_span.id(),
                        vec![
                            ("worker", worker_name.clone().into()),
                            ("payload", line.to_string().into()),
                        ],
                    );
                }
            }
            other => {
                obs::warn(format!(
                    "coordinator: {worker_name}: unknown message type '{other}'; ignoring"
                ));
            }
        }
    }

    let released = {
        let mut grid = lock_grid(shared);
        let released = release_leases(&mut grid, conn);
        if released > 0 {
            shared.changed.notify_all();
        }
        released
    };
    if released > 0 {
        obs::info(format!(
            "coordinator: {worker_name} disconnected holding {released} lease(s); re-dispatching"
        ));
    }
    worker_span.close(vec![
        ("units", units_done.into()),
        ("leases", leases.into()),
        ("released", (released as u64).into()),
    ]);
}

/// Read-only snapshot for the HTTP `/status` endpoint.
pub(crate) fn status_doc(shared: &Shared) -> String {
    let grid = lock_grid(shared);
    let leased = grid
        .slots
        .iter()
        .filter(|s| matches!(s, Slot::Leased { .. }))
        .count();
    Json::obj([
        ("schema", Json::str("piccolo-serve-status/v1")),
        ("plan", Json::str(shared.campaign.plan_hex())),
        ("units", Json::Num(shared.campaign.num_units() as f64)),
        ("completed", Json::Num(grid.completed as f64)),
        ("replayed", Json::Num(grid.replayed as f64)),
        ("leased", Json::Num(leased as f64)),
        ("duplicates", Json::Num(grid.duplicates as f64)),
        ("lease_timeouts", Json::Num(grid.lease_timeouts as f64)),
        ("workers", Json::Num(grid.workers_seen as f64)),
        ("done", Json::Bool(grid.outcome.is_some())),
    ])
    .to_string()
}

/// The finalized documents, if the campaign completed (for HTTP).
pub(crate) fn finalized_docs(shared: &Shared) -> Option<(String, String)> {
    let grid = lock_grid(shared);
    match &grid.outcome {
        Some(Ok(fin)) => Some((fin.results_doc.clone(), fin.bench_doc.clone())),
        _ => None,
    }
}

/// Whether shutdown was requested (ends the HTTP `/events` stream).
pub(crate) fn is_shutting_down(shared: &Shared) -> bool {
    lock_grid(shared).shutting_down
}
