//! Single-source shortest path (Bellman-Ford relaxation) as a vertex program.

use crate::vcm::{Algorithm, VertexProgram};
use crate::UNREACHED;
use piccolo_graph::{ActiveSet, Csr, VertexId, Weight};

/// SSSP from a single `source` with non-negative integer edge weights.
///
/// `Process` adds the edge weight to the source distance, `Reduce`/`Apply` take the
/// minimum — the classic Bellman-Ford relaxation, which is exactly how the paper's
/// accelerators express SSSP in VCM.
///
/// # Example
///
/// ```
/// use piccolo_algo::{Sssp, run_vcm};
/// let g = piccolo_graph::generate::path(4); // unit weights
/// let r = run_vcm(&g, &Sssp::new(0), 40);
/// assert_eq!(r.props[3], 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sssp {
    /// Source vertex.
    pub source: VertexId,
}

impl Sssp {
    /// Creates an SSSP program rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }
}

impl VertexProgram for Sssp {
    type Value = u32;

    fn algorithm(&self) -> Algorithm {
        Algorithm::Sssp
    }

    fn initial_value(&self, v: VertexId, _graph: &Csr) -> u32 {
        if v == self.source {
            0
        } else {
            UNREACHED
        }
    }

    fn temp_identity(&self, _v: VertexId, _graph: &Csr) -> u32 {
        UNREACHED
    }

    fn initial_active(&self, graph: &Csr) -> ActiveSet {
        let mut a = ActiveSet::new(graph.num_vertices());
        if self.source < graph.num_vertices() {
            a.activate(self.source);
        }
        a
    }

    fn vconst(&self, _v: VertexId, _graph: &Csr) -> u32 {
        0
    }

    fn process(&self, edge_weight: Weight, src_prop: u32) -> u32 {
        if src_prop >= UNREACHED {
            UNREACHED
        } else {
            src_prop.saturating_add(edge_weight)
        }
    }

    fn reduce(&self, acc: u32, contribution: u32) -> u32 {
        acc.min(contribution)
    }

    fn apply(&self, old: u32, temp: u32, _vconst: u32) -> u32 {
        old.min(temp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::vcm::run_vcm;
    use piccolo_graph::{generate, Edge, EdgeList};

    #[test]
    fn shortest_path_prefers_cheaper_route() {
        // 0 -> 1 (10), 0 -> 2 (1), 2 -> 1 (2): the best route to 1 costs 3.
        let mut el = EdgeList::new(3);
        el.push(Edge::new(0, 1, 10));
        el.push(Edge::new(0, 2, 1));
        el.push(Edge::new(2, 1, 2));
        let g = el.to_csr();
        let r = run_vcm(&g, &Sssp::new(0), 40);
        assert_eq!(r.props[1], 3);
        assert_eq!(r.props[2], 1);
    }

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let g = generate::uniform(200, 1200, 17);
        let r = run_vcm(&g, &Sssp::new(0), 1000);
        let expected = reference::dijkstra(&g, 0);
        assert_eq!(r.props.as_slice(), expected.as_slice());
    }

    #[test]
    fn unreachable_stays_unreached() {
        let mut el = EdgeList::new(3);
        el.push(Edge::new(1, 2, 4));
        let g = el.to_csr();
        let r = run_vcm(&g, &Sssp::new(0), 40);
        assert_eq!(r.props[1], UNREACHED);
        assert_eq!(r.props[2], UNREACHED);
    }
}
