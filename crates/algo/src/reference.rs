//! Textbook reference implementations used as ground truth for the vertex programs.
//!
//! These are deliberately simple (priority queues, plain BFS, union-find) and independent
//! of the VCM machinery so that agreement between the two is meaningful evidence of
//! correctness.

use crate::UNREACHED;
use piccolo_graph::{Csr, VertexId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// BFS hop distances from `source` (`UNREACHED` if not reachable).
pub fn bfs_levels(graph: &Csr, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut dist = vec![UNREACHED; n];
    if (source as usize) >= n {
        return dist;
    }
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for (v, _) in graph.neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Dijkstra shortest-path distances from `source` (`UNREACHED` if not reachable).
pub fn dijkstra(graph: &Csr, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut dist = vec![UNREACHED; n];
    if (source as usize) >= n {
        return dist;
    }
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in graph.neighbors(u) {
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Widest-path bottleneck widths from `source` (0 if not reachable, `u32::MAX` at the
/// source itself), computed with a max-heap variant of Dijkstra.
pub fn widest_path(graph: &Csr, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut width = vec![0u32; n];
    if (source as usize) >= n {
        return width;
    }
    width[source as usize] = u32::MAX;
    let mut heap = BinaryHeap::new();
    heap.push((u32::MAX, source));
    while let Some((w, u)) = heap.pop() {
        if w < width[u as usize] {
            continue;
        }
        for (v, ew) in graph.neighbors(u) {
            let nw = w.min(ew);
            if nw > width[v as usize] {
                width[v as usize] = nw;
                heap.push((nw, v));
            }
        }
    }
    width
}

/// Weakly connected component labels via union-find over the undirected edge set. Labels
/// are the minimum vertex id in each component, matching the label-propagation program.
pub fn weakly_connected_components(graph: &Csr) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();

    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    for e in graph.iter_edges() {
        let ra = find(&mut parent, e.src);
        let rb = find(&mut parent, e.dst);
        if ra != rb {
            // Union by minimum id so labels are canonical.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Plain power-iteration PageRank returning actual ranks (not contribution form).
pub fn pagerank(graph: &Csr, damping: f64, iterations: u32) -> Vec<f64> {
    let n = graph.num_vertices();
    let nf = n.max(1) as f64;
    let mut rank = vec![1.0 / nf; n as usize];
    for _ in 0..iterations {
        let mut next = vec![(1.0 - damping) / 1.0; n as usize];
        // Match the accelerator formulation: new = (1-d) + d * sum(contrib), no 1/N term,
        // ranks are per-vertex scores rather than a probability distribution.
        for v in next.iter_mut() {
            *v = 1.0 - damping;
        }
        for u in 0..n {
            let deg = graph.out_degree(u).max(1) as f64;
            let contrib = rank[u as usize] / deg;
            for (v, _) in graph.neighbors(u) {
                next[v as usize] += damping * contrib;
            }
        }
        rank = next;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo_graph::{generate, Edge, EdgeList};

    #[test]
    fn bfs_matches_grid_structure() {
        let g = generate::grid(3, 3);
        let d = bfs_levels(&g, 0);
        assert_eq!(d[8], 4);
        assert_eq!(d[4], 2);
    }

    #[test]
    fn dijkstra_handles_weights() {
        let mut el = EdgeList::new(4);
        el.push(Edge::new(0, 1, 1));
        el.push(Edge::new(1, 2, 1));
        el.push(Edge::new(0, 2, 5));
        let g = el.to_csr();
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], UNREACHED);
    }

    #[test]
    fn widest_path_bottleneck() {
        let mut el = EdgeList::new(3);
        el.push(Edge::new(0, 1, 4));
        el.push(Edge::new(1, 2, 9));
        let g = el.to_csr();
        let w = widest_path(&g, 0);
        assert_eq!(w[1], 4);
        assert_eq!(w[2], 4);
    }

    #[test]
    fn wcc_labels_are_canonical_minimum() {
        let mut el = EdgeList::new(6);
        el.push(Edge::new(4, 1, 1));
        el.push(Edge::new(1, 2, 1));
        el.push(Edge::new(5, 3, 1));
        let g = el.to_csr();
        let labels = weakly_connected_components(&g);
        assert_eq!(labels[4], 1);
        assert_eq!(labels[2], 1);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[3], 3);
        assert_eq!(labels[5], 3);
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn pagerank_sums_reasonably() {
        let g = generate::kronecker(7, 4, 9);
        let pr = pagerank(&g, 0.85, 30);
        assert!(pr.iter().all(|&x| x > 0.0));
    }
}
