//! Connected components (label propagation) as a vertex program.

use crate::vcm::{Algorithm, VertexProgram};
use piccolo_graph::{ActiveSet, Csr, VertexId, Weight};

/// Connected components by minimum-label propagation.
///
/// Every vertex starts with its own id as the label; labels propagate along edges and each
/// vertex keeps the minimum it has seen. On convergence, vertices in the same weakly
/// connected component share a label *provided* labels can flow both ways; the simulator
/// runs CC on the symmetrised traversal used by the paper's workloads (graph generators in
/// the evaluation make both directions available through sufficient density), and the
/// reference comparison in the tests symmetrises explicitly.
///
/// # Example
///
/// ```
/// use piccolo_algo::{ConnectedComponents, run_vcm};
/// let g = piccolo_graph::generate::grid(2, 2);
/// let r = run_vcm(&g, &ConnectedComponents::new(), 40);
/// assert_eq!(r.props[3], 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnectedComponents;

impl ConnectedComponents {
    /// Creates the CC program.
    pub fn new() -> Self {
        Self
    }
}

impl VertexProgram for ConnectedComponents {
    type Value = u32;

    fn algorithm(&self) -> Algorithm {
        Algorithm::ConnectedComponents
    }

    fn initial_value(&self, v: VertexId, _graph: &Csr) -> u32 {
        v
    }

    fn temp_identity(&self, _v: VertexId, _graph: &Csr) -> u32 {
        u32::MAX
    }

    fn initial_active(&self, graph: &Csr) -> ActiveSet {
        ActiveSet::all(graph.num_vertices())
    }

    fn vconst(&self, _v: VertexId, _graph: &Csr) -> u32 {
        0
    }

    fn process(&self, _edge_weight: Weight, src_prop: u32) -> u32 {
        src_prop
    }

    fn reduce(&self, acc: u32, contribution: u32) -> u32 {
        acc.min(contribution)
    }

    fn apply(&self, old: u32, temp: u32, _vconst: u32) -> u32 {
        old.min(temp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcm::run_vcm;
    use piccolo_graph::{Edge, EdgeList};

    /// Builds a symmetric graph from undirected edge pairs.
    fn undirected(n: u32, pairs: &[(u32, u32)]) -> piccolo_graph::Csr {
        let mut el = EdgeList::new(n);
        for &(a, b) in pairs {
            el.push(Edge::new(a, b, 1));
            el.push(Edge::new(b, a, 1));
        }
        el.to_csr()
    }

    #[test]
    fn two_components_get_two_labels() {
        let g = undirected(6, &[(0, 1), (1, 2), (3, 4)]);
        let r = run_vcm(&g, &ConnectedComponents::new(), 40);
        assert!(r.converged);
        assert_eq!(r.props[0], 0);
        assert_eq!(r.props[1], 0);
        assert_eq!(r.props[2], 0);
        assert_eq!(r.props[3], 3);
        assert_eq!(r.props[4], 3);
        assert_eq!(r.props[5], 5);
    }

    #[test]
    fn fully_connected_single_label() {
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = run_vcm(&g, &ConnectedComponents::new(), 40);
        assert!((0..5).all(|v| r.props[v] == 0));
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let g = undirected(4, &[]);
        let r = run_vcm(&g, &ConnectedComponents::new(), 40);
        for v in 0..4 {
            assert_eq!(r.props[v], v);
        }
    }
}
