//! Edge-centric iteration driver (Section VII-H).
//!
//! Edge-centric accelerators (ForeGraph, FabGraph, MOMS) stream the edge set grouped into
//! 2-D grid blocks instead of walking the CSR of active vertices. Per iteration every edge
//! is visited once (filtered on active sources), which trades redundant edge reads for
//! perfectly sequential topology access. The semantics are identical to the vertex-centric
//! driver; this module exists so the accelerator model can generate edge-centric traces
//! and so tests can confirm the equivalence.

use crate::vcm::{IterationStats, VcmResult, VertexProgram};
use piccolo_graph::tiling::GridPartition;
use piccolo_graph::{ActiveSet, Csr, Edge, VertexProps};

/// An edge set reordered into grid-block order.
#[derive(Debug, Clone)]
pub struct GridEdges {
    /// The grid partition the edges are ordered by.
    pub grid: GridPartition,
    /// Edges sorted by block id (row-major over source tiles), then source.
    pub edges: Vec<Edge>,
    /// Start offset of each block within `edges` (length `num_blocks() + 1`).
    pub block_offsets: Vec<usize>,
}

impl GridEdges {
    /// Reorders the edges of `graph` into grid blocks of the given tile widths.
    pub fn new(graph: &Csr, src_width: u32, dst_width: u32) -> Self {
        let grid = GridPartition::new(graph.num_vertices().max(1), src_width, dst_width);
        let mut tagged: Vec<(u64, Edge)> = graph
            .iter_edges()
            .map(|e| (grid.block_of(e.src, e.dst), e))
            .collect();
        tagged.sort_by_key(|(b, e)| (*b, e.src, e.dst));
        let num_blocks = grid.num_blocks() as usize;
        let mut block_offsets = vec![0usize; num_blocks + 1];
        for (b, _) in &tagged {
            block_offsets[*b as usize + 1] += 1;
        }
        for i in 0..num_blocks {
            block_offsets[i + 1] += block_offsets[i];
        }
        let edges = tagged.into_iter().map(|(_, e)| e).collect();
        Self {
            grid,
            edges,
            block_offsets,
        }
    }

    /// Edges belonging to block `b`.
    pub fn block(&self, b: u64) -> &[Edge] {
        &self.edges[self.block_offsets[b as usize]..self.block_offsets[b as usize + 1]]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> u64 {
        self.grid.num_blocks()
    }
}

/// Runs `program` with edge-centric traversal. Produces the same result as
/// [`crate::vcm::run_vcm`]; the difference is purely the traversal order (which matters
/// to the memory system, not to the functional outcome).
pub fn run_edge_centric<P: VertexProgram>(
    graph: &Csr,
    program: &P,
    max_iterations: u32,
    src_tile_width: u32,
    dst_tile_width: u32,
) -> VcmResult<P::Value> {
    let n = graph.num_vertices();
    let grid_edges = GridEdges::new(graph, src_tile_width.max(1), dst_tile_width.max(1));

    let mut props = VertexProps::new(n, program.initial_value(0, graph));
    for v in 0..n {
        props[v] = program.initial_value(v, graph);
    }
    let mut active = program.initial_active(graph);
    let mut stats = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..max_iterations {
        if active.is_empty() {
            converged = true;
            break;
        }
        iterations = iter + 1;

        let mut temp = VertexProps::new(n, program.temp_identity(0, graph));
        for v in 0..n {
            temp[v] = program.temp_identity(v, graph);
        }

        let mut edges_traversed = 0u64;
        for b in 0..grid_edges.num_blocks() {
            for e in grid_edges.block(b) {
                if !active.contains(e.src) {
                    continue;
                }
                let res = program.process(e.weight, props[e.src]);
                temp[e.dst] = program.reduce(temp[e.dst], res);
                edges_traversed += 1;
            }
        }

        let mut next_active = ActiveSet::new(n);
        let mut updated = 0;
        for v in 0..n {
            let new = program.apply(props[v], temp[v], program.vconst(v, graph));
            if program.changed(props[v], new) {
                props[v] = new;
                next_active.activate(v);
                updated += 1;
            }
        }

        stats.push(IterationStats {
            iteration: iter,
            active_vertices: active.len(),
            edges_traversed,
            vertices_updated: updated,
        });
        active = if program.algorithm().is_all_active() && updated > 0 {
            ActiveSet::all(n)
        } else if program.algorithm().is_all_active() {
            ActiveSet::new(n)
        } else {
            next_active
        };
    }
    if active.is_empty() {
        converged = true;
    }

    VcmResult {
        props,
        iterations,
        converged,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcm::run_vcm;
    use crate::{Bfs, PageRank, Sssp};
    use piccolo_graph::generate;

    #[test]
    fn grid_edges_partition_the_edge_set() {
        let g = generate::kronecker(8, 4, 4);
        let ge = GridEdges::new(&g, 64, 32);
        let total: usize = (0..ge.num_blocks()).map(|b| ge.block(b).len()).sum();
        assert_eq!(total as u64, g.num_edges());
        for b in 0..ge.num_blocks() {
            for e in ge.block(b) {
                assert_eq!(ge.grid.block_of(e.src, e.dst), b);
            }
        }
    }

    #[test]
    fn edge_centric_matches_vertex_centric_bfs() {
        let g = generate::kronecker(8, 4, 8);
        let vc = run_vcm(&g, &Bfs::new(0), 100);
        let ec = run_edge_centric(&g, &Bfs::new(0), 100, 64, 64);
        assert_eq!(vc.props.as_slice(), ec.props.as_slice());
    }

    #[test]
    fn edge_centric_matches_vertex_centric_sssp() {
        let g = generate::uniform(120, 700, 2);
        let vc = run_vcm(&g, &Sssp::new(3), 1000);
        let ec = run_edge_centric(&g, &Sssp::new(3), 1000, 16, 48);
        assert_eq!(vc.props.as_slice(), ec.props.as_slice());
    }

    #[test]
    fn edge_centric_matches_vertex_centric_pagerank() {
        let g = generate::kronecker(7, 4, 6);
        let vc = run_vcm(&g, &PageRank::default(), 10);
        let ec = run_edge_centric(&g, &PageRank::default(), 10, 32, 32);
        for v in 0..g.num_vertices() {
            assert!((vc.props[v] - ec.props[v]).abs() < 1e-12);
        }
    }
}
