//! The vertex-centric programming model (Algorithm 1 of the paper).
//!
//! A [`VertexProgram`] supplies the three application-defined operators (`Process`,
//! `Reduce`, `Apply`), the initial property/temporary values, and the initial active set.
//! [`run_vcm`] executes the program functionally until convergence (or an iteration cap),
//! returning the final vertex properties and per-iteration statistics. The accelerator
//! simulator drives the exact same trait to generate memory traces, so both agree on the
//! work performed.

use piccolo_graph::{ActiveSet, Csr, VertexId, VertexProps, Weight};

/// The five graph algorithms evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// PageRank (all vertices active every iteration).
    PageRank,
    /// Breadth-first search from a source vertex.
    Bfs,
    /// Connected components (label propagation).
    ConnectedComponents,
    /// Single-source shortest path (Bellman-Ford style relaxation).
    Sssp,
    /// Single-source widest path.
    Sswp,
}

impl Algorithm {
    /// The five algorithms in the order the paper's figures use.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::PageRank,
        Algorithm::Bfs,
        Algorithm::ConnectedComponents,
        Algorithm::Sssp,
        Algorithm::Sswp,
    ];

    /// Short name used in figures (PR/BFS/CC/SSSP/SSWP).
    pub fn short_name(&self) -> &'static str {
        match self {
            Algorithm::PageRank => "PR",
            Algorithm::Bfs => "BFS",
            Algorithm::ConnectedComponents => "CC",
            Algorithm::Sssp => "SSSP",
            Algorithm::Sswp => "SSWP",
        }
    }

    /// Whether the algorithm keeps every vertex active every iteration (PR) or works on a
    /// shrinking/expanding frontier (the "active-vertex-based" algorithms of Section
    /// VII-C).
    pub fn is_all_active(&self) -> bool {
        matches!(self, Algorithm::PageRank)
    }
}

/// A vertex program in the Process/Reduce/Apply form of Algorithm 1.
///
/// `Value` is the per-vertex property type (`f64` rank for PageRank, `u32` distances /
/// labels / widths for the others).
pub trait VertexProgram {
    /// Per-vertex property type.
    type Value: Copy + PartialEq + std::fmt::Debug;

    /// Which algorithm this program implements (used for reporting).
    fn algorithm(&self) -> Algorithm;

    /// Initial `Vprop[v]`.
    fn initial_value(&self, v: VertexId, graph: &Csr) -> Self::Value;

    /// Identity element of `Reduce` used to (re-)initialise `Vtemp[v]` each iteration.
    fn temp_identity(&self, v: VertexId, graph: &Csr) -> Self::Value;

    /// Initial active-vertex set.
    fn initial_active(&self, graph: &Csr) -> ActiveSet;

    /// Per-vertex constant (`Vconst[v]` in Algorithm 1), e.g. the out-degree for PageRank.
    fn vconst(&self, v: VertexId, graph: &Csr) -> Self::Value;

    /// `Process(e.weight, Vprop[u])` — produce the contribution of an edge.
    fn process(&self, edge_weight: Weight, src_prop: Self::Value) -> Self::Value;

    /// `Reduce(Vtemp[v], res)` — combine contributions (must be commutative/associative).
    fn reduce(&self, acc: Self::Value, contribution: Self::Value) -> Self::Value;

    /// `Apply(Vprop[v], Vtemp[v], Vconst[v])` — compute the new property.
    fn apply(&self, old: Self::Value, temp: Self::Value, vconst: Self::Value) -> Self::Value;

    /// Whether `new` differs enough from `old` to re-activate the vertex (exact
    /// inequality by default; PageRank overrides this with an epsilon test).
    fn changed(&self, old: Self::Value, new: Self::Value) -> bool {
        old != new
    }
}

/// Per-iteration statistics of a functional VCM run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iteration: u32,
    /// Number of active vertices at the start of the iteration.
    pub active_vertices: u32,
    /// Number of edges traversed (out-edges of active vertices).
    pub edges_traversed: u64,
    /// Number of vertices whose property changed (activated for the next iteration).
    pub vertices_updated: u32,
}

/// Result of running a vertex program to convergence.
#[derive(Debug, Clone)]
pub struct VcmResult<V> {
    /// Final vertex properties.
    pub props: VertexProps<V>,
    /// Number of iterations executed.
    pub iterations: u32,
    /// Whether the run converged (empty frontier) before hitting the iteration cap.
    pub converged: bool,
    /// Per-iteration statistics.
    pub stats: Vec<IterationStats>,
}

impl<V> VcmResult<V> {
    /// Total number of edges traversed over all iterations.
    pub fn total_edges_traversed(&self) -> u64 {
        self.stats.iter().map(|s| s.edges_traversed).sum()
    }
}

/// Runs `program` on `graph` until the frontier is empty or `max_iterations` is reached.
///
/// This is the *functional* executor: it performs the same computation as the simulated
/// accelerator but without any memory-system modelling, and is used as the source of truth
/// for correctness tests and for iteration statistics fed to the simulator.
///
/// The paper caps runs at 40 iterations "for cases where the number of iterations was too
/// long"; callers should pass 40 to match.
pub fn run_vcm<P: VertexProgram>(
    graph: &Csr,
    program: &P,
    max_iterations: u32,
) -> VcmResult<P::Value> {
    let n = graph.num_vertices();
    let mut props = VertexProps::new(n, program.initial_value(0, graph));
    for v in 0..n {
        props[v] = program.initial_value(v, graph);
    }
    let mut active = program.initial_active(graph);
    let mut stats = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..max_iterations {
        if active.is_empty() {
            converged = true;
            break;
        }
        iterations = iter + 1;

        // (Re-)initialise Vtemp with the reduce identity.
        let mut temp = VertexProps::new(n, program.temp_identity(0, graph));
        for v in 0..n {
            temp[v] = program.temp_identity(v, graph);
        }

        // Scatter phase: lines 2-5 of Algorithm 1.
        let mut edges_traversed = 0u64;
        for u in active.iter_sorted() {
            let src_prop = props[u];
            for (v, w) in graph.neighbors(u) {
                let res = program.process(w, src_prop);
                temp[v] = program.reduce(temp[v], res);
                edges_traversed += 1;
            }
        }

        // Apply phase: lines 6-10 of Algorithm 1.
        let mut next_active = ActiveSet::new(n);
        let mut updated = 0;
        for v in 0..n {
            let vconst = program.vconst(v, graph);
            let new = program.apply(props[v], temp[v], vconst);
            if program.changed(props[v], new) {
                props[v] = new;
                next_active.activate(v);
                updated += 1;
            }
        }

        stats.push(IterationStats {
            iteration: iter,
            active_vertices: active.len(),
            edges_traversed,
            vertices_updated: updated,
        });

        // All-active algorithms (PageRank) scatter every vertex each iteration until no
        // vertex changes at all; frontier algorithms only scatter the changed vertices.
        active = if program.algorithm().is_all_active() && updated > 0 {
            ActiveSet::all(n)
        } else if program.algorithm().is_all_active() {
            ActiveSet::new(n)
        } else {
            next_active
        };
    }
    if active.is_empty() {
        converged = true;
    }

    VcmResult {
        props,
        iterations,
        converged,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::pagerank::PageRank;
    use piccolo_graph::generate;

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::PageRank.short_name(), "PR");
        assert_eq!(Algorithm::Sswp.short_name(), "SSWP");
        assert!(Algorithm::PageRank.is_all_active());
        assert!(!Algorithm::Bfs.is_all_active());
        assert_eq!(Algorithm::ALL.len(), 5);
    }

    #[test]
    fn bfs_on_path_converges() {
        let g = generate::path(16);
        let r = run_vcm(&g, &Bfs::new(0), 40);
        assert!(r.converged);
        assert_eq!(r.props[15], 15);
        // 15 productive iterations plus one final iteration that discovers the empty frontier.
        assert_eq!(r.iterations, 16);
        // Exactly one frontier vertex per iteration on a path.
        assert!(r.stats.iter().all(|s| s.active_vertices == 1));
    }

    #[test]
    fn stats_edges_sum() {
        let g = generate::star(10);
        let r = run_vcm(&g, &Bfs::new(0), 40);
        assert_eq!(r.total_edges_traversed(), 9);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = generate::kronecker(8, 4, 2);
        let r = run_vcm(&g, &PageRank::default(), 3);
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn empty_frontier_terminates_immediately() {
        // A source with no out-edges: BFS finishes after one iteration.
        let g = generate::path(4);
        let r = run_vcm(&g, &Bfs::new(3), 40);
        assert!(r.converged);
        assert_eq!(r.iterations, 1);
    }
}
