//! Breadth-first search as a vertex program.

use crate::vcm::{Algorithm, VertexProgram};
use crate::UNREACHED;
use piccolo_graph::{ActiveSet, Csr, VertexId, Weight};

/// BFS levels from a single `source` vertex.
///
/// The property is the hop distance (`UNREACHED` for vertices not yet discovered);
/// `Process` adds one hop, `Reduce`/`Apply` take the minimum.
///
/// # Example
///
/// ```
/// use piccolo_algo::{Bfs, run_vcm, UNREACHED};
/// let g = piccolo_graph::generate::star(4);
/// let r = run_vcm(&g, &Bfs::new(0), 40);
/// assert_eq!(r.props[3], 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bfs {
    /// Source vertex.
    pub source: VertexId,
}

impl Bfs {
    /// Creates a BFS program rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }
}

impl VertexProgram for Bfs {
    type Value = u32;

    fn algorithm(&self) -> Algorithm {
        Algorithm::Bfs
    }

    fn initial_value(&self, v: VertexId, _graph: &Csr) -> u32 {
        if v == self.source {
            0
        } else {
            UNREACHED
        }
    }

    fn temp_identity(&self, _v: VertexId, _graph: &Csr) -> u32 {
        UNREACHED
    }

    fn initial_active(&self, graph: &Csr) -> ActiveSet {
        let mut a = ActiveSet::new(graph.num_vertices());
        if self.source < graph.num_vertices() {
            a.activate(self.source);
        }
        a
    }

    fn vconst(&self, _v: VertexId, _graph: &Csr) -> u32 {
        0
    }

    fn process(&self, _edge_weight: Weight, src_prop: u32) -> u32 {
        src_prop.saturating_add(1)
    }

    fn reduce(&self, acc: u32, contribution: u32) -> u32 {
        acc.min(contribution)
    }

    fn apply(&self, old: u32, temp: u32, _vconst: u32) -> u32 {
        old.min(temp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcm::run_vcm;
    use piccolo_graph::{generate, Edge, EdgeList};

    #[test]
    fn grid_distances_are_manhattan() {
        let g = generate::grid(4, 5);
        let r = run_vcm(&g, &Bfs::new(0), 40);
        for row in 0..4u32 {
            for col in 0..5u32 {
                assert_eq!(r.props[row * 5 + col], row + col);
            }
        }
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let mut el = EdgeList::new(5);
        el.push(Edge::new(0, 1, 1));
        // Vertices 2..4 are unreachable from 0.
        let g = el.to_csr();
        let r = run_vcm(&g, &Bfs::new(0), 40);
        assert_eq!(r.props[1], 1);
        assert_eq!(r.props[2], UNREACHED);
        assert_eq!(r.props[4], UNREACHED);
    }

    #[test]
    fn source_distance_is_zero() {
        let g = generate::kronecker(7, 4, 1);
        let r = run_vcm(&g, &Bfs::new(3), 40);
        assert_eq!(r.props[3], 0);
    }
}
