//! Single-source widest path as a vertex program.

use crate::vcm::{Algorithm, VertexProgram};
use piccolo_graph::{ActiveSet, Csr, VertexId, Weight};

/// Widest-path "capacity" from a single `source`.
///
/// The property is the bottleneck (minimum edge weight) of the widest path from the
/// source: `Process` takes `min(src_width, edge_weight)`, `Reduce`/`Apply` take the
/// maximum. The source itself has infinite width.
///
/// # Example
///
/// ```
/// use piccolo_algo::{Sswp, run_vcm};
/// use piccolo_graph::{Edge, EdgeList};
/// let mut el = EdgeList::new(3);
/// el.push(Edge::new(0, 1, 5));
/// el.push(Edge::new(1, 2, 3));
/// let r = run_vcm(&el.to_csr(), &Sswp::new(0), 40);
/// assert_eq!(r.props[2], 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sswp {
    /// Source vertex.
    pub source: VertexId,
}

impl Sswp {
    /// Creates an SSWP program rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }

    /// Width assigned to the source (effectively infinite).
    pub const SOURCE_WIDTH: u32 = u32::MAX;
}

impl VertexProgram for Sswp {
    type Value = u32;

    fn algorithm(&self) -> Algorithm {
        Algorithm::Sswp
    }

    fn initial_value(&self, v: VertexId, _graph: &Csr) -> u32 {
        if v == self.source {
            Self::SOURCE_WIDTH
        } else {
            0
        }
    }

    fn temp_identity(&self, _v: VertexId, _graph: &Csr) -> u32 {
        0
    }

    fn initial_active(&self, graph: &Csr) -> ActiveSet {
        let mut a = ActiveSet::new(graph.num_vertices());
        if self.source < graph.num_vertices() {
            a.activate(self.source);
        }
        a
    }

    fn vconst(&self, _v: VertexId, _graph: &Csr) -> u32 {
        0
    }

    fn process(&self, edge_weight: Weight, src_prop: u32) -> u32 {
        src_prop.min(edge_weight)
    }

    fn reduce(&self, acc: u32, contribution: u32) -> u32 {
        acc.max(contribution)
    }

    fn apply(&self, old: u32, temp: u32, _vconst: u32) -> u32 {
        old.max(temp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::vcm::run_vcm;
    use piccolo_graph::{generate, Edge, EdgeList};

    #[test]
    fn widest_path_prefers_wide_route() {
        // Two routes from 0 to 2: direct with width 2, or via 1 with widths 10 and 7.
        let mut el = EdgeList::new(3);
        el.push(Edge::new(0, 2, 2));
        el.push(Edge::new(0, 1, 10));
        el.push(Edge::new(1, 2, 7));
        let g = el.to_csr();
        let r = run_vcm(&g, &Sswp::new(0), 40);
        assert_eq!(r.props[2], 7);
        assert_eq!(r.props[1], 10);
    }

    #[test]
    fn matches_reference_on_random_graph() {
        let g = generate::uniform(150, 900, 23);
        let r = run_vcm(&g, &Sswp::new(0), 1000);
        let expected = reference::widest_path(&g, 0);
        assert_eq!(r.props.as_slice(), expected.as_slice());
    }

    #[test]
    fn unreachable_vertices_have_zero_width() {
        let mut el = EdgeList::new(3);
        el.push(Edge::new(1, 2, 4));
        let g = el.to_csr();
        let r = run_vcm(&g, &Sswp::new(0), 40);
        assert_eq!(r.props[1], 0);
        assert_eq!(r.props[2], 0);
    }
}
