//! PageRank as a vertex program.

use crate::vcm::{Algorithm, VertexProgram};
use piccolo_graph::{ActiveSet, Csr, VertexId, Weight};

/// PageRank with damping factor `d` and convergence threshold `epsilon`.
///
/// The per-vertex property stores the *contribution* `rank / out_degree` (the value the
/// scatter phase needs, following Graphicionado's formulation), so `Process` is a plain
/// copy of the source property and `Apply` re-normalises with `Vconst[v] = out_degree(v)`.
///
/// # Example
///
/// ```
/// use piccolo_algo::{PageRank, run_vcm};
/// let g = piccolo_graph::generate::star(5);
/// let r = run_vcm(&g, &PageRank::default(), 40);
/// assert!(r.iterations > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRank {
    /// Damping factor (0.85 in the original paper).
    pub damping: f64,
    /// Convergence threshold on the per-vertex rank change.
    pub epsilon: f64,
}

impl PageRank {
    /// Creates a PageRank program with explicit parameters.
    pub fn new(damping: f64, epsilon: f64) -> Self {
        Self { damping, epsilon }
    }

    /// Recovers the actual rank values from the contribution-form properties.
    pub fn ranks(&self, graph: &Csr, props: &[f64]) -> Vec<f64> {
        (0..graph.num_vertices())
            .map(|v| props[v as usize] * graph.out_degree(v).max(1) as f64)
            .collect()
    }
}

impl Default for PageRank {
    /// Damping 0.85, epsilon 1e-4.
    fn default() -> Self {
        Self {
            damping: 0.85,
            epsilon: 1e-4,
        }
    }
}

impl VertexProgram for PageRank {
    type Value = f64;

    fn algorithm(&self) -> Algorithm {
        Algorithm::PageRank
    }

    fn initial_value(&self, v: VertexId, graph: &Csr) -> f64 {
        let n = graph.num_vertices().max(1) as f64;
        (1.0 / n) / graph.out_degree(v).max(1) as f64
    }

    fn temp_identity(&self, _v: VertexId, _graph: &Csr) -> f64 {
        0.0
    }

    fn initial_active(&self, graph: &Csr) -> ActiveSet {
        ActiveSet::all(graph.num_vertices())
    }

    fn vconst(&self, v: VertexId, graph: &Csr) -> f64 {
        graph.out_degree(v).max(1) as f64
    }

    fn process(&self, _edge_weight: Weight, src_prop: f64) -> f64 {
        src_prop
    }

    fn reduce(&self, acc: f64, contribution: f64) -> f64 {
        acc + contribution
    }

    fn apply(&self, _old: f64, temp: f64, vconst: f64) -> f64 {
        // vconst carries out_degree; the property stays in contribution form.
        let n_inv_teleport = 1.0 - self.damping;
        (n_inv_teleport + self.damping * temp) / vconst
    }

    fn changed(&self, old: f64, new: f64) -> bool {
        (old - new).abs() > self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcm::run_vcm;
    use piccolo_graph::{generate, Edge, EdgeList};

    #[test]
    fn uniform_cycle_has_uniform_rank() {
        // A directed cycle: every vertex should end up with the same rank.
        let n = 8u32;
        let mut el = EdgeList::new(n);
        for v in 0..n {
            el.push(Edge::new(v, (v + 1) % n, 1));
        }
        let g = el.to_csr();
        let r = run_vcm(&g, &PageRank::default(), 100);
        assert!(r.converged);
        let ranks = PageRank::default().ranks(&g, r.props.as_slice());
        let first = ranks[0];
        assert!(ranks.iter().all(|&x| (x - first).abs() < 1e-6));
    }

    #[test]
    fn star_center_has_low_rank_leaves_equal() {
        let g = generate::star(6);
        let r = run_vcm(&g, &PageRank::default(), 100);
        let ranks = PageRank::default().ranks(&g, r.props.as_slice());
        // Leaves receive rank from the center and are all equal.
        let leaf = ranks[1];
        assert!(ranks[1..].iter().all(|&x| (x - leaf).abs() < 1e-9));
        assert!(ranks[1] > ranks[0] * 0.1);
    }

    #[test]
    fn ranks_are_positive_and_bounded() {
        let g = generate::kronecker(8, 4, 5);
        let r = run_vcm(&g, &PageRank::default(), 40);
        let ranks = PageRank::default().ranks(&g, r.props.as_slice());
        assert!(ranks.iter().all(|&x| x > 0.0));
        let total: f64 = ranks.iter().sum();
        // Total rank stays near |V| in the (1-d) + d*sum formulation.
        assert!(total > 0.2 * g.num_vertices() as f64);
        assert!(total < 2.0 * g.num_vertices() as f64);
    }
}
