//! Graph algorithms for the Piccolo reproduction.
//!
//! The paper evaluates five algorithms expressed in the vertex-centric model (VCM) of
//! Algorithm 1 — PageRank (PR), Breadth-First Search (BFS), Connected Components (CC),
//! Single-Source Shortest Path (SSSP) and Single-Source Widest Path (SSWP) — plus an
//! edge-centric variant (Section VII-H).
//!
//! This crate provides:
//!
//! * the [`vcm::VertexProgram`] trait capturing the `Process` / `Reduce` / `Apply`
//!   operators and a functional iteration driver [`vcm::run_vcm`],
//! * the five vertex programs ([`pagerank`], [`bfs`], [`cc`], [`sssp`], [`sswp`]),
//! * an [`edge_centric`] iteration driver with identical semantics but edge-block
//!   traversal order, and
//! * straightforward [`reference`](mod@reference) CPU implementations used as ground truth in tests.
//!
//! The accelerator simulator (crate `piccolo-accel`) re-uses the same vertex programs to
//! generate memory-access traces, so functional results and simulated traffic always refer
//! to the same computation.
//!
//! # Example
//!
//! ```
//! use piccolo_algo::{bfs::Bfs, vcm::run_vcm};
//! use piccolo_graph::generate;
//!
//! let g = generate::path(8);
//! let result = run_vcm(&g, &Bfs::new(0), 40);
//! assert_eq!(result.props[7], 7); // the path end is 7 hops away
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bfs;
pub mod cc;
pub mod edge_centric;
pub mod pagerank;
pub mod reference;
pub mod sssp;
pub mod sswp;
pub mod vcm;

pub use bfs::Bfs;
pub use cc::ConnectedComponents;
pub use pagerank::PageRank;
pub use sssp::Sssp;
pub use sswp::Sswp;
pub use vcm::{run_vcm, Algorithm, VcmResult, VertexProgram};

/// "Infinite" distance marker used by BFS/SSSP (`u32::MAX` would overflow when an edge
/// weight is added, so we reserve a large sentinel instead).
pub const UNREACHED: u32 = u32::MAX / 2;
