//! Property-style equivalence tests: the VCM programs must agree with the textbook
//! reference implementations, and the edge-centric driver must agree with the
//! vertex-centric one.
//!
//! The container this repository builds in has no crates.io access, so instead of
//! `proptest` these run a fixed number of seeded-random cases through
//! [`piccolo_graph::rng::Rng64`]; the failing seed is part of the assertion message, so a
//! reproduction is one `Rng64::seed_from_u64` away.

use piccolo_algo::edge_centric::run_edge_centric;
use piccolo_algo::{reference, run_vcm, Bfs, ConnectedComponents, PageRank, Sssp, Sswp};
use piccolo_graph::rng::Rng64;
use piccolo_graph::{Csr, Edge, EdgeList};

const CASES: u64 = 48;

/// Random directed graph with 2..80 vertices, up to 500 edges, weights in 1..=255.
fn random_graph(rng: &mut Rng64) -> Csr {
    let n = 2 + rng.gen_u32_below(78);
    let edges = 1 + rng.gen_index(500);
    let mut el = EdgeList::new(n);
    for _ in 0..edges {
        let s = rng.gen_u32_below(n);
        let d = rng.gen_u32_below(n);
        let w = 1 + rng.gen_u32_below(255);
        if s != d {
            el.push(Edge::new(s, d, w));
        }
    }
    el.dedup_and_clean();
    el.to_csr()
}

/// Random *symmetric* graph (for CC) with 2..60 vertices and up to 300 edge pairs.
fn random_symmetric_graph(rng: &mut Rng64) -> Csr {
    let n = 2 + rng.gen_u32_below(58);
    let pairs = rng.gen_index(300);
    let mut el = EdgeList::new(n);
    for _ in 0..pairs {
        let a = rng.gen_u32_below(n);
        let b = rng.gen_u32_below(n);
        if a != b {
            el.push(Edge::new(a, b, 1));
            el.push(Edge::new(b, a, 1));
        }
    }
    el.dedup_and_clean();
    el.to_csr()
}

#[test]
fn bfs_matches_reference() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let g = random_graph(&mut rng);
        let src = rng.gen_u32_below(g.num_vertices());
        let vcm = run_vcm(&g, &Bfs::new(src), 10_000);
        let expected = reference::bfs_levels(&g, src);
        assert_eq!(vcm.props.as_slice(), expected.as_slice(), "seed {seed}");
    }
}

#[test]
fn sssp_matches_dijkstra() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let g = random_graph(&mut rng);
        let src = rng.gen_u32_below(g.num_vertices());
        let vcm = run_vcm(&g, &Sssp::new(src), 10_000);
        let expected = reference::dijkstra(&g, src);
        assert_eq!(vcm.props.as_slice(), expected.as_slice(), "seed {seed}");
    }
}

#[test]
fn sswp_matches_reference() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let g = random_graph(&mut rng);
        let src = rng.gen_u32_below(g.num_vertices());
        let vcm = run_vcm(&g, &Sswp::new(src), 10_000);
        let expected = reference::widest_path(&g, src);
        assert_eq!(vcm.props.as_slice(), expected.as_slice(), "seed {seed}");
    }
}

#[test]
fn cc_matches_union_find() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let g = random_symmetric_graph(&mut rng);
        let vcm = run_vcm(&g, &ConnectedComponents::new(), 10_000);
        let expected = reference::weakly_connected_components(&g);
        assert_eq!(vcm.props.as_slice(), expected.as_slice(), "seed {seed}");
    }
}

#[test]
fn edge_centric_equals_vertex_centric() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let g = random_graph(&mut rng);
        let src = rng.gen_u32_below(g.num_vertices());
        let src_w = 1 + rng.gen_u32_below(63);
        let dst_w = 1 + rng.gen_u32_below(63);
        let vc = run_vcm(&g, &Sssp::new(src), 10_000);
        let ec = run_edge_centric(&g, &Sssp::new(src), 10_000, src_w, dst_w);
        assert_eq!(vc.props.as_slice(), ec.props.as_slice(), "seed {seed}");
        assert_eq!(vc.iterations, ec.iterations, "seed {seed}");
    }
}

#[test]
fn pagerank_matches_power_iteration() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let g = random_graph(&mut rng);
        // Compare a fixed number of iterations with epsilon=0 so both run the same count.
        let iters = 12;
        let pr = PageRank {
            damping: 0.85,
            epsilon: 0.0,
        };
        let vcm = run_vcm(&g, &pr, iters);
        let ranks = pr.ranks(&g, vcm.props.as_slice());
        let expected = reference::pagerank(&g, 0.85, iters);
        for v in 0..g.num_vertices() as usize {
            assert!(
                (ranks[v] - expected[v]).abs() < 1e-6,
                "seed {seed}: rank mismatch at {}: {} vs {}",
                v,
                ranks[v],
                expected[v]
            );
        }
    }
}
