//! Property-based equivalence tests: the VCM programs must agree with the textbook
//! reference implementations, and the edge-centric driver must agree with the
//! vertex-centric one.

use piccolo_algo::edge_centric::run_edge_centric;
use piccolo_algo::{reference, run_vcm, Bfs, ConnectedComponents, PageRank, Sssp, Sswp};
use piccolo_graph::{Csr, Edge, EdgeList};
use proptest::prelude::*;

/// Strategy producing a random directed graph with weights in 1..=255.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (2u32..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1u32..256), 1..500).prop_map(move |edges| {
            let mut el = EdgeList::new(n);
            for (s, d, w) in edges {
                if s != d {
                    el.push(Edge::new(s, d, w));
                }
            }
            el.dedup_and_clean();
            el.to_csr()
        })
    })
}

/// Strategy producing a random *symmetric* graph (for CC).
fn arb_symmetric_graph() -> impl Strategy<Value = Csr> {
    (2u32..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..300).prop_map(move |pairs| {
            let mut el = EdgeList::new(n);
            for (a, b) in pairs {
                if a != b {
                    el.push(Edge::new(a, b, 1));
                    el.push(Edge::new(b, a, 1));
                }
            }
            el.dedup_and_clean();
            el.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bfs_matches_reference(g in arb_graph(), src_sel in any::<u32>()) {
        let src = src_sel % g.num_vertices();
        let vcm = run_vcm(&g, &Bfs::new(src), 10_000);
        let expected = reference::bfs_levels(&g, src);
        prop_assert_eq!(vcm.props.as_slice(), expected.as_slice());
    }

    #[test]
    fn sssp_matches_dijkstra(g in arb_graph(), src_sel in any::<u32>()) {
        let src = src_sel % g.num_vertices();
        let vcm = run_vcm(&g, &Sssp::new(src), 10_000);
        let expected = reference::dijkstra(&g, src);
        prop_assert_eq!(vcm.props.as_slice(), expected.as_slice());
    }

    #[test]
    fn sswp_matches_reference(g in arb_graph(), src_sel in any::<u32>()) {
        let src = src_sel % g.num_vertices();
        let vcm = run_vcm(&g, &Sswp::new(src), 10_000);
        let expected = reference::widest_path(&g, src);
        prop_assert_eq!(vcm.props.as_slice(), expected.as_slice());
    }

    #[test]
    fn cc_matches_union_find(g in arb_symmetric_graph()) {
        let vcm = run_vcm(&g, &ConnectedComponents::new(), 10_000);
        let expected = reference::weakly_connected_components(&g);
        prop_assert_eq!(vcm.props.as_slice(), expected.as_slice());
    }

    #[test]
    fn edge_centric_equals_vertex_centric(
        g in arb_graph(),
        src_sel in any::<u32>(),
        src_w in 1u32..64,
        dst_w in 1u32..64,
    ) {
        let src = src_sel % g.num_vertices();
        let vc = run_vcm(&g, &Sssp::new(src), 10_000);
        let ec = run_edge_centric(&g, &Sssp::new(src), 10_000, src_w, dst_w);
        prop_assert_eq!(vc.props.as_slice(), ec.props.as_slice());
        prop_assert_eq!(vc.iterations, ec.iterations);
    }

    #[test]
    fn pagerank_matches_power_iteration(g in arb_graph()) {
        // Compare a fixed number of iterations with epsilon=0 so both run the same count.
        let iters = 12;
        let pr = PageRank { damping: 0.85, epsilon: 0.0 };
        let vcm = run_vcm(&g, &pr, iters);
        let ranks = pr.ranks(&g, vcm.props.as_slice());
        let expected = reference::pagerank(&g, 0.85, iters);
        for v in 0..g.num_vertices() as usize {
            prop_assert!((ranks[v] - expected[v]).abs() < 1e-6,
                "rank mismatch at {}: {} vs {}", v, ranks[v], expected[v]);
        }
    }
}
