//! Pins the compatibility contract between `piccolo-io` and the shared line
//! codec that moved into `piccolo-obs`.
//!
//! Two independent FNV-1a-64 implementations exist on purpose — `io::hash`
//! serves the `.pcsr` binary sections and must not depend on the observability
//! crate; `piccolo_obs::linecodec` frames journals and event logs. These tests
//! keep them interchangeable, so historical journals and `.pcsr` files stay
//! readable no matter which side computes the checksum.

use piccolo_io::{hash, journal};

#[test]
fn the_two_fnv64_implementations_agree() {
    let cases: [&[u8]; 6] = [
        b"",
        b"a",
        b"piccolo",
        b"{\"unit\":3}",
        &[0x00, 0xff, 0x80, 0x7f],
        b"the quick brown fox jumps over the lazy dog",
    ];
    for payload in cases {
        assert_eq!(
            hash::fnv64(payload),
            piccolo_obs::linecodec::fnv64(payload),
            "fnv64 divergence on {payload:?}"
        );
    }
}

#[test]
fn journal_reexports_are_the_obs_codec() {
    // Same function, not merely the same format: an io-encoded line decodes
    // through the obs path and vice versa, and the checksum prefix is the
    // io-side fnv64 of the payload.
    let payload = r#"{"unit":7,"result":"ok"}"#;
    let via_io = journal::encode_line(payload);
    let via_obs = piccolo_obs::linecodec::encode_line(payload);
    assert_eq!(via_io, via_obs);
    assert_eq!(piccolo_obs::linecodec::decode_line(&via_io), Some(payload));
    assert_eq!(journal::decode_line(&via_obs), Some(payload));
    let hex = via_io.split(' ').next().unwrap();
    assert_eq!(hex, format!("{:016x}", hash::fnv64(payload.as_bytes())));
}

#[test]
fn historical_journal_bytes_still_decode() {
    // A line captured from a pre-refactor journal file: the format is frozen.
    let payload = "first";
    let line = journal::encode_line(payload);
    assert_eq!(line.len(), 16 + 1 + payload.len());
    assert_eq!(journal::decode_line(&line), Some(payload));
}
