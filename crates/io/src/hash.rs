//! Streaming FNV-1a 64-bit hashing: section checksums for `.pcsr` files and the
//! content hash that keys the snapshot cache. Self-contained (no crates.io) and
//! stable across platforms — the checksum bytes are part of the on-disk format.

use std::io::Read;
use std::path::Path;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Hashes a whole byte slice in one call.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Streams a file through FNV-1a in 64 KiB chunks (never materializes the file).
pub fn hash_file(path: &Path) -> std::io::Result<u64> {
    let mut file = std::fs::File::open(path)?;
    let mut hasher = Fnv64::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            return Ok(hasher.finish());
        }
        hasher.update(&buf[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }
}
