//! Read-only file memory mapping, hand-rolled on `mmap(2)`.
//!
//! The out-of-core snapshot path maps `.pcsr` files instead of reading them into owned
//! heap memory, so a graph's topology costs address space proportional to the file —
//! paged in on demand — rather than resident heap proportional to `|V| + |E|`. No
//! `memmap`-style crate is used: on 64-bit Unix targets we declare the two syscalls we
//! need directly; everywhere else (and when [`mmap_enabled`] is off) [`Mapping::open`]
//! falls back to reading the file into an owned buffer, preserving behaviour.

use std::fs::File;
use std::io::Read;
use std::path::Path;

/// Environment variable that disables memory mapping when set to a non-empty value
/// other than `0`. With mapping disabled every load falls back to the owned
/// (`read`-into-`Vec`) path — used by CI to measure the owned-memory footprint that the
/// out-of-core cap is calibrated against.
pub const NO_MMAP_ENV: &str = "PICCOLO_NO_MMAP";

/// Whether memory mapping is enabled for this process (see [`NO_MMAP_ENV`]).
pub fn mmap_enabled() -> bool {
    match std::env::var(NO_MMAP_ENV) {
        Ok(v) => v.is_empty() || v == "0",
        Err(_) => true,
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        // `off_t` is 64-bit on every 64-bit Unix ABI, which the cfg above guarantees.
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

enum Backing {
    /// Owned fallback buffer (non-Unix targets, empty files, or mapping disabled).
    Owned(Vec<u8>),
    /// A live `mmap(2)` region, unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped { ptr: *const u8, len: usize },
}

/// A read-only view of a file's bytes: memory-mapped where possible, owned otherwise.
///
/// Dereference or call [`Mapping::bytes`] to access the contents. The mapping is
/// private (`MAP_PRIVATE`) and read-only; concurrent truncation of the underlying file
/// by another process is outside the supported contract (as with any mmap consumer).
pub struct Mapping {
    backing: Backing,
}

// SAFETY: the mapped region is read-only for the lifetime of the value and unmapped
// only on drop, so sharing/sending a `Mapping` is as safe as sharing `&[u8]`.
unsafe impl Send for Mapping {}
// SAFETY: same argument as `Send` directly above — the region is immutable for the
// value's lifetime, so concurrent shared reads are as safe as `&[u8]`.
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Opens `path`, mapping it when [`mmap_enabled`] and the platform supports it,
    /// otherwise reading it into an owned buffer.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = File::open(path)?;
        if mmap_enabled() {
            if let Some(mapped) = Self::try_map(&file)? {
                return Ok(mapped);
            }
        }
        Self::read_owned(file)
    }

    /// Opens `path` reading it fully into an owned buffer, never mapping.
    pub fn open_owned(path: &Path) -> std::io::Result<Self> {
        Self::read_owned(File::open(path)?)
    }

    fn read_owned(mut file: File) -> std::io::Result<Self> {
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(Self {
            backing: Backing::Owned(buf),
        })
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    fn try_map(file: &File) -> std::io::Result<Option<Self>> {
        use std::os::unix::io::AsRawFd;

        let len = file.metadata()?.len();
        if len == 0 {
            // Zero-length mappings are invalid; the owned fallback handles empty files.
            return Ok(None);
        }
        let len =
            usize::try_from(len).map_err(|_| std::io::Error::other("file too large to map"))?;
        // SAFETY: we request a fresh read-only private mapping of a file descriptor we
        // own; the kernel picks the address. The region is only ever read and is
        // unmapped exactly once, in `Drop`.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Some(Self {
            backing: Backing::Mapped {
                ptr: ptr as *const u8,
                len,
            },
        }))
    }

    #[cfg(not(all(unix, target_pointer_width = "64")))]
    fn try_map(_file: &File) -> std::io::Result<Option<Self>> {
        Ok(None)
    }

    /// The file contents.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            Backing::Owned(v) => v,
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { ptr, len } => {
                // SAFETY: `ptr`/`len` describe a live read-only mapping owned by `self`.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }

    /// Whether this view is an actual memory mapping (as opposed to the owned fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            Backing::Owned(_) => false,
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { .. } => true,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: `ptr`/`len` came from a successful `mmap` call and are unmapped
            // exactly once, here.
            unsafe {
                sys::munmap(ptr as *mut std::os::raw::c_void, len);
            }
        }
    }
}

impl std::ops::Deref for Mapping {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("piccolo-mmap-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp_file("basic", b"hello mapping");
        let m = Mapping::open(&path).unwrap();
        assert_eq!(&*m, b"hello mapping");
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(m.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn owned_fallback_matches() {
        let path = tmp_file("owned", b"same bytes either way");
        let m = Mapping::open_owned(&path).unwrap();
        assert!(!m.is_mapped());
        assert_eq!(m.bytes(), b"same bytes either way");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_uses_owned_fallback() {
        let path = tmp_file("empty", b"");
        let m = Mapping::open(&path).unwrap();
        assert!(!m.is_mapped());
        assert!(m.bytes().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        assert!(Mapping::open(Path::new("/nonexistent/piccolo-mmap")).is_err());
    }
}
