//! Typed ingestion errors with file/line/column context.

use piccolo_graph::GraphError;
use std::path::{Path, PathBuf};

/// Why a graph file could not be ingested. Every variant carries the path it concerns;
/// parse errors additionally carry the 1-based line (and, where known, field) position,
/// so a malformed file fails with an actionable message instead of a panic.
#[derive(Debug)]
pub enum IoError {
    /// An underlying filesystem error (open, read, write, rename).
    Io {
        /// The file the operation concerned.
        path: PathBuf,
        /// The operating-system error.
        source: std::io::Error,
    },
    /// A text-format parse error at a known position.
    Parse {
        /// The file being parsed.
        path: PathBuf,
        /// 1-based line number.
        line: u64,
        /// 1-based whitespace-separated field number on that line, where applicable.
        col: Option<u64>,
        /// What was wrong.
        msg: String,
    },
    /// A binary `.pcsr` structural error (bad magic, unsupported version, checksum
    /// mismatch, truncation, trailing bytes, implausible counts).
    Format {
        /// The snapshot file.
        path: PathBuf,
        /// What was wrong.
        msg: String,
    },
    /// The file decoded cleanly but described an inconsistent graph (for example a
    /// non-monotone offset array in a snapshot).
    Graph {
        /// The file the graph came from.
        path: PathBuf,
        /// The structural violation.
        source: GraphError,
    },
}

impl IoError {
    pub(crate) fn io(path: &Path, source: std::io::Error) -> Self {
        IoError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    pub(crate) fn parse(path: &Path, line: u64, col: Option<u64>, msg: impl Into<String>) -> Self {
        IoError::Parse {
            path: path.to_path_buf(),
            line,
            col,
            msg: msg.into(),
        }
    }

    pub(crate) fn format(path: &Path, msg: impl Into<String>) -> Self {
        IoError::Format {
            path: path.to_path_buf(),
            msg: msg.into(),
        }
    }

    pub(crate) fn graph(path: &Path, source: GraphError) -> Self {
        IoError::Graph {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            IoError::Parse {
                path,
                line,
                col,
                msg,
            } => match col {
                Some(col) => write!(f, "{}:{line}: field {col}: {msg}", path.display()),
                None => write!(f, "{}:{line}: {msg}", path.display()),
            },
            IoError::Format { path, msg } => write!(f, "{}: {msg}", path.display()),
            IoError::Graph { path, source } => {
                write!(f, "{}: inconsistent graph: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io { source, .. } => Some(source),
            IoError::Graph { source, .. } => Some(source),
            _ => None,
        }
    }
}
