//! The `.pcsr` binary CSR snapshot format (version 1).
//!
//! A `.pcsr` file is a deterministic little-endian serialization of a
//! [`piccolo_graph::Csr`]; writing the same graph always produces the same bytes, so
//! snapshot files can be byte-compared in CI. The full byte-for-byte specification
//! lives in `docs/pcsr-format.md`; the layout is:
//!
//! ```text
//! offset  size                 contents
//! 0       4                    magic "PCSR"
//! 4       4                    format version, u32 LE (currently 1)
//! 8       8                    num_vertices, u64 LE
//! 16      8                    num_edges, u64 LE
//! 24      8                    FNV-1a 64 checksum of bytes 0..24, u64 LE
//! 32      (V+1)*8              row_offsets, u64 LE each
//! ..      8                    FNV-1a 64 checksum of the row_offsets bytes
//! ..      E*4                  col_indices, u32 LE each
//! ..      8                    FNV-1a 64 checksum of the col_indices bytes
//! ..      E*4                  weights, u32 LE each
//! ..      8                    FNV-1a 64 checksum of the weights bytes
//! EOF                          (trailing bytes are an error)
//! ```
//!
//! The reader verifies every checksum and then routes the arrays through
//! [`Csr::try_from_raw`], so a corrupt or hand-edited snapshot fails with a typed
//! [`IoError`] — never a panic, never a silently wrong graph.

use crate::error::IoError;
use crate::hash::Fnv64;
use piccolo_graph::Csr;
use std::io::{Read, Write};
use std::path::Path;

/// File magic, the first four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"PCSR";
/// Current format version.
pub const VERSION: u32 = 1;

/// Cap on the vertex/edge counts a header may declare (2^40). Headers are
/// checksummed, so this only guards against truly pathological hand-written files
/// asking the reader to allocate petabytes.
const MAX_COUNT: u64 = 1 << 40;

/// Serializes `graph` into `w` in the layout above. The output is deterministic:
/// identical graphs produce identical bytes.
pub fn write_pcsr<W: Write>(mut w: W, graph: &Csr) -> std::io::Result<()> {
    let mut header = Vec::with_capacity(24);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&(graph.num_vertices() as u64).to_le_bytes());
    header.extend_from_slice(&graph.num_edges().to_le_bytes());
    let mut hasher = Fnv64::new();
    hasher.update(&header);
    header.extend_from_slice(&hasher.finish().to_le_bytes());
    w.write_all(&header)?;

    write_section(&mut w, graph.row_offsets().iter().map(|v| v.to_le_bytes()))?;
    write_section(&mut w, graph.col_indices().iter().map(|v| v.to_le_bytes()))?;
    write_section(&mut w, graph.weights().iter().map(|v| v.to_le_bytes()))?;
    Ok(())
}

/// Streams one checksummed section: the element bytes, then the FNV-1a of exactly
/// those bytes.
fn write_section<W: Write, const N: usize>(
    w: &mut W,
    elems: impl Iterator<Item = [u8; N]>,
) -> std::io::Result<()> {
    let mut hasher = Fnv64::new();
    let mut buf = Vec::with_capacity(64 * 1024);
    for bytes in elems {
        buf.extend_from_slice(&bytes);
        if buf.len() >= 64 * 1024 {
            hasher.update(&buf);
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    hasher.update(&buf);
    w.write_all(&buf)?;
    w.write_all(&hasher.finish().to_le_bytes())?;
    Ok(())
}

/// Writes `graph` to `path` (buffered), creating or truncating the file.
pub fn save_pcsr(path: &Path, graph: &Csr) -> Result<(), IoError> {
    let file = std::fs::File::create(path).map_err(|e| IoError::io(path, e))?;
    let mut w = std::io::BufWriter::new(file);
    write_pcsr(&mut w, graph).map_err(|e| IoError::io(path, e))?;
    w.flush().map_err(|e| IoError::io(path, e))
}

/// Reads and fully validates a snapshot from `r`; `origin` labels error messages.
pub fn read_pcsr<R: Read>(mut r: R, origin: &Path) -> Result<Csr, IoError> {
    let mut header = [0u8; 32];
    r.read_exact(&mut header)
        .map_err(|_| IoError::format(origin, "truncated header (need 32 bytes)"))?;
    if header[0..4] != MAGIC {
        return Err(IoError::format(origin, "bad magic (not a .pcsr file)"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(IoError::format(
            origin,
            format!("unsupported version {version} (this reader understands {VERSION})"),
        ));
    }
    let num_vertices = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let num_edges = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let stored = u64::from_le_bytes(header[24..32].try_into().unwrap());
    let mut hasher = Fnv64::new();
    hasher.update(&header[0..24]);
    if hasher.finish() != stored {
        return Err(IoError::format(origin, "header checksum mismatch"));
    }
    if num_vertices > u32::MAX as u64 {
        return Err(IoError::format(
            origin,
            format!("vertex count {num_vertices} exceeds the u32 id space"),
        ));
    }
    if num_vertices >= MAX_COUNT || num_edges >= MAX_COUNT {
        return Err(IoError::format(origin, "implausible header counts"));
    }

    let row_offsets: Vec<u64> = read_section(
        &mut r,
        num_vertices as usize + 1,
        origin,
        "row_offsets",
        u64::from_le_bytes,
    )?;
    let col_indices: Vec<u32> = read_section(
        &mut r,
        num_edges as usize,
        origin,
        "col_indices",
        u32::from_le_bytes,
    )?;
    let weights: Vec<u32> = read_section(
        &mut r,
        num_edges as usize,
        origin,
        "weights",
        u32::from_le_bytes,
    )?;

    let mut trailing = [0u8; 1];
    match r.read(&mut trailing) {
        Ok(0) => {}
        Ok(_) => {
            return Err(IoError::format(
                origin,
                "trailing bytes after the weights section",
            ))
        }
        Err(e) => return Err(IoError::io(origin, e)),
    }

    Csr::try_from_raw(row_offsets, col_indices, weights).map_err(|e| IoError::graph(origin, e))
}

/// Reads one checksummed section of `count` fixed-width elements.
fn read_section<R: Read, T, const N: usize>(
    r: &mut R,
    count: usize,
    origin: &Path,
    name: &str,
    decode: impl Fn([u8; N]) -> T,
) -> Result<Vec<T>, IoError> {
    // Clamp the up-front reservation: header counts are attacker-controlled (FNV has
    // no key, so a forged header can carry a valid checksum), and a count just under
    // MAX_COUNT must hit the truncated-section error below — not an allocation abort.
    let mut out = Vec::with_capacity(count.min(1 << 20));
    let mut hasher = Fnv64::new();
    let mut buf = vec![0u8; 64 * 1024 - (64 * 1024 % N)];
    let mut remaining = count * N;
    while remaining > 0 {
        let take = remaining.min(buf.len());
        r.read_exact(&mut buf[..take])
            .map_err(|_| IoError::format(origin, format!("truncated {name} section")))?;
        hasher.update(&buf[..take]);
        for chunk in buf[..take].chunks_exact(N) {
            out.push(decode(chunk.try_into().unwrap()));
        }
        remaining -= take;
    }
    let mut stored = [0u8; 8];
    r.read_exact(&mut stored)
        .map_err(|_| IoError::format(origin, format!("truncated {name} checksum")))?;
    if hasher.finish() != u64::from_le_bytes(stored) {
        return Err(IoError::format(origin, format!("{name} checksum mismatch")));
    }
    Ok(out)
}

/// Opens and reads a snapshot file.
pub fn load_pcsr(path: &Path) -> Result<Csr, IoError> {
    let file = std::fs::File::open(path).map_err(|e| IoError::io(path, e))?;
    read_pcsr(std::io::BufReader::new(file), path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo_graph::generate;
    use std::path::PathBuf;

    fn origin() -> PathBuf {
        PathBuf::from("test.pcsr")
    }

    fn bytes_of(g: &Csr) -> Vec<u8> {
        let mut out = Vec::new();
        write_pcsr(&mut out, g).unwrap();
        out
    }

    #[test]
    fn roundtrip_is_identity_and_deterministic() {
        let g = generate::kronecker(10, 6, 5);
        let bytes = bytes_of(&g);
        assert_eq!(bytes, bytes_of(&g), "serialization must be deterministic");
        let back = read_pcsr(&bytes[..], &origin()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Csr::try_from_raw(vec![0], vec![], vec![]).unwrap();
        let back = read_pcsr(&bytes_of(&g)[..], &origin()).unwrap();
        assert_eq!(back.num_vertices(), 0);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let g = generate::uniform(100, 400, 3);
        let good = bytes_of(&g);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(read_pcsr(&bad_magic[..], &origin()).is_err());

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(read_pcsr(&bad_version[..], &origin()).is_err());

        // Truncations at every section boundary fail cleanly.
        for cut in [10, 31, 40, good.len() - 1] {
            assert!(
                read_pcsr(&good[..cut], &origin()).is_err(),
                "cut at {cut} must fail"
            );
        }
        // Trailing garbage is rejected.
        let mut padded = good.clone();
        padded.push(0);
        assert!(read_pcsr(&padded[..], &origin()).is_err());
    }

    #[test]
    fn rejects_checksum_and_payload_corruption() {
        let g = generate::uniform(64, 256, 9);
        let good = bytes_of(&g);
        // Flip one byte in every region: header counts, offsets, cols, weights.
        for pos in [9, 40, good.len() / 2, good.len() - 12] {
            let mut bad = good.clone();
            bad[pos] ^= 0xff;
            let err = read_pcsr(&bad[..], &origin()).expect_err("corruption must be detected");
            let msg = format!("{err}");
            assert!(
                msg.contains("checksum") || msg.contains("inconsistent") || msg.contains("counts"),
                "pos {pos}: {msg}"
            );
        }
    }

    #[test]
    fn forged_header_with_valid_checksum_fails_without_huge_allocation() {
        // FNV is keyless, so a hand-written header can always carry a "valid"
        // checksum. A count just under MAX_COUNT must fail on section truncation,
        // not abort the process trying to reserve terabytes.
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&1024u64.to_le_bytes());
        header.extend_from_slice(&(1u64 << 39).to_le_bytes()); // 2^39 "edges"
        let mut h = Fnv64::new();
        h.update(&header);
        header.extend_from_slice(&h.finish().to_le_bytes());
        let err = read_pcsr(&header[..], &origin()).expect_err("must fail cleanly");
        assert!(format!("{err}").contains("truncated"), "{err}");
    }

    #[test]
    fn rejects_implausible_counts_before_allocating() {
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&u64::MAX.to_le_bytes());
        header.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut h = Fnv64::new();
        h.update(&header);
        header.extend_from_slice(&h.finish().to_le_bytes());
        assert!(read_pcsr(&header[..], &origin()).is_err());
    }
}
