//! The `.pcsr` binary CSR snapshot format (version 1).
//!
//! A `.pcsr` file is a deterministic little-endian serialization of a
//! [`piccolo_graph::Csr`]; writing the same graph always produces the same bytes, so
//! snapshot files can be byte-compared in CI. The full byte-for-byte specification
//! lives in `docs/pcsr-format.md`; the layout is:
//!
//! ```text
//! offset  size                 contents
//! 0       4                    magic "PCSR"
//! 4       4                    format version, u32 LE (currently 1)
//! 8       8                    num_vertices, u64 LE
//! 16      8                    num_edges, u64 LE
//! 24      8                    FNV-1a 64 checksum of bytes 0..24, u64 LE
//! 32      (V+1)*8              row_offsets, u64 LE each
//! ..      8                    FNV-1a 64 checksum of the row_offsets bytes
//! ..      E*4                  col_indices, u32 LE each
//! ..      8                    FNV-1a 64 checksum of the col_indices bytes
//! ..      E*4                  weights, u32 LE each
//! ..      8                    FNV-1a 64 checksum of the weights bytes
//! EOF                          (trailing bytes are an error)
//! ```
//!
//! The reader verifies every checksum and then routes the arrays through
//! [`Csr::try_from_raw`], so a corrupt or hand-edited snapshot fails with a typed
//! [`IoError`] — never a panic, never a silently wrong graph.

use crate::bytes::{le_array, le_u32, le_u64};
use crate::error::IoError;
use crate::hash::Fnv64;
use crate::mmap::{mmap_enabled, Mapping};
use piccolo_graph::{Csr, SharedSlice};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// File magic, the first four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"PCSR";
/// Current format version.
pub const VERSION: u32 = 1;

/// Cap on the vertex/edge counts a header may declare (2^40). Headers are
/// checksummed, so this only guards against truly pathological hand-written files
/// asking the reader to allocate petabytes.
const MAX_COUNT: u64 = 1 << 40;

/// Serializes `graph` into `w` in the layout above. The output is deterministic:
/// identical graphs produce identical bytes.
pub fn write_pcsr<W: Write>(mut w: W, graph: &Csr) -> std::io::Result<()> {
    write_pcsr_raw(
        &mut w,
        graph.num_vertices() as u64,
        graph.num_edges(),
        graph.row_offsets().iter().copied(),
        graph.col_indices(),
        graph.weights(),
    )
}

/// Writes the `.pcsr` framing around raw sections. Used by [`write_pcsr`] and by the
/// partitioned format ([`crate::partition`]), whose tiles carry *global* column ids
/// that would not pass a standalone [`Csr`] validation.
pub(crate) fn write_pcsr_raw<W: Write>(
    w: &mut W,
    num_vertices: u64,
    num_edges: u64,
    row_offsets: impl Iterator<Item = u64>,
    col_indices: &[u32],
    weights: &[u32],
) -> std::io::Result<()> {
    let mut header = Vec::with_capacity(24);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&num_vertices.to_le_bytes());
    header.extend_from_slice(&num_edges.to_le_bytes());
    let mut hasher = Fnv64::new();
    hasher.update(&header);
    header.extend_from_slice(&hasher.finish().to_le_bytes());
    w.write_all(&header)?;

    write_section(w, row_offsets.map(|v| v.to_le_bytes()))?;
    write_section(w, col_indices.iter().map(|v| v.to_le_bytes()))?;
    write_section(w, weights.iter().map(|v| v.to_le_bytes()))?;
    Ok(())
}

/// Streams one checksummed section: the element bytes, then the FNV-1a of exactly
/// those bytes.
fn write_section<W: Write, const N: usize>(
    w: &mut W,
    elems: impl Iterator<Item = [u8; N]>,
) -> std::io::Result<()> {
    let mut hasher = Fnv64::new();
    let mut buf = Vec::with_capacity(64 * 1024);
    for bytes in elems {
        buf.extend_from_slice(&bytes);
        if buf.len() >= 64 * 1024 {
            hasher.update(&buf);
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    hasher.update(&buf);
    w.write_all(&buf)?;
    w.write_all(&hasher.finish().to_le_bytes())?;
    Ok(())
}

/// Writes `graph` to `path` (buffered), creating or truncating the file.
pub fn save_pcsr(path: &Path, graph: &Csr) -> Result<(), IoError> {
    let file = std::fs::File::create(path).map_err(|e| IoError::io(path, e))?;
    let mut w = std::io::BufWriter::new(file);
    write_pcsr(&mut w, graph).map_err(|e| IoError::io(path, e))?;
    w.flush().map_err(|e| IoError::io(path, e))
}

/// The validated counts from a `.pcsr` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcsrHeader {
    /// Declared vertex count (fits the `u32` id space).
    pub num_vertices: u64,
    /// Declared edge count.
    pub num_edges: u64,
}

impl PcsrHeader {
    /// Exact file size a snapshot with these counts must have.
    pub fn expected_len(&self) -> u64 {
        32 + (self.num_vertices + 1) * 8 + 8 + self.num_edges * 4 + 8 + self.num_edges * 4 + 8
    }
}

/// Parses and validates the 32-byte header: magic, version, checksum, count bounds.
pub fn parse_header(header: &[u8], origin: &Path) -> Result<PcsrHeader, IoError> {
    if header.len() < 32 {
        return Err(IoError::format(origin, "truncated header (need 32 bytes)"));
    }
    if header[0..4] != MAGIC {
        return Err(IoError::format(origin, "bad magic (not a .pcsr file)"));
    }
    let version = le_u32(header, 4);
    if version != VERSION {
        return Err(IoError::format(
            origin,
            format!("unsupported version {version} (this reader understands {VERSION})"),
        ));
    }
    let num_vertices = le_u64(header, 8);
    let num_edges = le_u64(header, 16);
    let stored = le_u64(header, 24);
    let mut hasher = Fnv64::new();
    hasher.update(&header[0..24]);
    if hasher.finish() != stored {
        return Err(IoError::format(origin, "header checksum mismatch"));
    }
    if num_vertices > u32::MAX as u64 {
        return Err(IoError::format(
            origin,
            format!("vertex count {num_vertices} exceeds the u32 id space"),
        ));
    }
    if num_vertices >= MAX_COUNT || num_edges >= MAX_COUNT {
        return Err(IoError::format(origin, "implausible header counts"));
    }
    Ok(PcsrHeader {
        num_vertices,
        num_edges,
    })
}

/// Reads and fully validates a snapshot from `r`; `origin` labels error messages.
pub fn read_pcsr<R: Read>(mut r: R, origin: &Path) -> Result<Csr, IoError> {
    let mut header = [0u8; 32];
    r.read_exact(&mut header)
        .map_err(|_| IoError::format(origin, "truncated header (need 32 bytes)"))?;
    let PcsrHeader {
        num_vertices,
        num_edges,
    } = parse_header(&header, origin)?;

    let row_offsets: Vec<u64> = read_section(
        &mut r,
        num_vertices as usize + 1,
        origin,
        "row_offsets",
        u64::from_le_bytes,
    )?;
    let col_indices: Vec<u32> = read_section(
        &mut r,
        num_edges as usize,
        origin,
        "col_indices",
        u32::from_le_bytes,
    )?;
    let weights: Vec<u32> = read_section(
        &mut r,
        num_edges as usize,
        origin,
        "weights",
        u32::from_le_bytes,
    )?;

    let mut trailing = [0u8; 1];
    match r.read(&mut trailing) {
        Ok(0) => {}
        Ok(_) => {
            return Err(IoError::format(
                origin,
                "trailing bytes after the weights section",
            ))
        }
        Err(e) => return Err(IoError::io(origin, e)),
    }

    Csr::try_from_raw(row_offsets, col_indices, weights).map_err(|e| IoError::graph(origin, e))
}

/// Reads one checksummed section of `count` fixed-width elements.
fn read_section<R: Read, T, const N: usize>(
    r: &mut R,
    count: usize,
    origin: &Path,
    name: &str,
    decode: impl Fn([u8; N]) -> T,
) -> Result<Vec<T>, IoError> {
    // Clamp the up-front reservation: header counts are attacker-controlled (FNV has
    // no key, so a forged header can carry a valid checksum), and a count just under
    // MAX_COUNT must hit the truncated-section error below — not an allocation abort.
    let mut out = Vec::with_capacity(count.min(1 << 20));
    let mut hasher = Fnv64::new();
    let mut buf = vec![0u8; 64 * 1024 - (64 * 1024 % N)];
    let mut remaining = count * N;
    while remaining > 0 {
        let take = remaining.min(buf.len());
        r.read_exact(&mut buf[..take])
            .map_err(|_| IoError::format(origin, format!("truncated {name} section")))?;
        hasher.update(&buf[..take]);
        for chunk in buf[..take].chunks_exact(N) {
            out.push(decode(le_array(chunk, 0)));
        }
        remaining -= take;
    }
    let mut stored = [0u8; 8];
    r.read_exact(&mut stored)
        .map_err(|_| IoError::format(origin, format!("truncated {name} checksum")))?;
    if hasher.finish() != u64::from_le_bytes(stored) {
        return Err(IoError::format(origin, format!("{name} checksum mismatch")));
    }
    Ok(out)
}

/// Opens and reads a snapshot file into owned memory (never maps).
pub fn load_pcsr_owned(path: &Path) -> Result<Csr, IoError> {
    let file = std::fs::File::open(path).map_err(|e| IoError::io(path, e))?;
    read_pcsr(std::io::BufReader::new(file), path)
}

/// Opens and reads a snapshot file.
///
/// When memory mapping is enabled (see [`crate::mmap::mmap_enabled`]) the returned
/// graph borrows its sections zero-copy from a mapping of the file; otherwise it is
/// read into owned memory. Either way the full validation of [`read_pcsr`] applies and
/// the resulting [`Csr`] is bit-identical.
pub fn load_pcsr(path: &Path) -> Result<Csr, IoError> {
    if mmap_enabled() {
        MappedPcsr::open(path)?.to_csr()
    } else {
        load_pcsr_owned(path)
    }
}

/// One lazily-verified section of a mapped snapshot.
struct MappedSection<T: Send + Sync + 'static> {
    /// Byte range of the element data within the file; the 8-byte checksum follows.
    data: std::ops::Range<usize>,
    /// Set on first touch: the verified zero-copy (or decoded) view, or the
    /// verification error message.
    cell: OnceLock<Result<SharedSlice<T>, String>>,
}

impl<T: Send + Sync + 'static> MappedSection<T> {
    fn new(data: std::ops::Range<usize>) -> Self {
        Self {
            data,
            cell: OnceLock::new(),
        }
    }
}

/// Reinterprets little-endian element bytes as a typed slice when the platform allows
/// a zero-copy view (little-endian target, aligned pointer); `None` otherwise.
fn cast_le_slice<T: Copy>(bytes: &[u8]) -> Option<&[T]> {
    if cfg!(not(target_endian = "little")) {
        return None;
    }
    let size = std::mem::size_of::<T>();
    if !bytes.len().is_multiple_of(size)
        || !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>())
    {
        return None;
    }
    // SAFETY: alignment and length were just checked; `T` here is only ever `u32` or
    // `u64` (plain-old-data, any bit pattern valid), and on little-endian targets the
    // in-memory representation matches the file's little-endian encoding.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) })
}

/// A `.pcsr` snapshot opened through [`Mapping`], with sections verified lazily.
///
/// The 32-byte header and the exact file length are validated eagerly on
/// [`MappedPcsr::open`]. Each section's checksum is verified on *first touch* of that
/// section (`row_offsets()` / `col_indices()` / `weights()`), and the verdict is
/// cached: a checksum flip in, say, the weights section is only reported when weights
/// are first accessed — and then on every subsequent access. On little-endian targets
/// the returned [`SharedSlice`]s borrow directly from the mapping (zero copy); the
/// mapping stays alive as long as any view (or a [`Csr`] built from them) does.
pub struct MappedPcsr {
    map: Arc<Mapping>,
    origin: PathBuf,
    header: PcsrHeader,
    row_offsets: MappedSection<u64>,
    col_indices: MappedSection<u32>,
    weights: MappedSection<u32>,
}

impl std::fmt::Debug for MappedPcsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedPcsr")
            .field("origin", &self.origin)
            .field("num_vertices", &self.header.num_vertices)
            .field("num_edges", &self.header.num_edges)
            .field("mapped", &self.map.is_mapped())
            .finish()
    }
}

impl MappedPcsr {
    /// Opens `path`, validating the header and total file length. Section payloads are
    /// *not* touched (and on a real mapping, not paged in) until first access.
    pub fn open(path: &Path) -> Result<Self, IoError> {
        let map = Mapping::open(path).map_err(|e| IoError::io(path, e))?;
        Self::from_mapping(Arc::new(map), path)
    }

    /// Like [`MappedPcsr::open`] but never maps — reads the file into an owned buffer.
    /// Useful to force the owned path regardless of [`mmap_enabled`].
    pub fn open_owned(path: &Path) -> Result<Self, IoError> {
        let map = Mapping::open_owned(path).map_err(|e| IoError::io(path, e))?;
        Self::from_mapping(Arc::new(map), path)
    }

    fn from_mapping(map: Arc<Mapping>, path: &Path) -> Result<Self, IoError> {
        let bytes = map.bytes();
        let header = parse_header(bytes, path)?;
        let expected = header.expected_len();
        if (bytes.len() as u64) < expected {
            return Err(IoError::format(
                path,
                format!(
                    "truncated snapshot: {} bytes, header declares {expected}",
                    bytes.len()
                ),
            ));
        }
        if bytes.len() as u64 > expected {
            return Err(IoError::format(
                path,
                "trailing bytes after the weights section",
            ));
        }
        let ro_len = (header.num_vertices as usize + 1) * 8;
        let ci_len = header.num_edges as usize * 4;
        let ro_start = 32;
        let ci_start = ro_start + ro_len + 8;
        let w_start = ci_start + ci_len + 8;
        Ok(Self {
            map,
            origin: path.to_path_buf(),
            header,
            row_offsets: MappedSection::new(ro_start..ro_start + ro_len),
            col_indices: MappedSection::new(ci_start..ci_start + ci_len),
            weights: MappedSection::new(w_start..w_start + ci_len),
        })
    }

    /// The validated header counts.
    pub fn header(&self) -> PcsrHeader {
        self.header
    }

    /// Whether the underlying bytes are an actual memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    fn section<T: Copy + Send + Sync + 'static>(
        &self,
        sec: &MappedSection<T>,
        name: &str,
        decode: fn(&[u8]) -> Vec<T>,
    ) -> Result<SharedSlice<T>, IoError> {
        let out = sec.cell.get_or_init(|| {
            let bytes = self.map.bytes();
            let data = &bytes[sec.data.clone()];
            let stored_at = sec.data.end;
            let stored = le_u64(bytes, stored_at);
            let mut hasher = Fnv64::new();
            hasher.update(data);
            if hasher.finish() != stored {
                return Err(format!("{name} checksum mismatch"));
            }
            let range = sec.data.clone();
            match cast_le_slice::<T>(data) {
                Some(_) => Ok(SharedSlice::from_arc_with(Arc::clone(&self.map), |m| {
                    // Recompute inside the projection so the borrow ties to the owner
                    // `Arc`, not to `self`. The cast succeeded above on the same bytes.
                    // lint: allow(panic-policy, the identical cast succeeded two lines up on the same bytes; the projection closure has no error channel)
                    cast_le_slice::<T>(&m.bytes()[range]).unwrap()
                })),
                None => Ok(SharedSlice::from_vec(decode(data))),
            }
        });
        match out {
            Ok(view) => Ok(view.clone()),
            Err(msg) => Err(IoError::format(&self.origin, msg.clone())),
        }
    }

    /// The row-offset section, checksum-verified on first touch.
    pub fn row_offsets(&self) -> Result<SharedSlice<u64>, IoError> {
        self.section(&self.row_offsets, "row_offsets", |data| {
            data.chunks_exact(8).map(|c| le_u64(c, 0)).collect()
        })
    }

    /// The column-index section, checksum-verified on first touch.
    pub fn col_indices(&self) -> Result<SharedSlice<u32>, IoError> {
        self.section(&self.col_indices, "col_indices", decode_u32)
    }

    /// The weights section, checksum-verified on first touch.
    pub fn weights(&self) -> Result<SharedSlice<u32>, IoError> {
        self.section(&self.weights, "weights", decode_u32)
    }

    /// Builds a [`Csr`] borrowing all three sections (verifying any not yet touched),
    /// running the same structural validation as the owned reader.
    pub fn to_csr(&self) -> Result<Csr, IoError> {
        let ro = self.row_offsets()?;
        let ci = self.col_indices()?;
        let w = self.weights()?;
        Csr::try_from_shared(ro, ci, w).map_err(|e| IoError::graph(&self.origin, e))
    }
}

fn decode_u32(data: &[u8]) -> Vec<u32> {
    data.chunks_exact(4).map(|c| le_u32(c, 0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo_graph::generate;
    use std::path::PathBuf;

    fn origin() -> PathBuf {
        PathBuf::from("test.pcsr")
    }

    fn bytes_of(g: &Csr) -> Vec<u8> {
        let mut out = Vec::new();
        write_pcsr(&mut out, g).unwrap();
        out
    }

    #[test]
    fn roundtrip_is_identity_and_deterministic() {
        let g = generate::kronecker(10, 6, 5);
        let bytes = bytes_of(&g);
        assert_eq!(bytes, bytes_of(&g), "serialization must be deterministic");
        let back = read_pcsr(&bytes[..], &origin()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Csr::try_from_raw(vec![0], vec![], vec![]).unwrap();
        let back = read_pcsr(&bytes_of(&g)[..], &origin()).unwrap();
        assert_eq!(back.num_vertices(), 0);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let g = generate::uniform(100, 400, 3);
        let good = bytes_of(&g);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(read_pcsr(&bad_magic[..], &origin()).is_err());

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(read_pcsr(&bad_version[..], &origin()).is_err());

        // Truncations at every section boundary fail cleanly.
        for cut in [10, 31, 40, good.len() - 1] {
            assert!(
                read_pcsr(&good[..cut], &origin()).is_err(),
                "cut at {cut} must fail"
            );
        }
        // Trailing garbage is rejected.
        let mut padded = good;
        padded.push(0);
        assert!(read_pcsr(&padded[..], &origin()).is_err());
    }

    #[test]
    fn rejects_checksum_and_payload_corruption() {
        let g = generate::uniform(64, 256, 9);
        let good = bytes_of(&g);
        // Flip one byte in every region: header counts, offsets, cols, weights.
        for pos in [9, 40, good.len() / 2, good.len() - 12] {
            let mut bad = good.clone();
            bad[pos] ^= 0xff;
            let err = read_pcsr(&bad[..], &origin()).expect_err("corruption must be detected");
            let msg = format!("{err}");
            assert!(
                msg.contains("checksum") || msg.contains("inconsistent") || msg.contains("counts"),
                "pos {pos}: {msg}"
            );
        }
    }

    #[test]
    fn forged_header_with_valid_checksum_fails_without_huge_allocation() {
        // FNV is keyless, so a hand-written header can always carry a "valid"
        // checksum. A count just under MAX_COUNT must fail on section truncation,
        // not abort the process trying to reserve terabytes.
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&1024u64.to_le_bytes());
        header.extend_from_slice(&(1u64 << 39).to_le_bytes()); // 2^39 "edges"
        let mut h = Fnv64::new();
        h.update(&header);
        header.extend_from_slice(&h.finish().to_le_bytes());
        let err = read_pcsr(&header[..], &origin()).expect_err("must fail cleanly");
        assert!(format!("{err}").contains("truncated"), "{err}");
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("piccolo-pcsr-{}-{name}", std::process::id()))
    }

    #[test]
    fn mapped_reader_matches_owned_reader() {
        let g = generate::kronecker(9, 7, 11);
        let path = tmp_path("mapped-match.pcsr");
        save_pcsr(&path, &g).unwrap();

        let mapped = MappedPcsr::open(&path).unwrap();
        assert_eq!(mapped.header().num_vertices, g.num_vertices() as u64);
        assert_eq!(mapped.header().num_edges, g.num_edges());
        let via_map = mapped.to_csr().unwrap();
        let via_read = load_pcsr_owned(&path).unwrap();
        assert_eq!(via_map, via_read);
        assert_eq!(via_map, g);

        // Zero-copy on mapped little-endian targets: the row-offset slice points into
        // the file mapping, not the heap.
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        assert!(mapped.is_mapped());

        // The Csr (and its clones) keep the mapping alive after the reader is gone.
        drop(mapped);
        assert_eq!(via_map.num_edges(), g.num_edges());
        let clone = via_map.clone();
        drop(via_map);
        assert_eq!(clone, g);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_reader_verifies_sections_lazily_on_first_touch() {
        let g = generate::uniform(200, 800, 21);
        let mut bytes = bytes_of(&g);
        // Flip one byte inside the *weights* payload (last section, before its final
        // 8-byte checksum).
        let w_payload = bytes.len() - 10;
        bytes[w_payload] ^= 0xff;
        let path = tmp_path("lazy-corrupt.pcsr");
        std::fs::write(&path, &bytes).unwrap();

        let mapped = MappedPcsr::open(&path).expect("header is intact, open must succeed");
        // Untouched sections verify clean.
        assert!(mapped.row_offsets().is_ok());
        assert!(mapped.col_indices().is_ok());
        // First touch of the corrupted section reports the flip...
        let err = mapped
            .weights()
            .expect_err("corrupt weights must be detected");
        assert!(format!("{err}").contains("weights checksum"), "{err}");
        // ...and so does every later touch (the verdict is cached, not forgotten).
        assert!(mapped.weights().is_err());
        assert!(mapped.to_csr().is_err());

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_pcsr_respects_the_no_mmap_knob_with_identical_results() {
        let g = generate::kronecker(8, 5, 3);
        let path = tmp_path("knob.pcsr");
        save_pcsr(&path, &g).unwrap();
        let mapped = MappedPcsr::open(&path).unwrap().to_csr().unwrap();
        let owned = MappedPcsr::open_owned(&path).unwrap();
        assert!(!owned.is_mapped());
        assert_eq!(mapped, owned.to_csr().unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_reader_rejects_truncation_and_trailing_bytes_eagerly() {
        let g = generate::uniform(50, 200, 7);
        let good = bytes_of(&g);
        let path = tmp_path("sized.pcsr");

        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(
            MappedPcsr::open(&path).is_err(),
            "truncation must fail open"
        );

        let mut padded = good.clone();
        padded.push(0);
        std::fs::write(&path, &padded).unwrap();
        assert!(
            MappedPcsr::open(&path).is_err(),
            "trailing bytes must fail open"
        );

        std::fs::write(&path, &good).unwrap();
        assert!(MappedPcsr::open(&path).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_implausible_counts_before_allocating() {
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&u64::MAX.to_le_bytes());
        header.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut h = Fnv64::new();
        h.update(&header);
        header.extend_from_slice(&h.finish().to_le_bytes());
        assert!(read_pcsr(&header[..], &origin()).is_err());
    }
}
