//! Convert, inspect and validate graph files.
//!
//! ```text
//! graphtool convert <in> <out.pcsr> [--format edgelist|snap|mtx]
//! graphtool info    <file>          [--format edgelist|snap|mtx]
//! graphtool verify  <file.pcsr>
//! ```
//!
//! `convert` parses a text graph (or re-validates an existing snapshot) and writes a
//! `.pcsr` snapshot; `info` prints vertex/edge counts and degree statistics for any
//! supported file; `verify` fully checks a snapshot's magic, version, checksums and
//! structural invariants. Exit codes: 0 success, 1 bad input file, 2 usage error.

use piccolo_graph::Csr;
use piccolo_io::{load_pcsr, load_text, save_pcsr, IoError, TextFormat};
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: graphtool convert <in> <out.pcsr> [--format edgelist|snap|mtx]\n       \
         graphtool info <file> [--format edgelist|snap|mtx]\n       \
         graphtool verify <file.pcsr>"
    );
    std::process::exit(2);
}

fn fail(err: &IoError) -> ! {
    eprintln!("graphtool: {err}");
    std::process::exit(1);
}

fn is_pcsr(path: &Path) -> bool {
    path.extension().and_then(|e| e.to_str()) == Some("pcsr")
}

/// Loads any supported file: `.pcsr` directly, everything else through the text
/// parsers (no snapshot cache — the tool always reads what it is pointed at).
fn load_any(path: &Path, format: Option<TextFormat>) -> Result<Csr, IoError> {
    if is_pcsr(path) {
        load_pcsr(path)
    } else {
        let format = format.unwrap_or_else(|| TextFormat::from_path(path));
        Ok(load_text(path, format)?.to_csr())
    }
}

fn print_info(path: &Path, g: &Csr) {
    println!("file:        {}", path.display());
    println!("vertices:    {}", g.num_vertices());
    println!("edges:       {}", g.num_edges());
    println!("avg degree:  {:.3}", g.average_degree());
    println!("max degree:  {}", g.max_degree());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut format: Option<TextFormat> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(|v| TextFormat::parse_name(v)) {
                Some(Some(f)) => format = Some(f),
                _ => usage(),
            },
            other if other.starts_with("--") => usage(),
            other => positional.push(other),
        }
    }

    match positional.as_slice() {
        ["convert", input, output] => {
            let input = Path::new(input);
            let output = Path::new(output);
            let g = load_any(input, format).unwrap_or_else(|e| fail(&e));
            save_pcsr(output, &g).unwrap_or_else(|e| fail(&e));
            println!(
                "wrote {} ({} vertices, {} edges)",
                output.display(),
                g.num_vertices(),
                g.num_edges()
            );
        }
        ["info", file] => {
            let file = Path::new(file);
            let g = load_any(file, format).unwrap_or_else(|e| fail(&e));
            print_info(file, &g);
        }
        ["verify", file] => {
            let file = Path::new(file);
            if !is_pcsr(file) {
                eprintln!("graphtool: verify expects a .pcsr file");
                std::process::exit(2);
            }
            // load_pcsr checks magic, version, every section checksum, and the CSR
            // structural invariants (monotone offsets, in-range columns).
            let g = load_pcsr(file).unwrap_or_else(|e| fail(&e));
            println!(
                "OK: {} ({} vertices, {} edges, checksums valid)",
                file.display(),
                g.num_vertices(),
                g.num_edges()
            );
        }
        _ => usage(),
    }
}
