//! Checksummed append-only journal lines.
//!
//! The campaign run journal (`piccolo::campaign::journal`) records one completed work
//! unit per line so a killed or partially-failed campaign can resume in the time of its
//! missing units. The *line format* — the same integrity discipline as the `.pcsr`
//! section checksums ([`crate::hash`]), applied to a text file:
//!
//! ```text
//! <16 lowercase hex digits of FNV-1a-64 over the payload bytes> <payload>\n
//! ```
//!
//! The payload is an opaque single-line string (the campaign layer stores compact
//! JSON). A reader verifies each line's checksum and **ignores** lines that fail —
//! a torn final line from a killed process, or a flipped byte anywhere, costs exactly
//! the entries it touches, never the whole journal. Appends are atomic per line at the
//! OS level for the short lines this pipeline writes (`O_APPEND` + one `write`).
//!
//! The implementation lives in [`piccolo_obs::linecodec`] — the same codec also frames
//! the `piccolo-events/v1` observability stream, and `piccolo-obs` sits below this
//! crate in the dependency graph (so `graphtool` can validate event logs). This module
//! re-exports it unchanged: the on-disk journal format is byte-for-byte what it has
//! always been, and `piccolo_io::journal::*` remains the canonical path for journal
//! callers. A parity test (`tests/obs_compat.rs`) pins the shared codec's checksum to
//! [`crate::hash::fnv64`].

pub use piccolo_obs::linecodec::{append_line, decode_line, encode_line, read_lines, JournalLines};

#[cfg(test)]
mod tests {
    use super::*;

    // The full codec behavior (roundtrip, corrupt-line tolerance, multiline
    // rejection) is tested where the implementation lives, in
    // `piccolo_obs::linecodec`; here we pin the delegation itself.
    #[test]
    fn journal_lines_still_roundtrip_through_the_reexported_codec() {
        let line = encode_line(r#"{"unit":3}"#);
        assert_eq!(decode_line(&line), Some(r#"{"unit":3}"#));
        assert_eq!(decode_line("not a journal line"), None);
    }
}
