//! Checksummed append-only journal lines.
//!
//! The campaign run journal (`piccolo::campaign::journal`) records one completed work
//! unit per line so a killed or partially-failed campaign can resume in the time of its
//! missing units. This module owns the *line format* — the same integrity discipline as
//! the `.pcsr` section checksums ([`crate::hash`]), applied to a text file:
//!
//! ```text
//! <16 lowercase hex digits of FNV-1a-64 over the payload bytes> <payload>\n
//! ```
//!
//! The payload is an opaque single-line string (the campaign layer stores compact
//! JSON). A reader verifies each line's checksum and **ignores** lines that fail —
//! a torn final line from a killed process, or a flipped byte anywhere, costs exactly
//! the entries it touches, never the whole journal. Appends are atomic per line at the
//! OS level for the short lines this pipeline writes (`O_APPEND` + one `write`).

use crate::hash::fnv64;
use std::io::{BufRead, Write};
use std::path::Path;

/// Width of the hex checksum prefix (FNV-1a 64 in lowercase hex).
const CHECKSUM_HEX: usize = 16;

/// Encodes one journal line (without trailing newline): checksum prefix + payload.
///
/// # Panics
///
/// Panics if `payload` contains a newline — a journal entry is one line by contract
/// (the campaign layer writes compact JSON, which never contains raw newlines).
pub fn encode_line(payload: &str) -> String {
    assert!(
        !payload.contains('\n') && !payload.contains('\r'),
        "journal payloads must be single-line"
    );
    format!("{:016x} {payload}", fnv64(payload.as_bytes()))
}

/// Decodes one journal line: returns the payload if the checksum verifies, `None` for
/// anything malformed (wrong prefix length, bad hex, checksum mismatch, missing
/// separator). Trailing `\n`/`\r\n` is tolerated.
pub fn decode_line(line: &str) -> Option<&str> {
    let line = line.strip_suffix('\n').unwrap_or(line);
    let line = line.strip_suffix('\r').unwrap_or(line);
    if line.len() < CHECKSUM_HEX + 1 || line.as_bytes()[CHECKSUM_HEX] != b' ' {
        return None;
    }
    let (hex, rest) = line.split_at(CHECKSUM_HEX);
    let payload = &rest[1..];
    // The encoder emits lowercase hex only; reject uppercase so a case-flipped
    // checksum byte (a single-bit flip on an ASCII letter) cannot still verify.
    if !hex
        .bytes()
        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    let stored = u64::from_str_radix(hex, 16).ok()?;
    (stored == fnv64(payload.as_bytes())).then_some(payload)
}

/// Appends one encoded line (payload + checksum + `\n`) to `out` in a single write.
pub fn append_line(out: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let mut line = encode_line(payload);
    line.push('\n');
    out.write_all(line.as_bytes())
}

/// Result of scanning a journal file: the payloads whose checksums verified, in file
/// order, plus the number of lines that were dropped as corrupt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalLines {
    /// Verified payloads, in file order.
    pub payloads: Vec<String>,
    /// Lines whose checksum (or framing) did not verify — ignored, never fatal.
    pub corrupt: usize,
}

/// Reads a journal file, verifying every line's checksum. Corrupt lines — a torn
/// final line from a killed writer, a checksum mismatch, or bytes that are not valid
/// UTF-8 (a flipped high bit must cost one line, never the whole journal) — are
/// counted and skipped; empty lines are ignored outright. I/O errors (other than the
/// caller-handled missing file) propagate.
pub fn read_lines(path: &Path) -> std::io::Result<JournalLines> {
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    let mut out = JournalLines::default();
    let mut raw = Vec::new();
    loop {
        raw.clear();
        if reader.read_until(b'\n', &mut raw)? == 0 {
            return Ok(out);
        }
        let Ok(line) = std::str::from_utf8(&raw) else {
            out.corrupt += 1;
            continue;
        };
        let line = line.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            continue;
        }
        match decode_line(line) {
            Some(payload) => out.payloads.push(payload.to_string()),
            None => out.corrupt += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_reject() {
        let line = encode_line(r#"{"unit":3}"#);
        assert_eq!(decode_line(&line), Some(r#"{"unit":3}"#));
        assert_eq!(decode_line(&format!("{line}\n")), Some(r#"{"unit":3}"#));
        // A flipped checksum nibble, a flipped payload byte, and bad framing all fail.
        let mut bad = line.clone().into_bytes();
        bad[0] = if bad[0] == b'0' { b'1' } else { b'0' };
        assert_eq!(decode_line(std::str::from_utf8(&bad).unwrap()), None);
        let mut bad = line.into_bytes();
        *bad.last_mut().unwrap() ^= 1;
        assert_eq!(decode_line(std::str::from_utf8(&bad).unwrap()), None);
        assert_eq!(decode_line("not a journal line"), None);
        assert_eq!(decode_line(""), None);
        assert_eq!(decode_line("0123456789abcdef"), None);
    }

    #[test]
    #[should_panic(expected = "single-line")]
    fn multiline_payloads_are_rejected() {
        encode_line("a\nb");
    }

    #[test]
    fn read_lines_skips_corrupt_entries() {
        let dir = std::env::temp_dir().join(format!("piccolo-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.log");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            append_line(&mut f, "first").unwrap();
            f.write_all(b"garbage line\n").unwrap();
            append_line(&mut f, "second").unwrap();
            // A high-bit flip produces invalid UTF-8: it must cost this one line,
            // never abort the scan (lines after it still decode).
            let mut flipped = encode_line("bitrot").into_bytes();
            flipped[20] |= 0x80;
            flipped.push(b'\n');
            f.write_all(&flipped).unwrap();
            append_line(&mut f, "third").unwrap();
            // A torn final line, as left behind by a killed process.
            f.write_all(encode_line("torn").as_bytes().split_at(8).0)
                .unwrap();
        }
        let lines = read_lines(&path).unwrap();
        assert_eq!(lines.payloads, ["first", "second", "third"]);
        assert_eq!(lines.corrupt, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
