//! Real-graph ingestion for the Piccolo reproduction.
//!
//! Every graph the simulator ran before this crate existed was a synthetic stand-in;
//! `piccolo-io` opens the pipeline to real traces. It has three layers:
//!
//! * **Text parsers** ([`text`]) — streaming, line-buffered readers for plain
//!   whitespace edge lists, SNAP-style TSV (comment lines, optional weights) and
//!   MatrixMarket `coordinate` files, producing [`piccolo_graph::EdgeList`] /
//!   [`piccolo_graph::Csr`] through the checked constructors, with typed [`IoError`]s
//!   carrying line/field context instead of panics.
//! * **Binary snapshots** ([`pcsr`]) — the `.pcsr` format: magic + version + counts +
//!   checksummed `row_offsets` / `col_indices` / `weights` sections in a deterministic
//!   little-endian layout (full spec in `docs/pcsr-format.md`).
//! * **The snapshot cache** ([`snapshot`]) — a content-hash-keyed directory of
//!   snapshots, so the second load of any external graph skips parsing entirely and
//!   editing a source file invalidates its snapshot automatically.
//! * **Checksummed journal lines** ([`journal`]) — the append-only line format behind
//!   the campaign run journal (`repro --resume`): each line carries an FNV-1a-64
//!   checksum, so torn or corrupted entries are skipped instead of poisoning a resume.
//!
//! The `graphtool` binary (`convert` / `info` / `verify`) exposes the same machinery
//! on the command line, and `repro --external NAME=PATH` runs loaded graphs through
//! the whole campaign pipeline via [`piccolo_graph::external`].
//!
//! # Example
//!
//! ```no_run
//! use piccolo_io::{load_graph, SnapshotStatus};
//!
//! let loaded = load_graph(std::path::Path::new("twitter.tsv")).unwrap();
//! assert!(matches!(loaded.status, SnapshotStatus::Hit | SnapshotStatus::Miss));
//! println!("{} vertices", loaded.graph.num_vertices());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod hash;
pub mod journal;
pub mod pcsr;
pub mod snapshot;
pub mod text;

pub use error::IoError;
pub use pcsr::{load_pcsr, read_pcsr, save_pcsr, write_pcsr};
pub use snapshot::{
    default_snapshot_dir, load_graph, load_graph_with, snapshot_path, LoadedGraph, SnapshotStatus,
};
pub use text::{load_text, read_text, TextFormat};
