//! Real-graph ingestion for the Piccolo reproduction.
//!
//! Every graph the simulator ran before this crate existed was a synthetic stand-in;
//! `piccolo-io` opens the pipeline to real traces. It has three layers:
//!
//! * **Text parsers** ([`text`]) — streaming, line-buffered readers for plain
//!   whitespace edge lists, SNAP-style TSV (comment lines, optional weights) and
//!   MatrixMarket `coordinate` files, producing [`piccolo_graph::EdgeList`] /
//!   [`piccolo_graph::Csr`] through the checked constructors, with typed [`IoError`]s
//!   carrying line/field context instead of panics.
//! * **Binary snapshots** ([`pcsr`]) — the `.pcsr` format: magic + version + counts +
//!   checksummed `row_offsets` / `col_indices` / `weights` sections in a deterministic
//!   little-endian layout (full spec in `docs/pcsr-format.md`). Snapshots load
//!   zero-copy by default through a hand-rolled `mmap(2)` ([`mmap`], [`MappedPcsr`]),
//!   with sections checksum-verified lazily on first touch; `PICCOLO_NO_MMAP=1`
//!   forces the owned read path with byte-identical results.
//! * **Partitioned snapshots** ([`partition`]) — the `.pcsr.d/` directory format: one
//!   `.pcsr` tile per contiguous vertex range plus a line-checksummed manifest with
//!   per-partition counts and fingerprints, so out-of-core runs map one tile at a
//!   time instead of the whole graph.
//! * **Compressed ingestion** ([`compress`], [`inflate`]) — gzip (hand-rolled
//!   DEFLATE) and zstd (system binary) text inputs, sniffed by magic bytes and
//!   decompressed into the same line-buffered parsers.
//! * **The snapshot cache** ([`snapshot`]) — a content-hash-keyed directory of
//!   snapshots, so the second load of any external graph skips parsing entirely and
//!   editing a source file invalidates its snapshot automatically. The key hashes
//!   *decompressed* content, so `graph.tsv`, `graph.tsv.gz` and `graph.tsv.zst`
//!   share one cache entry.
//! * **Checksummed journal lines** ([`journal`]) — the append-only line format behind
//!   the campaign run journal (`repro --resume`): each line carries an FNV-1a-64
//!   checksum, so torn or corrupted entries are skipped instead of poisoning a resume.
//!
//! The `graphtool` binary (`gen` / `convert` / `info` / `verify`) exposes the same
//! machinery on the command line, and `repro --external NAME=PATH` runs loaded graphs
//! through the whole campaign pipeline via [`piccolo_graph::external`].
//!
//! # Example
//!
//! ```no_run
//! use piccolo_io::{load_graph, SnapshotStatus};
//!
//! let loaded = load_graph(std::path::Path::new("twitter.tsv")).unwrap();
//! assert!(matches!(loaded.status, SnapshotStatus::Hit | SnapshotStatus::Miss));
//! println!("{} vertices", loaded.graph.num_vertices());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bytes;

pub mod compress;
pub mod error;
pub mod hash;
pub mod inflate;
pub mod journal;
pub mod mmap;
pub mod partition;
pub mod pcsr;
pub mod snapshot;
pub mod text;

pub use compress::{sniff_file, strip_extension, Compression};
pub use error::IoError;
pub use mmap::{mmap_enabled, Mapping, NO_MMAP_ENV};
pub use partition::{
    is_pcsr_dir, load_pcsr_dir, pcsr_dir_info, pcsr_dir_path, save_pcsr_dir, verify_pcsr_dir,
    PcsrDirInfo,
};
pub use pcsr::{load_pcsr, load_pcsr_owned, read_pcsr, save_pcsr, write_pcsr, MappedPcsr};
pub use snapshot::{
    default_snapshot_dir, load_graph, load_graph_with, snapshot_path, LoadedGraph, SnapshotStatus,
};
pub use text::{load_text, read_text, TextFormat};
