//! Panic-free little-endian byte readers.
//!
//! `slice.try_into().unwrap()` on a length-guaranteed slice is infallible in context,
//! but it trips the workspace `panic-policy` lint and restates the length proof at
//! every call site. These helpers move the proof into one place: bytes past the end
//! of the input read as zero. No caller relies on the padding — each has already
//! length-checked, and the `.pcsr` header/section checksums reject short data
//! downstream regardless.

/// The `N` bytes of `bytes` starting at `off`, zero-padded past the end.
pub(crate) fn le_array<const N: usize>(bytes: &[u8], off: usize) -> [u8; N] {
    let mut out = [0u8; N];
    for (i, dst) in out.iter_mut().enumerate() {
        *dst = bytes.get(off + i).copied().unwrap_or(0);
    }
    out
}

/// Little-endian `u32` at `off` (zero-padded past the end).
pub(crate) fn le_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(le_array(bytes, off))
}

/// Little-endian `u64` at `off` (zero-padded past the end).
pub(crate) fn le_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(le_array(bytes, off))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_bounds_values() {
        let bytes = [1u8, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(le_u32(&bytes, 0), 1);
        assert_eq!(le_u32(&bytes, 4), 2);
        assert_eq!(le_u64(&bytes, 4), 2);
    }

    #[test]
    fn zero_pads_past_the_end() {
        let bytes = [0xff_u8, 0xff];
        assert_eq!(le_u32(&bytes, 0), 0xffff);
        assert_eq!(le_u64(&bytes, 1), 0xff);
        assert_eq!(le_u32(&bytes, 10), 0);
        assert_eq!(le_array::<4>(&bytes, 1), [0xff, 0, 0, 0]);
    }
}
