//! The partitioned snapshot format: a `.pcsr.d/` directory.
//!
//! A single `.pcsr` file holds the whole graph; a `.pcsr.d/` directory splits it into
//! tiles over contiguous vertex ranges so ingestion never needs more than one tile of
//! transient storage at a time — the GraphH/GraphD partition-by-partition shape from
//! the paper's lineage, applied to host-side loading. The layout (full byte spec in
//! `docs/pcsr-format.md`):
//!
//! ```text
//! graph.pcsr.d/
//!   manifest.txt        checksummed lines (journal line format, crate::journal)
//!   part-00000.pcsr     tile 0: vertices [start, end), .pcsr-framed
//!   part-00001.pcsr     tile 1 ...
//! ```
//!
//! Each tile is a `.pcsr`-framed file whose header counts the tile's *local* vertex
//! span; its row offsets are rebased to start at 0 and its column indices keep their
//! **global** vertex ids (so a tile is not a loadable standalone graph — it is a slice
//! of one). The manifest pins the global counts, every tile's vertex range, edge
//! count, byte size, and whole-file FNV-1a-64 fingerprint, and every manifest line
//! carries its own checksum. Single-byte corruption anywhere — any tile, any section,
//! the manifest itself — is detected at load time; a wrong-but-plausible graph can
//! never be assembled.

use crate::error::IoError;
use crate::hash::hash_file;
use crate::journal::{decode_line, encode_line};
use crate::pcsr::{write_pcsr_raw, MappedPcsr};
use piccolo_graph::Csr;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Name of the manifest file inside a `.pcsr.d/` directory.
pub const MANIFEST: &str = "manifest.txt";

/// Magic token opening every manifest header line.
const DIR_MAGIC: &str = "pcsr-dir";
/// Partitioned-format version.
const DIR_VERSION: u32 = 1;

/// One tile's manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartInfo {
    /// Tile index (file order).
    pub index: usize,
    /// First vertex of the tile's range.
    pub start: u64,
    /// One past the last vertex of the tile's range.
    pub end: u64,
    /// Edges whose source lies in the range.
    pub edges: u64,
    /// Exact tile file size in bytes.
    pub bytes: u64,
    /// FNV-1a-64 of the tile file's bytes, 16 lowercase hex digits.
    pub fnv: String,
    /// Tile file name within the directory.
    pub file: String,
}

/// Decoded, validated manifest of a `.pcsr.d/` directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcsrDirInfo {
    /// Global vertex count.
    pub num_vertices: u64,
    /// Global edge count.
    pub num_edges: u64,
    /// Tiles, in vertex order.
    pub parts: Vec<PartInfo>,
}

/// Whether `path` looks like a partitioned snapshot directory (has a manifest).
pub fn is_pcsr_dir(path: &Path) -> bool {
    path.is_dir() && path.join(MANIFEST).is_file()
}

/// Writes `graph` as a partitioned snapshot with (up to) `parts` tiles of roughly
/// equal edge count. The directory is created if needed; existing contents are
/// replaced. Output is deterministic: the same graph and part count always produce
/// identical tiles and manifest.
pub fn save_pcsr_dir(dir: &Path, graph: &Csr, parts: usize) -> Result<(), IoError> {
    let parts = parts.max(1);
    if dir.is_dir() {
        // Replace wholesale so stale tiles from a previous layout cannot linger.
        std::fs::remove_dir_all(dir).map_err(|e| IoError::io(dir, e))?;
    }
    std::fs::create_dir_all(dir).map_err(|e| IoError::io(dir, e))?;

    let ro = graph.row_offsets();
    let num_vertices = graph.num_vertices() as u64;
    let num_edges = graph.num_edges();

    // Cut at edge quantiles so tiles balance by |E|, not |V|; duplicate boundaries
    // (tiny graphs, huge hubs) collapse, so the realized part count may be smaller.
    let mut bounds: Vec<u64> = vec![0];
    for k in 1..parts as u64 {
        let target = num_edges * k / parts as u64;
        let cut = ro.partition_point(|&off| off < target) as u64;
        let cut = cut.min(num_vertices);
        if cut > bounds.last().copied().unwrap_or(0) && cut < num_vertices {
            bounds.push(cut);
        }
    }
    bounds.push(num_vertices);
    if num_vertices == 0 {
        bounds = vec![0, 0];
    }

    let mut entries = Vec::new();
    for (index, win) in bounds.windows(2).enumerate() {
        let (start, end) = (win[0], win[1]);
        let e_start = ro[start as usize];
        let e_end = ro[end as usize];
        let file = format!("part-{index:05}.pcsr");
        let path = dir.join(&file);
        {
            let f = std::fs::File::create(&path).map_err(|e| IoError::io(&path, e))?;
            let mut w = std::io::BufWriter::new(f);
            write_pcsr_raw(
                &mut w,
                end - start,
                e_end - e_start,
                ro[start as usize..=end as usize]
                    .iter()
                    .map(move |&off| off - e_start),
                &graph.col_indices()[e_start as usize..e_end as usize],
                &graph.weights()[e_start as usize..e_end as usize],
            )
            .map_err(|e| IoError::io(&path, e))?;
            w.flush().map_err(|e| IoError::io(&path, e))?;
        }
        let bytes = std::fs::metadata(&path)
            .map_err(|e| IoError::io(&path, e))?
            .len();
        let fnv = format!(
            "{:016x}",
            hash_file(&path).map_err(|e| IoError::io(&path, e))?
        );
        entries.push(PartInfo {
            index,
            start,
            end,
            edges: e_end - e_start,
            bytes,
            fnv,
            file,
        });
    }

    let manifest_path = dir.join(MANIFEST);
    let mut out = String::new();
    out.push_str(&encode_line(&format!(
        "{DIR_MAGIC} v{DIR_VERSION} vertices={num_vertices} edges={num_edges} parts={}",
        entries.len()
    )));
    out.push('\n');
    for p in &entries {
        out.push_str(&encode_line(&format!(
            "part index={} start={} end={} edges={} bytes={} fnv={} file={}",
            p.index, p.start, p.end, p.edges, p.bytes, p.fnv, p.file
        )));
        out.push('\n');
    }
    let f = std::fs::File::create(&manifest_path).map_err(|e| IoError::io(&manifest_path, e))?;
    let mut w = std::io::BufWriter::new(f);
    w.write_all(out.as_bytes())
        .map_err(|e| IoError::io(&manifest_path, e))?;
    w.flush().map_err(|e| IoError::io(&manifest_path, e))
}

fn tok<'a>(t: Option<&'a str>, origin: &Path) -> Result<&'a str, IoError> {
    t.ok_or_else(|| IoError::format(origin, "manifest: truncated line"))
}

fn field<'a>(token: &'a str, key: &str, origin: &Path) -> Result<&'a str, IoError> {
    token
        .strip_prefix(key)
        .and_then(|t| t.strip_prefix('='))
        .ok_or_else(|| {
            IoError::format(
                origin,
                format!("manifest: expected `{key}=...`, got `{token}`"),
            )
        })
}

fn num(token: &str, key: &str, origin: &Path) -> Result<u64, IoError> {
    field(token, key, origin)?
        .parse::<u64>()
        .map_err(|_| IoError::format(origin, format!("manifest: bad number in `{token}`")))
}

/// Reads and validates the manifest of a `.pcsr.d/` directory. Every line must decode
/// (unlike the run journal, a corrupt manifest line is fatal, not skippable) and the
/// tile ranges must exactly cover `0..num_vertices` with edge counts summing to
/// `num_edges`.
pub fn pcsr_dir_info(dir: &Path) -> Result<PcsrDirInfo, IoError> {
    let manifest_path = dir.join(MANIFEST);
    let raw =
        std::fs::read_to_string(&manifest_path).map_err(|e| IoError::io(&manifest_path, e))?;
    let mut lines = raw.lines().filter(|l| !l.trim().is_empty());

    let header = lines
        .next()
        .ok_or_else(|| IoError::format(&manifest_path, "manifest: empty file"))?;
    let header = decode_line(header).ok_or_else(|| {
        IoError::format(&manifest_path, "manifest: header line checksum mismatch")
    })?;
    let mut toks = header.split(' ');
    if toks.next() != Some(DIR_MAGIC) {
        return Err(IoError::format(&manifest_path, "manifest: bad magic"));
    }
    match toks.next() {
        Some(v) if v == format!("v{DIR_VERSION}") => {}
        other => {
            return Err(IoError::format(
                &manifest_path,
                format!(
                "manifest: unsupported version {other:?} (this reader understands v{DIR_VERSION})"
            ),
            ))
        }
    }
    let num_vertices = num(
        tok(toks.next(), &manifest_path)?,
        "vertices",
        &manifest_path,
    )?;
    let num_edges = num(tok(toks.next(), &manifest_path)?, "edges", &manifest_path)?;
    let parts_declared = num(tok(toks.next(), &manifest_path)?, "parts", &manifest_path)? as usize;

    let mut parts = Vec::with_capacity(parts_declared);
    for line in lines {
        let payload = decode_line(line).ok_or_else(|| {
            IoError::format(&manifest_path, "manifest: part line checksum mismatch")
        })?;
        let mut t = payload.split(' ');
        if t.next() != Some("part") {
            return Err(IoError::format(
                &manifest_path,
                "manifest: expected a part line",
            ));
        }
        let index = num(tok(t.next(), &manifest_path)?, "index", &manifest_path)? as usize;
        let start = num(tok(t.next(), &manifest_path)?, "start", &manifest_path)?;
        let end = num(tok(t.next(), &manifest_path)?, "end", &manifest_path)?;
        let edges = num(tok(t.next(), &manifest_path)?, "edges", &manifest_path)?;
        let bytes = num(tok(t.next(), &manifest_path)?, "bytes", &manifest_path)?;
        let fnv = field(tok(t.next(), &manifest_path)?, "fnv", &manifest_path)?.to_string();
        let file = field(tok(t.next(), &manifest_path)?, "file", &manifest_path)?.to_string();
        if fnv.len() != 16 || !fnv.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(IoError::format(&manifest_path, "manifest: bad fingerprint"));
        }
        if file.contains('/') || file.contains("..") {
            return Err(IoError::format(
                &manifest_path,
                "manifest: tile name escapes the directory",
            ));
        }
        parts.push(PartInfo {
            index,
            start,
            end,
            edges,
            bytes,
            fnv,
            file,
        });
    }

    if parts.len() != parts_declared {
        return Err(IoError::format(
            &manifest_path,
            format!(
                "manifest: {} part lines, header declares {parts_declared}",
                parts.len()
            ),
        ));
    }
    let mut cursor = 0u64;
    let mut edge_sum = 0u64;
    for (i, p) in parts.iter().enumerate() {
        if p.index != i {
            return Err(IoError::format(
                &manifest_path,
                "manifest: part index out of order",
            ));
        }
        if p.start != cursor || p.end < p.start {
            return Err(IoError::format(
                &manifest_path,
                "manifest: tile ranges not contiguous",
            ));
        }
        cursor = p.end;
        edge_sum += p.edges;
    }
    if cursor != num_vertices || edge_sum != num_edges {
        return Err(IoError::format(
            &manifest_path,
            "manifest: tile ranges do not cover the declared graph",
        ));
    }
    Ok(PcsrDirInfo {
        num_vertices,
        num_edges,
        parts,
    })
}

/// Loads a partitioned snapshot, assembling the global CSR tile by tile.
///
/// Tiles are opened one at a time (memory-mapped when enabled), so transient storage
/// beyond the final arrays is bounded by the largest single tile. Every tile's header
/// and section checksums are verified during assembly, the tile's counts are checked
/// against the manifest, and the assembled arrays run through the full
/// [`Csr::try_from_raw`] validation.
pub fn load_pcsr_dir(dir: &Path) -> Result<Csr, IoError> {
    let info = pcsr_dir_info(dir)?;
    if info.num_vertices > u32::MAX as u64 {
        let m = dir.join(MANIFEST);
        return Err(IoError::format(&m, "vertex count exceeds the u32 id space"));
    }

    let mut row_offsets: Vec<u64> = Vec::with_capacity(info.num_vertices as usize + 1);
    let mut col_indices: Vec<u32> = Vec::with_capacity(info.num_edges as usize);
    let mut weights: Vec<u32> = Vec::with_capacity(info.num_edges as usize);
    row_offsets.push(0);

    for p in &info.parts {
        let path = dir.join(&p.file);
        let actual = std::fs::metadata(&path)
            .map_err(|e| IoError::io(&path, e))?
            .len();
        if actual != p.bytes {
            return Err(IoError::format(
                &path,
                format!("tile is {actual} bytes, manifest says {}", p.bytes),
            ));
        }
        let tile = MappedPcsr::open(&path)?;
        let h = tile.header();
        if h.num_vertices != p.end - p.start || h.num_edges != p.edges {
            return Err(IoError::format(
                &path,
                "tile header counts disagree with the manifest",
            ));
        }
        let base = col_indices.len() as u64;
        let ro = tile.row_offsets()?;
        if ro.first() != Some(&0) || ro.last() != Some(&p.edges) {
            return Err(IoError::format(
                &path,
                "tile row offsets do not span its edges",
            ));
        }
        // Skip the tile's leading 0: the boundary vertex's offset is already present
        // (as `base`) from the previous tile.
        row_offsets.extend(ro[1..].iter().map(|&off| off + base));
        col_indices.extend_from_slice(&tile.col_indices()?);
        weights.extend_from_slice(&tile.weights()?);
        // `tile` (and its mapping) drops here, before the next tile opens.
    }

    Csr::try_from_raw(row_offsets, col_indices, weights)
        .map_err(|e| IoError::graph(&dir.join(MANIFEST), e))
}

/// Fully audits a partitioned snapshot: manifest decode + per-tile whole-file
/// fingerprint check + full load. Returns the assembled graph's counts on success.
pub fn verify_pcsr_dir(dir: &Path) -> Result<PcsrDirInfo, IoError> {
    let info = pcsr_dir_info(dir)?;
    for p in &info.parts {
        let path = dir.join(&p.file);
        let actual = format!(
            "{:016x}",
            hash_file(&path).map_err(|e| IoError::io(&path, e))?
        );
        if actual != p.fnv {
            return Err(IoError::format(
                &path,
                format!(
                    "tile fingerprint {actual} does not match manifest {}",
                    p.fnv
                ),
            ));
        }
    }
    load_pcsr_dir(dir)?;
    Ok(info)
}

/// Conventional partitioned-snapshot path for `source`: `source` with `.pcsr.d`
/// appended to its file name (e.g. `graph.tsv` → `graph.tsv.pcsr.d`).
pub fn pcsr_dir_path(source: &Path) -> PathBuf {
    let mut name = source
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "graph".to_string());
    name.push_str(".pcsr.d");
    source.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo_graph::generate;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("piccolo-part-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn partitioned_roundtrip_is_identity_for_many_part_counts() {
        let g = generate::kronecker(10, 6, 77);
        for parts in [1, 2, 3, 7, 64, 10_000] {
            let dir = tmp_dir(&format!("rt{parts}"));
            save_pcsr_dir(&dir, &g, parts).unwrap();
            let info = pcsr_dir_info(&dir).unwrap();
            assert_eq!(info.num_vertices, g.num_vertices() as u64);
            assert_eq!(info.num_edges, g.num_edges());
            assert!(!info.parts.is_empty() && info.parts.len() <= parts);
            let back = load_pcsr_dir(&dir).unwrap();
            assert_eq!(back, g, "parts={parts}");
            verify_pcsr_dir(&dir).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn empty_and_tiny_graphs_roundtrip() {
        for (v, e) in [(0u64, 0u64), (1, 0), (5, 1)] {
            let mut ro = vec![0u64; v as usize + 1];
            if e > 0 {
                for slot in ro.iter_mut().skip(1) {
                    *slot = e;
                }
            }
            let g = Csr::try_from_raw(ro, vec![0; e as usize], vec![7; e as usize]).unwrap();
            let dir = tmp_dir(&format!("tiny-{v}-{e}"));
            save_pcsr_dir(&dir, &g, 4).unwrap();
            assert_eq!(load_pcsr_dir(&dir).unwrap(), g);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn save_is_deterministic() {
        let g = generate::uniform(300, 1500, 5);
        let (a, b) = (tmp_dir("det-a"), tmp_dir("det-b"));
        save_pcsr_dir(&a, &g, 4).unwrap();
        save_pcsr_dir(&b, &g, 4).unwrap();
        let read = |d: &Path| {
            let mut names: Vec<_> = std::fs::read_dir(d)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .collect();
            names.sort();
            let blobs: Vec<Vec<u8>> = names
                .iter()
                .map(|n| std::fs::read(d.join(n)).unwrap())
                .collect();
            (names, blobs)
        };
        assert_eq!(read(&a), read(&b));
        std::fs::remove_dir_all(&a).unwrap();
        std::fs::remove_dir_all(&b).unwrap();
    }

    #[test]
    fn detects_single_byte_corruption_in_every_tile_and_manifest_position() {
        // The property loop of the issue: flip one byte at a stride through *every*
        // file of the directory; the load must fail each time — and when it succeeds
        // (it never should), the graph must at least not be silently wrong.
        let g = generate::uniform(120, 600, 13);
        let dir = tmp_dir("corrupt");
        save_pcsr_dir(&dir, &g, 3).unwrap();
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        assert!(files.len() >= 4, "3 tiles + manifest");
        for file in &files {
            let pristine = std::fs::read(file).unwrap();
            let stride = (pristine.len() / 37).max(1);
            for pos in (0..pristine.len()).step_by(stride) {
                let mut bad = pristine.clone();
                bad[pos] ^= 0x20; // also exercises case/whitespace-ish flips in text
                std::fs::write(file, &bad).unwrap();
                match load_pcsr_dir(&dir) {
                    Err(_) => {}
                    Ok(loaded) => panic!(
                        "flip at {pos} in {} produced a graph (eq to original: {})",
                        file.display(),
                        loaded == g
                    ),
                }
            }
            std::fs::write(file, &pristine).unwrap();
        }
        // Pristine again: loads clean.
        assert_eq!(load_pcsr_dir(&dir).unwrap(), g);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detects_truncated_and_missing_tiles() {
        let g = generate::uniform(80, 400, 3);
        let dir = tmp_dir("missing");
        save_pcsr_dir(&dir, &g, 2).unwrap();
        let tile = dir.join("part-00001.pcsr");
        let bytes = std::fs::read(&tile).unwrap();
        std::fs::write(&tile, &bytes[..bytes.len() - 1]).unwrap();
        assert!(load_pcsr_dir(&dir).is_err(), "truncated tile");
        std::fs::remove_file(&tile).unwrap();
        assert!(load_pcsr_dir(&dir).is_err(), "missing tile");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_swapped_tiles_even_though_each_is_internally_consistent() {
        // Internal checksums can't catch tile files swapped with each other; the
        // manifest's per-tile counts/sizes (and verify's fingerprints) must.
        let g = generate::kronecker(8, 8, 2);
        let dir = tmp_dir("swap");
        save_pcsr_dir(&dir, &g, 2).unwrap();
        let (a, b) = (dir.join("part-00000.pcsr"), dir.join("part-00001.pcsr"));
        let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::write(&a, &bb).unwrap();
        std::fs::write(&b, &ba).unwrap();
        assert!(
            load_pcsr_dir(&dir).is_err() || verify_pcsr_dir(&dir).is_err(),
            "swapped tiles must not verify"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_path_convention() {
        assert_eq!(
            pcsr_dir_path(Path::new("/data/web.tsv")),
            Path::new("/data/web.tsv.pcsr.d")
        );
        assert!(!is_pcsr_dir(Path::new("/nonexistent")));
    }
}
