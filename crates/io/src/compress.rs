//! Compressed text ingestion: magic-byte sniffing, gzip and zstd decompression.
//!
//! A compressed edge list (`web.tsv.gz`, `web.tsv.zst`) feeds the same line-buffered
//! parsers as plain text: [`decompress_file`] recognizes the container by its leading
//! magic bytes — never by extension — and returns the decompressed bytes. gzip is
//! decoded entirely in-process by the hand-rolled [`crate::inflate`] decoder; zstd is
//! streamed through the system `zstd -dc` binary (a typed error is returned if it is
//! not installed — no crate dependency either way).
//!
//! The snapshot cache keys compressed sources by their *decompressed* content hash
//! (see [`crate::snapshot`]), so `web.tsv`, `web.tsv.gz` and `web.tsv.zst` with the
//! same underlying text share one cache entry and produce byte-identical snapshots.

use crate::error::IoError;
use crate::inflate::{gunzip, GZIP_MAGIC};
use std::io::Read;
use std::path::{Path, PathBuf};

/// zstd frame magic (RFC 8878).
pub const ZSTD_MAGIC: [u8; 4] = [0x28, 0xb5, 0x2f, 0xfd];

/// A compression container recognized by magic bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compression {
    /// gzip (RFC 1952), decoded in-process.
    Gzip,
    /// zstd (RFC 8878), decoded via the system `zstd` binary.
    Zstd,
}

impl std::fmt::Display for Compression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Compression::Gzip => "gzip",
            Compression::Zstd => "zstd",
        })
    }
}

/// Sniffs the compression container of `path` from its first bytes. `Ok(None)` means
/// the file is not a recognized container (treat as plain text).
pub fn sniff_file(path: &Path) -> Result<Option<Compression>, IoError> {
    let mut file = std::fs::File::open(path).map_err(|e| IoError::io(path, e))?;
    let mut magic = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match file
            .read(&mut magic[got..])
            .map_err(|e| IoError::io(path, e))?
        {
            0 => break,
            n => got += n,
        }
    }
    Ok(sniff_bytes(&magic[..got]))
}

/// Sniffs a compression container from leading bytes.
pub fn sniff_bytes(magic: &[u8]) -> Option<Compression> {
    if magic.len() >= 2 && magic[0..2] == GZIP_MAGIC {
        Some(Compression::Gzip)
    } else if magic.len() >= 4 && magic[0..4] == ZSTD_MAGIC {
        Some(Compression::Zstd)
    } else {
        None
    }
}

/// Strips one trailing compression extension (`.gz`, `.zst`, `.zstd`) from `path`,
/// so format detection and snapshot naming see the underlying file name. Returns the
/// path unchanged if it has no such extension.
pub fn strip_extension(path: &Path) -> PathBuf {
    match path.extension().and_then(|e| e.to_str()) {
        Some("gz") | Some("zst") | Some("zstd") => path.with_extension(""),
        _ => path.to_path_buf(),
    }
}

/// Decompresses `path` if its magic bytes mark a recognized container; `Ok(None)` for
/// plain files. The whole decompressed content is returned — the text parsers then
/// stream over it line by line.
pub fn decompress_file(path: &Path) -> Result<Option<Vec<u8>>, IoError> {
    match sniff_file(path)? {
        None => Ok(None),
        Some(Compression::Gzip) => {
            let raw = std::fs::read(path).map_err(|e| IoError::io(path, e))?;
            gunzip(&raw)
                .map(Some)
                .map_err(|e| IoError::format(path, e.to_string()))
        }
        Some(Compression::Zstd) => zstd_decompress(path).map(Some),
    }
}

/// Runs `zstd -dc <path>` and captures stdout. The binary ships on stock CI images
/// and most developer machines; its absence is a typed error, not a panic.
fn zstd_decompress(path: &Path) -> Result<Vec<u8>, IoError> {
    let out = std::process::Command::new("zstd")
        .arg("-dcq")
        .arg(path)
        .output()
        .map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                IoError::format(
                    path,
                    "zstd-compressed input, but no `zstd` binary on PATH \
                     (install zstd or decompress the file manually)",
                )
            } else {
                IoError::io(path, e)
            }
        })?;
    if !out.status.success() {
        return Err(IoError::format(
            path,
            format!(
                "`zstd -dc` failed ({}): {}",
                out.status,
                String::from_utf8_lossy(&out.stderr).trim()
            ),
        ));
    }
    Ok(out.stdout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::gzip_compress;

    fn tmp(name: &str, contents: &[u8]) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("piccolo-compress-{}-{name}", std::process::id()));
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn sniffs_by_magic_not_extension() {
        let gz = tmp("actually-gzip.tsv", &gzip_compress(b"0 1\n"));
        assert_eq!(sniff_file(&gz).unwrap(), Some(Compression::Gzip));
        let plain = tmp("plain.gz", b"0 1\n1 2\n");
        assert_eq!(sniff_file(&plain).unwrap(), None);
        let short = tmp("short", b"x");
        assert_eq!(sniff_file(&short).unwrap(), None);
        assert_eq!(sniff_bytes(&ZSTD_MAGIC), Some(Compression::Zstd));
        for p in [gz, plain, short] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn gzip_decompresses_in_process() {
        let text = b"# comment\n0 1 5\n1 2 9\n";
        let gz = tmp("roundtrip.tsv.gz", &gzip_compress(text));
        assert_eq!(decompress_file(&gz).unwrap().unwrap(), text);
        std::fs::remove_file(gz).unwrap();
    }

    #[test]
    fn plain_files_pass_through_as_none() {
        let p = tmp("plain.tsv", b"0 1\n");
        assert_eq!(decompress_file(&p).unwrap(), None);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn corrupt_gzip_is_a_typed_error() {
        let mut bad = gzip_compress(b"0 1\n1 2\n");
        let n = bad.len();
        bad[n - 6] ^= 0xff; // CRC byte
        let p = tmp("corrupt.gz", &bad);
        let err = decompress_file(&p).unwrap_err();
        assert!(format!("{err}").contains("CRC"), "{err}");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn zstd_round_trips_when_the_binary_exists() {
        // Exercised for real in CI (ubuntu runners ship zstd); skipped silently on
        // machines without the binary so the suite stays hermetic.
        let text = b"0 1 3\n2 0 4\n";
        let plain = tmp("forzstd.tsv", text);
        let zst = plain.with_extension("tsv.zst");
        let status = std::process::Command::new("zstd")
            .arg("-q")
            .arg("-f")
            .arg(&plain)
            .arg("-o")
            .arg(&zst)
            .status();
        if let Ok(s) = status {
            if s.success() {
                assert_eq!(sniff_file(&zst).unwrap(), Some(Compression::Zstd));
                assert_eq!(decompress_file(&zst).unwrap().unwrap(), text);
                std::fs::remove_file(&zst).unwrap();
            }
        }
        std::fs::remove_file(&plain).unwrap();
    }

    #[test]
    fn strip_extension_only_touches_compression_suffixes() {
        assert_eq!(
            strip_extension(Path::new("a/web.tsv.gz")),
            Path::new("a/web.tsv")
        );
        assert_eq!(
            strip_extension(Path::new("web.mtx.zst")),
            Path::new("web.mtx")
        );
        assert_eq!(strip_extension(Path::new("web.tsv")), Path::new("web.tsv"));
        assert_eq!(strip_extension(Path::new("web")), Path::new("web"));
    }
}
