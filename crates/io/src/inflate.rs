//! Hand-rolled DEFLATE (RFC 1951) and gzip (RFC 1952) decompression.
//!
//! Compressed text ingestion ([`crate::compress`]) needs gzip without adding a
//! dependency, so this module implements the decoder directly: a bit-level reader,
//! canonical Huffman decoding in the style of the reference `puff` decoder (counts +
//! symbol table per code length), all three block types (stored, fixed, dynamic), the
//! 32 KiB LZ77 back-reference window, and the gzip member framing with CRC32 and
//! ISIZE verification. A minimal *compressor* ([`gzip_compress`], stored blocks only)
//! exists so tests and CI can produce valid `.gz` inputs offline; it is not meant to
//! shrink anything.

use crate::bytes::le_u32;
use std::fmt;

/// Maximum bits in any DEFLATE Huffman code.
const MAX_BITS: usize = 15;
/// Number of length codes (257..=285 map through these tables).
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Order in which code-length-code lengths are stored in a dynamic block header.
const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Decompression failure: malformed stream, bad checksum, or truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InflateError(pub String);

impl fmt::Display for InflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inflate: {}", self.0)
    }
}

impl std::error::Error for InflateError {}

fn err<T>(msg: impl Into<String>) -> Result<T, InflateError> {
    Err(InflateError(msg.into()))
}

/// LSB-first bit reader over a byte slice.
struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit_buf: u32,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    fn bits(&mut self, n: u32) -> Result<u32, InflateError> {
        while self.bit_count < n {
            let Some(&b) = self.data.get(self.pos) else {
                return err("unexpected end of stream");
            };
            self.pos += 1;
            self.bit_buf |= (b as u32) << self.bit_count;
            self.bit_count += 8;
        }
        // `n` is at most 7 here (the widest extra-bits field), so the shift is safe.
        let out = if n == 0 {
            0
        } else {
            self.bit_buf & ((1u32 << n) - 1)
        };
        self.bit_buf >>= n;
        self.bit_count -= n;
        Ok(out)
    }

    /// Discards bits up to the next byte boundary.
    fn align(&mut self) {
        let drop = self.bit_count % 8;
        self.bit_buf >>= drop;
        self.bit_count -= drop;
    }

    /// Reads `n` whole bytes (must be byte-aligned via [`BitReader::align`] first,
    /// or have whole buffered bytes).
    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, InflateError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if self.bit_count >= 8 {
                out.push((self.bit_buf & 0xff) as u8);
                self.bit_buf >>= 8;
                self.bit_count -= 8;
            } else {
                let Some(&b) = self.data.get(self.pos) else {
                    return err("unexpected end of stored block");
                };
                self.pos += 1;
                out.push(b);
            }
        }
        Ok(out)
    }

    /// Byte offset of the next unread input byte (buffered bits count as unread).
    fn byte_pos(&self) -> usize {
        self.pos - (self.bit_count as usize / 8)
    }
}

/// Canonical Huffman table: symbol counts per code length plus symbols in canonical
/// order — the `puff` decoding structure.
struct Huffman {
    count: [u16; MAX_BITS + 1],
    symbols: Vec<u16>,
}

impl Huffman {
    fn new(lengths: &[u8]) -> Result<Self, InflateError> {
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            if len as usize > MAX_BITS {
                return err("code length exceeds 15 bits");
            }
            count[len as usize] += 1;
        }
        if count[0] as usize == lengths.len() {
            // No codes at all: legal for the distance table of a literal-only block.
            return Ok(Self {
                count,
                symbols: Vec::new(),
            });
        }
        // Over-subscription check (incomplete codes are tolerated, as in puff).
        let mut left = 1i32;
        for &n in &count[1..=MAX_BITS] {
            left <<= 1;
            left -= n as i32;
            if left < 0 {
                return err("over-subscribed Huffman code");
            }
        }
        let mut offsets = [0u16; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offsets[len + 1] = offsets[len] + count[len];
        }
        let mut symbols = vec![0u16; lengths.len()];
        for (sym, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offsets[len as usize] as usize] = sym as u16;
                offsets[len as usize] += 1;
            }
        }
        symbols.truncate(lengths.iter().filter(|&&l| l != 0).count());
        Ok(Self { count, symbols })
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, InflateError> {
        let mut code = 0usize;
        let mut first = 0usize;
        let mut index = 0usize;
        for len in 1..=MAX_BITS {
            code |= r.bits(1)? as usize;
            let count = self.count[len] as usize;
            if code < first + count {
                return Ok(self.symbols[index + (code - first)]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        err("invalid Huffman code")
    }
}

fn fixed_tables() -> (Huffman, Huffman) {
    let mut lit = [0u8; 288];
    lit[0..144].fill(8);
    lit[144..256].fill(9);
    lit[256..280].fill(7);
    lit[280..288].fill(8);
    let dist = [5u8; 30];
    // lint: allow(panic-policy, the RFC 1951 fixed code lengths are compile-time constants Huffman::new cannot reject)
    (Huffman::new(&lit).unwrap(), Huffman::new(&dist).unwrap())
}

fn inflate_block(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &Huffman,
    dist: &Huffman,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = sym as usize - 257;
                let len = LENGTH_BASE[idx] as usize + r.bits(LENGTH_EXTRA[idx] as u32)? as usize;
                let dsym = dist.decode(r)? as usize;
                if dsym >= 30 {
                    return err("invalid distance symbol");
                }
                let d = DIST_BASE[dsym] as usize + r.bits(DIST_EXTRA[dsym] as u32)? as usize;
                if d > out.len() {
                    return err("distance reaches before start of output");
                }
                let start = out.len() - d;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return err("invalid literal/length symbol"),
        }
    }
}

/// Decompresses a raw DEFLATE stream (RFC 1951). Returns the output bytes and the
/// number of *input* bytes consumed (the stream self-terminates at the final block).
pub fn inflate(data: &[u8]) -> Result<(Vec<u8>, usize), InflateError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.bits(1)?;
        let btype = r.bits(2)?;
        match btype {
            0 => {
                r.align();
                let head = r.bytes(4)?;
                let len = u16::from_le_bytes([head[0], head[1]]) as usize;
                let nlen = u16::from_le_bytes([head[2], head[3]]);
                if nlen != !(len as u16) {
                    return err("stored block LEN/NLEN mismatch");
                }
                let chunk = r.bytes(len)?;
                out.extend_from_slice(&chunk);
            }
            1 => {
                let (lit, dist) = fixed_tables();
                inflate_block(&mut r, &mut out, &lit, &dist)?;
            }
            2 => {
                let hlit = r.bits(5)? as usize + 257;
                let hdist = r.bits(5)? as usize + 1;
                let hclen = r.bits(4)? as usize + 4;
                if hlit > 286 || hdist > 30 {
                    return err("dynamic block declares too many codes");
                }
                let mut clc_lens = [0u8; 19];
                for &pos in CLC_ORDER.iter().take(hclen) {
                    clc_lens[pos] = r.bits(3)? as u8;
                }
                let clc = Huffman::new(&clc_lens)?;
                let mut lens = Vec::with_capacity(hlit + hdist);
                while lens.len() < hlit + hdist {
                    let sym = clc.decode(&mut r)?;
                    match sym {
                        0..=15 => lens.push(sym as u8),
                        16 => {
                            let &prev = lens.last().ok_or_else(|| {
                                InflateError("repeat with no previous length".into())
                            })?;
                            let n = 3 + r.bits(2)?;
                            for _ in 0..n {
                                lens.push(prev);
                            }
                        }
                        17 => {
                            let n = 3 + r.bits(3)?;
                            lens.resize(lens.len() + n as usize, 0);
                        }
                        18 => {
                            let n = 11 + r.bits(7)?;
                            lens.resize(lens.len() + n as usize, 0);
                        }
                        _ => return err("invalid code-length symbol"),
                    }
                }
                if lens.len() != hlit + hdist {
                    return err("code lengths overflow their table");
                }
                if lens[256] == 0 {
                    return err("dynamic block has no end-of-block code");
                }
                let lit = Huffman::new(&lens[..hlit])?;
                let dist = Huffman::new(&lens[hlit..])?;
                inflate_block(&mut r, &mut out, &lit, &dist)?;
            }
            _ => return err("reserved block type"),
        }
        if bfinal == 1 {
            r.align();
            return Ok((out, r.byte_pos()));
        }
    }
}

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    for (n, slot) in table.iter_mut().enumerate() {
        let mut c = n as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *slot = c;
    }
    table
}

/// CRC-32 (IEEE, reflected) as used by gzip.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// gzip file magic.
pub const GZIP_MAGIC: [u8; 2] = [0x1f, 0x8b];

/// Decompresses a complete gzip file (one or more members, per RFC 1952), verifying
/// each member's CRC32 and ISIZE.
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut out = Vec::new();
    let mut rest = data;
    if rest.is_empty() {
        return err("empty gzip input");
    }
    while !rest.is_empty() {
        rest = gunzip_member(rest, &mut out)?;
    }
    Ok(out)
}

fn gunzip_member<'a>(data: &'a [u8], out: &mut Vec<u8>) -> Result<&'a [u8], InflateError> {
    if data.len() < 10 {
        return err("truncated gzip header");
    }
    if data[0..2] != GZIP_MAGIC {
        return err("bad gzip magic");
    }
    if data[2] != 8 {
        return err("unsupported gzip compression method");
    }
    let flg = data[3];
    if flg & 0xe0 != 0 {
        return err("reserved gzip flag bits set");
    }
    let mut pos = 10usize;
    if flg & 0x04 != 0 {
        // FEXTRA
        if data.len() < pos + 2 {
            return err("truncated FEXTRA");
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings
        if flg & flag != 0 {
            let end = data[pos.min(data.len())..]
                .iter()
                .position(|&b| b == 0)
                .ok_or_else(|| InflateError("unterminated gzip header string".into()))?;
            pos += end + 1;
        }
    }
    if flg & 0x02 != 0 {
        // FHCRC
        pos += 2;
    }
    if pos > data.len() {
        return err("truncated gzip header fields");
    }

    let before = out.len();
    let (chunk, consumed) = inflate(&data[pos..])?;
    out.extend_from_slice(&chunk);
    let trailer_at = pos + consumed;
    if data.len() < trailer_at + 8 {
        return err("truncated gzip trailer");
    }
    let stored_crc = le_u32(data, trailer_at);
    let stored_isize = le_u32(data, trailer_at + 4);
    let member = &out[before..];
    if crc32(member) != stored_crc {
        return err("gzip CRC32 mismatch");
    }
    if member.len() as u32 != stored_isize {
        return err("gzip ISIZE mismatch");
    }
    Ok(&data[trailer_at + 8..])
}

/// Produces a valid gzip file from `data` using stored (uncompressed) DEFLATE blocks.
/// Exists so tests and CI can generate `.gz` inputs without a system `gzip`; the
/// output is larger than the input by the framing overhead.
pub fn gzip_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + data.len() / 65_535 * 5 + 32);
    out.extend_from_slice(&GZIP_MAGIC);
    out.push(8); // CM = deflate
    out.push(0); // FLG
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME
    out.push(0); // XFL
    out.push(255); // OS = unknown
    let mut chunks = data.chunks(65_535).peekable();
    if data.is_empty() {
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xff, 0xff]); // final empty stored block
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = if chunks.peek().is_none() { 1u8 } else { 0 };
        out.push(bfinal); // BTYPE=00 in bits 1-2; byte-aligned since stored blocks realign
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_roundtrip_including_empty_and_multi_block() {
        for data in [
            b"".to_vec(),
            b"hello gzip".to_vec(),
            vec![0xabu8; 200_000], // spans multiple stored blocks
        ] {
            let gz = gzip_compress(&data);
            assert_eq!(gz[0..2], GZIP_MAGIC);
            assert_eq!(gunzip(&gz).unwrap(), data);
        }
    }

    #[test]
    fn fixed_huffman_stream_decodes() {
        // "abc" compressed with fixed Huffman codes (literals 'a','b','c' are 8-bit
        // codes 0x91,0x92,0x93; end-of-block is 7-bit 0000000), assembled by hand.
        // BFINAL=1 BTYPE=01, then LSB-first packing.
        let mut bits: Vec<bool> = Vec::new();
        let push = |val: u32, n: u32, rev: bool, bits: &mut Vec<bool>| {
            for i in 0..n {
                let bit = if rev {
                    (val >> (n - 1 - i)) & 1 // Huffman codes pack MSB-first
                } else {
                    (val >> i) & 1
                };
                bits.push(bit == 1);
            }
        };
        push(1, 1, false, &mut bits); // BFINAL
        push(1, 2, false, &mut bits); // BTYPE = 01
        for ch in [b'a', b'b', b'c'] {
            push(0x30 + ch as u32, 8, true, &mut bits); // 0..143 => code 0x30+sym, 8 bits
        }
        push(0, 7, true, &mut bits); // end of block
        let mut packed = vec![0u8; bits.len().div_ceil(8)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        let (out, _) = inflate(&packed).unwrap();
        assert_eq!(out, b"abc");
    }

    #[test]
    fn backreference_run_decodes() {
        // The LZ77 match machinery must reject a distance reaching before the start
        // of the output. BFINAL=1, BTYPE=01 (fixed), then a length/distance pair with
        // no prior output: length code 257 (7-bit 0000001), distance code 0 (5 bits).
        let mut bits: Vec<bool> = Vec::new();
        let push = |val: u32, n: u32, rev: bool, bits: &mut Vec<bool>| {
            for i in 0..n {
                let bit = if rev {
                    (val >> (n - 1 - i)) & 1
                } else {
                    (val >> i) & 1
                };
                bits.push(bit == 1);
            }
        };
        push(1, 1, false, &mut bits);
        push(1, 2, false, &mut bits);
        push(1, 7, true, &mut bits); // symbol 257: 7-bit code 0000001
        push(0, 5, true, &mut bits); // distance symbol 0
        let mut packed = vec![0u8; bits.len().div_ceil(8)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        let e = inflate(&packed).unwrap_err();
        assert!(format!("{e}").contains("before start"), "{e}");
    }

    #[test]
    fn corruption_is_detected() {
        let data: Vec<u8> = (0..5000u32).flat_map(|v| v.to_le_bytes()).collect();
        let good = gzip_compress(&data);
        // CRC flip
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 6] ^= 0xff;
        assert!(gunzip(&bad).is_err());
        // ISIZE flip
        let mut bad = good.clone();
        bad[n - 1] ^= 0xff;
        assert!(gunzip(&bad).is_err());
        // payload flip (stored bytes are CRC-checked)
        let mut bad = good.clone();
        bad[40] ^= 0x01;
        assert!(gunzip(&bad).is_err());
        // magic
        let mut bad = good.clone();
        bad[0] = 0;
        assert!(gunzip(&bad).is_err());
        // truncation at several points
        for cut in [1, 5, 12, good.len() - 3] {
            assert!(gunzip(&good[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn multi_member_files_concatenate() {
        let mut gz = gzip_compress(b"first ");
        gz.extend_from_slice(&gzip_compress(b"second"));
        assert_eq!(gunzip(&gz).unwrap(), b"first second");
    }

    #[test]
    fn header_optional_fields_are_skipped() {
        let mut gz = gzip_compress(b"payload");
        // Rewrite the header with FNAME + FCOMMENT set.
        let mut with_name = vec![0x1f, 0x8b, 8, 0x08 | 0x10, 0, 0, 0, 0, 0, 255];
        with_name.extend_from_slice(b"file.tsv\0");
        with_name.extend_from_slice(b"a comment\0");
        with_name.extend_from_slice(&gz.split_off(10));
        assert_eq!(gunzip(&with_name).unwrap(), b"payload");
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xcbf43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }
}
