//! Content-hash-keyed snapshot cache: parse a text graph once, hit `.pcsr` forever.
//!
//! The cache directory holds one snapshot per distinct *content* of a source file:
//! the key is the FNV-1a 64 hash of the raw file bytes (plus the format tag), so
//! editing, replacing or regenerating the source file automatically invalidates its
//! snapshot — there is no timestamp heuristic to go stale. A corrupt snapshot (failed
//! checksum) is treated as a miss and rewritten, never trusted.
//!
//! The directory defaults to `target/piccolo-snapshots` under the current working
//! directory and can be overridden with the `PICCOLO_SNAPSHOT_DIR` environment
//! variable or an explicit argument.

use crate::compress;
use crate::error::IoError;
use crate::hash::{fnv64, hash_file, Fnv64};
use crate::partition::{is_pcsr_dir, load_pcsr_dir};
use crate::pcsr::{load_pcsr, save_pcsr};
use crate::text::{load_text, TextFormat};
use piccolo_graph::Csr;
use std::path::{Path, PathBuf};

/// Environment variable overriding the default snapshot cache directory.
pub const SNAPSHOT_DIR_ENV: &str = "PICCOLO_SNAPSHOT_DIR";

/// How a [`load_graph`] call obtained its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotStatus {
    /// The snapshot cache had a valid `.pcsr` for this content hash — no parsing.
    Hit,
    /// The source was parsed and a snapshot was written for next time.
    Miss,
    /// The input was already a `.pcsr` file; the cache was not involved.
    Direct,
}

impl std::fmt::Display for SnapshotStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SnapshotStatus::Hit => "hit",
            SnapshotStatus::Miss => "miss",
            SnapshotStatus::Direct => "direct",
        })
    }
}

/// A graph loaded through the snapshot cache.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The parsed (or snapshot-restored) graph.
    pub graph: Csr,
    /// Whether the snapshot cache hit, missed, or was bypassed.
    pub status: SnapshotStatus,
    /// The snapshot file backing this graph (`None` only for
    /// [`SnapshotStatus::Direct`] loads).
    pub snapshot: Option<PathBuf>,
}

/// The snapshot cache directory: `$PICCOLO_SNAPSHOT_DIR` if set, else
/// `target/piccolo-snapshots` under the current working directory.
pub fn default_snapshot_dir() -> PathBuf {
    match std::env::var_os(SNAPSHOT_DIR_ENV) {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("target").join("piccolo-snapshots"),
    }
}

/// Loads `path` with the default format detection and cache directory.
pub fn load_graph(path: &Path) -> Result<LoadedGraph, IoError> {
    load_graph_with(path, None, &default_snapshot_dir())
}

/// Loads a graph file through the snapshot cache.
///
/// * A `.pcsr` input is read directly ([`SnapshotStatus::Direct`]) — memory-mapped
///   zero-copy when mapping is enabled (see [`crate::mmap::mmap_enabled`]).
/// * A partitioned `.pcsr.d/` directory is assembled directly, tile by tile.
/// * Otherwise the file's content hash keys a snapshot in `cache_dir`: a valid
///   snapshot is loaded without touching the text ([`SnapshotStatus::Hit`]); a missing
///   or corrupt one re-parses the text and (re)writes the snapshot
///   ([`SnapshotStatus::Miss`]). Compressed sources (gzip/zstd) hash by their
///   *decompressed* content, so they share the cache entry — and the snapshot bytes —
///   of their plain-text equivalent.
///
/// `format` overrides extension-based detection ([`TextFormat::from_path`]).
pub fn load_graph_with(
    path: &Path,
    format: Option<TextFormat>,
    cache_dir: &Path,
) -> Result<LoadedGraph, IoError> {
    if is_pcsr_dir(path) {
        return Ok(LoadedGraph {
            graph: load_pcsr_dir(path)?,
            status: SnapshotStatus::Direct,
            snapshot: None,
        });
    }
    if path.extension().and_then(|e| e.to_str()) == Some("pcsr") {
        return Ok(LoadedGraph {
            graph: load_pcsr(path)?,
            status: SnapshotStatus::Direct,
            snapshot: None,
        });
    }
    let format = format.unwrap_or_else(|| TextFormat::from_path(path));
    let snapshot = snapshot_path(path, format, cache_dir)?;

    if snapshot.is_file() {
        // A corrupt snapshot (torn write, disk fault) is a miss, not an error: fall
        // through and rebuild it from the source text.
        if let Ok(graph) = load_pcsr(&snapshot) {
            return Ok(LoadedGraph {
                graph,
                status: SnapshotStatus::Hit,
                snapshot: Some(snapshot),
            });
        }
    }

    let graph = load_text(path, format)?.to_csr();
    std::fs::create_dir_all(cache_dir).map_err(|e| IoError::io(cache_dir, e))?;
    // Write via a unique temp file + rename so a concurrent loader — another process
    // *or* another thread of this one — never observes a half-written snapshot.
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = snapshot.with_extension(format!("pcsr.tmp{}-{seq}", std::process::id()));
    save_pcsr(&tmp, &graph)?;
    std::fs::rename(&tmp, &snapshot).map_err(|e| IoError::io(&snapshot, e))?;
    Ok(LoadedGraph {
        graph,
        status: SnapshotStatus::Miss,
        snapshot: Some(snapshot),
    })
}

/// The snapshot file a given source file maps to: `<stem>-<content-hash>.pcsr` inside
/// `cache_dir`, where the hash covers the format tag and the *decompressed* source
/// bytes (for a plain file those are its raw bytes). A compressed source therefore
/// maps to the same snapshot file as its decompressed equivalent: one cache entry,
/// byte-identical snapshots, regardless of how the text arrived.
pub fn snapshot_path(
    path: &Path,
    format: TextFormat,
    cache_dir: &Path,
) -> Result<PathBuf, IoError> {
    let content = match compress::decompress_file(path)? {
        Some(bytes) => fnv64(&bytes),
        None => hash_file(path).map_err(|e| IoError::io(path, e))?,
    };
    let mut key = Fnv64::new();
    key.update(format.name().as_bytes());
    key.update(&content.to_le_bytes());
    let stripped = compress::strip_extension(path);
    let stem: String = stripped
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("graph")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    Ok(cache_dir.join(format!("{stem}-{:016x}.pcsr", key.finish())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo_graph::generate;
    use std::io::Write;

    /// A unique scratch directory per test, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("piccolo-io-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn write_edge_file(path: &Path, g: &Csr) {
        let mut f = std::fs::File::create(path).unwrap();
        for e in g.iter_edges() {
            writeln!(f, "{}\t{}\t{}", e.src, e.dst, e.weight).unwrap();
        }
    }

    #[test]
    fn second_load_hits_the_cache_with_an_identical_graph() {
        let scratch = Scratch::new("cache-hit");
        let g = generate::kronecker(9, 4, 17);
        let src = scratch.path("g.tsv");
        write_edge_file(&src, &g);
        let cache = scratch.path("snaps");

        let first = load_graph_with(&src, None, &cache).unwrap();
        assert_eq!(first.status, SnapshotStatus::Miss);
        assert_eq!(first.graph, g);
        let snap = first.snapshot.unwrap();
        assert!(snap.is_file());

        let second = load_graph_with(&src, None, &cache).unwrap();
        assert_eq!(second.status, SnapshotStatus::Hit);
        assert_eq!(second.graph, g);
        assert_eq!(second.snapshot.as_deref(), Some(snap.as_path()));
    }

    #[test]
    fn editing_the_source_invalidates_the_snapshot() {
        let scratch = Scratch::new("invalidate");
        let src = scratch.path("g.txt");
        let cache = scratch.path("snaps");
        std::fs::write(&src, "0 1\n1 2\n").unwrap();
        let first = load_graph_with(&src, None, &cache).unwrap();
        assert_eq!(first.status, SnapshotStatus::Miss);

        std::fs::write(&src, "0 1\n1 2\n2 0\n").unwrap();
        let second = load_graph_with(&src, None, &cache).unwrap();
        assert_eq!(second.status, SnapshotStatus::Miss, "new content, new key");
        assert_eq!(second.graph.num_edges(), 3);
        assert_ne!(first.snapshot, second.snapshot);
    }

    #[test]
    fn corrupt_snapshot_is_rebuilt_not_trusted() {
        let scratch = Scratch::new("corrupt");
        let src = scratch.path("g.txt");
        let cache = scratch.path("snaps");
        std::fs::write(&src, "0 1\n1 0\n").unwrap();
        let first = load_graph_with(&src, None, &cache).unwrap();
        let snap = first.snapshot.unwrap();
        // Corrupt the snapshot payload.
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&snap, bytes).unwrap();

        let again = load_graph_with(&src, None, &cache).unwrap();
        assert_eq!(again.status, SnapshotStatus::Miss, "corruption is a miss");
        assert_eq!(again.graph, first.graph);
        // And the snapshot is healthy again.
        assert_eq!(
            load_graph_with(&src, None, &cache).unwrap().status,
            SnapshotStatus::Hit
        );
    }

    #[test]
    fn compressed_and_plain_sources_share_one_cache_entry() {
        let scratch = Scratch::new("compressed-key");
        let g = generate::kronecker(8, 5, 23);
        let plain = scratch.path("demo.tsv");
        write_edge_file(&plain, &g);
        let gz = scratch.path("demo.tsv.gz");
        std::fs::write(
            &gz,
            crate::inflate::gzip_compress(&std::fs::read(&plain).unwrap()),
        )
        .unwrap();
        let cache = scratch.path("snaps");

        // Same key for plain and gzip: the gzip load misses once, the plain load
        // then *hits* the very same snapshot file.
        let from_gz = load_graph_with(&gz, None, &cache).unwrap();
        assert_eq!(from_gz.status, SnapshotStatus::Miss);
        let from_plain = load_graph_with(&plain, None, &cache).unwrap();
        assert_eq!(
            from_plain.status,
            SnapshotStatus::Hit,
            "plain text must hit the snapshot written by its compressed twin"
        );
        assert_eq!(from_gz.snapshot, from_plain.snapshot);
        assert_eq!(from_gz.graph, g);
        assert_eq!(from_plain.graph, g);
        let entries = std::fs::read_dir(&cache).unwrap().count();
        assert_eq!(entries, 1, "exactly one cache entry for both inputs");
    }

    #[test]
    fn pcsr_dir_input_loads_directly() {
        let scratch = Scratch::new("dir-direct");
        let g = generate::uniform(150, 700, 6);
        let dir = scratch.path("g.pcsr.d");
        crate::partition::save_pcsr_dir(&dir, &g, 3).unwrap();
        let loaded = load_graph_with(&dir, None, &scratch.path("snaps")).unwrap();
        assert_eq!(loaded.status, SnapshotStatus::Direct);
        assert_eq!(loaded.graph, g);
        assert!(loaded.snapshot.is_none());
    }

    #[test]
    fn pcsr_input_bypasses_the_cache() {
        let scratch = Scratch::new("direct");
        let g = generate::uniform(200, 800, 4);
        let file = scratch.path("g.pcsr");
        crate::pcsr::save_pcsr(&file, &g).unwrap();
        let loaded = load_graph_with(&file, None, &scratch.path("snaps")).unwrap();
        assert_eq!(loaded.status, SnapshotStatus::Direct);
        assert_eq!(loaded.graph, g);
        assert!(loaded.snapshot.is_none());
    }
}
