//! Streaming text parsers: plain edge lists, SNAP-style TSV, MatrixMarket coordinate.
//!
//! All three parsers read line-by-line through a reused buffer, so only the edge vector
//! — never the text — is materialized in memory. Malformed input fails with an
//! [`IoError::Parse`] carrying the 1-based line (and field) position.
//!
//! Unweighted edges receive a deterministic pseudo-random weight in `0..=255` derived
//! from the endpoint pair (SplitMix64 finalizer), mirroring the paper's rule of
//! assigning random byte weights to originally-unweighted graphs while staying
//! reproducible across runs, machines and line orderings.

use crate::error::IoError;
use piccolo_graph::{Edge, EdgeList, VertexId, Weight};
use std::io::BufRead;
use std::path::Path;

/// The text formats the ingestion layer understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextFormat {
    /// Plain whitespace-separated `src dst [weight]` lines; `#`/`%` lines are comments.
    EdgeList,
    /// SNAP-style TSV: `#`-prefixed header comments, tab- or space-separated
    /// `src dst [weight]` rows. Parses identically to [`TextFormat::EdgeList`]; the
    /// variant exists so detection and tooling can name the source convention.
    SnapTsv,
    /// MatrixMarket `coordinate` format: `%%MatrixMarket matrix coordinate
    /// <pattern|integer|real> <general|symmetric>` header, `%` comments, a
    /// `rows cols nnz` size line, then 1-based `i j [value]` entries.
    MatrixMarket,
}

impl TextFormat {
    /// All formats, for tooling that enumerates them.
    pub const ALL: [TextFormat; 3] = [
        TextFormat::EdgeList,
        TextFormat::SnapTsv,
        TextFormat::MatrixMarket,
    ];

    /// Short machine-readable name (`edgelist`, `snap`, `mtx`).
    pub fn name(&self) -> &'static str {
        match self {
            TextFormat::EdgeList => "edgelist",
            TextFormat::SnapTsv => "snap",
            TextFormat::MatrixMarket => "mtx",
        }
    }

    /// Parses a format name as accepted by `graphtool --format` and the drivers.
    pub fn parse_name(name: &str) -> Option<TextFormat> {
        match name {
            "edgelist" | "el" | "txt" => Some(TextFormat::EdgeList),
            "snap" | "tsv" => Some(TextFormat::SnapTsv),
            "mtx" | "matrixmarket" => Some(TextFormat::MatrixMarket),
            _ => None,
        }
    }

    /// Guesses the format from a file extension (`.mtx`, `.tsv`/`.snap`, everything
    /// else defaults to the plain edge list, which also accepts SNAP files). A
    /// trailing compression extension (`.gz`, `.zst`) is stripped first, so
    /// `web.tsv.gz` detects as SNAP TSV.
    pub fn from_path(path: &Path) -> TextFormat {
        let path = crate::compress::strip_extension(path);
        match path.extension().and_then(|e| e.to_str()) {
            Some("mtx") => TextFormat::MatrixMarket,
            Some("tsv") | Some("snap") => TextFormat::SnapTsv,
            _ => TextFormat::EdgeList,
        }
    }
}

impl std::fmt::Display for TextFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic default weight in `0..=255` for an unweighted edge: a SplitMix64
/// finalizer over the packed endpoint pair, so the weight depends only on `(src, dst)`
/// — not on line order, file format or load count.
pub fn default_weight(src: VertexId, dst: VertexId) -> Weight {
    let mut z = (((src as u64) << 32) | dst as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) & 0xff) as Weight
}

/// Opens `path` and parses it as `format`, streaming the text through a buffered
/// reader. The vertex count is the maximum endpoint + 1 (or the declared dimension for
/// MatrixMarket). A gzip- or zstd-compressed file (recognized by magic bytes, see
/// [`crate::compress`]) is decompressed first and parses identically to its plain
/// form.
pub fn load_text(path: &Path, format: TextFormat) -> Result<EdgeList, IoError> {
    if let Some(bytes) = crate::compress::decompress_file(path)? {
        return read_text(std::io::Cursor::new(bytes), format, path);
    }
    let file = std::fs::File::open(path).map_err(|e| IoError::io(path, e))?;
    read_text(std::io::BufReader::new(file), format, path)
}

/// Parses an already-open reader as `format`; `origin` labels error messages.
pub fn read_text<R: BufRead>(
    mut reader: R,
    format: TextFormat,
    origin: &Path,
) -> Result<EdgeList, IoError> {
    match format {
        TextFormat::EdgeList | TextFormat::SnapTsv => read_edge_lines(&mut reader, origin),
        TextFormat::MatrixMarket => read_matrix_market(&mut reader, origin),
    }
}

fn parse_vertex(field: &str, origin: &Path, line: u64, col: u64) -> Result<VertexId, IoError> {
    field.parse::<VertexId>().map_err(|_| {
        IoError::parse(
            origin,
            line,
            Some(col),
            format!("invalid vertex id '{field}' (expected an integer in 0..2^32-1)"),
        )
    })
}

fn parse_weight(field: &str, origin: &Path, line: u64, col: u64) -> Result<Weight, IoError> {
    field.parse::<Weight>().map_err(|_| {
        IoError::parse(
            origin,
            line,
            Some(col),
            format!("invalid weight '{field}' (expected a non-negative integer < 2^32)"),
        )
    })
}

/// Shared reader for the plain and SNAP edge-list formats.
fn read_edge_lines<R: BufRead>(reader: &mut R, origin: &Path) -> Result<EdgeList, IoError> {
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_vertex: u64 = 0; // max endpoint + 1
    let mut buf = String::new();
    let mut line_no: u64 = 0;
    loop {
        buf.clear();
        let n = reader
            .read_line(&mut buf)
            .map_err(|e| IoError::io(origin, e))?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let src = match fields.next() {
            // Unreachable in practice: a trimmed non-empty line has a first field.
            None => return Err(IoError::parse(origin, line_no, None, "empty edge line")),
            Some(f) => parse_vertex(f, origin, line_no, 1)?,
        };
        let dst = match fields.next() {
            Some(f) => parse_vertex(f, origin, line_no, 2)?,
            None => {
                return Err(IoError::parse(
                    origin,
                    line_no,
                    None,
                    "expected 'src dst [weight]', got 1 field",
                ))
            }
        };
        let weight = match fields.next() {
            Some(f) => parse_weight(f, origin, line_no, 3)?,
            None => default_weight(src, dst),
        };
        if let Some(extra) = fields.next() {
            return Err(IoError::parse(
                origin,
                line_no,
                Some(4),
                format!("unexpected trailing field '{extra}' (expected 'src dst [weight]')"),
            ));
        }
        max_vertex = max_vertex.max(src as u64 + 1).max(dst as u64 + 1);
        edges.push(Edge::new(src, dst, weight));
    }
    if max_vertex > VertexId::MAX as u64 {
        return Err(IoError::parse(
            origin,
            line_no,
            None,
            format!("vertex count {max_vertex} exceeds the u32 id space"),
        ));
    }
    EdgeList::try_from_edges(max_vertex as u32, edges).map_err(|e| IoError::graph(origin, e))
}

/// Value kind declared by a MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MtxField {
    Pattern,
    Integer,
    Real,
}

fn read_matrix_market<R: BufRead>(reader: &mut R, origin: &Path) -> Result<EdgeList, IoError> {
    let mut buf = String::new();
    let mut line_no: u64 = 0;

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let n = reader
        .read_line(&mut buf)
        .map_err(|e| IoError::io(origin, e))?;
    line_no += 1;
    if n == 0 {
        return Err(IoError::parse(origin, 1, None, "empty file"));
    }
    let header: Vec<&str> = buf.trim().split_ascii_whitespace().collect();
    if header.first().map(|h| h.to_ascii_lowercase()) != Some("%%matrixmarket".to_string()) {
        return Err(IoError::parse(
            origin,
            1,
            Some(1),
            "expected a '%%MatrixMarket' banner",
        ));
    }
    if header.len() != 5 || !header[1].eq_ignore_ascii_case("matrix") {
        return Err(IoError::parse(
            origin,
            1,
            None,
            "expected '%%MatrixMarket matrix coordinate <field> <symmetry>'",
        ));
    }
    if !header[2].eq_ignore_ascii_case("coordinate") {
        return Err(IoError::parse(
            origin,
            1,
            Some(3),
            format!("unsupported layout '{}' (only 'coordinate')", header[2]),
        ));
    }
    let field = match header[3].to_ascii_lowercase().as_str() {
        "pattern" => MtxField::Pattern,
        "integer" => MtxField::Integer,
        "real" => MtxField::Real,
        other => {
            return Err(IoError::parse(
                origin,
                1,
                Some(4),
                format!("unsupported value type '{other}' (pattern, integer or real)"),
            ))
        }
    };
    let symmetric = match header[4].to_ascii_lowercase().as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(IoError::parse(
                origin,
                1,
                Some(5),
                format!("unsupported symmetry '{other}' (general or symmetric)"),
            ))
        }
    };

    // Size line: rows cols nnz (after % comments).
    let (rows, cols, nnz) = loop {
        buf.clear();
        let n = reader
            .read_line(&mut buf)
            .map_err(|e| IoError::io(origin, e))?;
        if n == 0 {
            return Err(IoError::parse(
                origin,
                line_no,
                None,
                "missing 'rows cols nnz' size line",
            ));
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = line.split_ascii_whitespace().collect();
        if fields.len() != 3 {
            return Err(IoError::parse(
                origin,
                line_no,
                None,
                format!("expected 'rows cols nnz', got {} field(s)", fields.len()),
            ));
        }
        let mut dims = [0u64; 3];
        for (i, f) in fields.iter().enumerate() {
            dims[i] = f.parse::<u64>().map_err(|_| {
                IoError::parse(
                    origin,
                    line_no,
                    Some(i as u64 + 1),
                    format!("invalid count '{f}' (expected a non-negative integer)"),
                )
            })?;
        }
        break (dims[0], dims[1], dims[2]);
    };
    let num_vertices = rows.max(cols);
    if num_vertices > VertexId::MAX as u64 {
        return Err(IoError::parse(
            origin,
            line_no,
            None,
            format!("dimension {num_vertices} exceeds the u32 id space"),
        ));
    }

    // Entries: nnz lines of `i j [value]`, 1-based.
    let mut edges: Vec<Edge> = Vec::with_capacity(nnz.min(1 << 24) as usize);
    let mut seen: u64 = 0;
    loop {
        buf.clear();
        let n = reader
            .read_line(&mut buf)
            .map_err(|e| IoError::io(origin, e))?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        seen += 1;
        if seen > nnz {
            return Err(IoError::parse(
                origin,
                line_no,
                None,
                format!("more than the declared {nnz} entries"),
            ));
        }
        let fields: Vec<&str> = line.split_ascii_whitespace().collect();
        let expected = if field == MtxField::Pattern { 2 } else { 3 };
        if fields.len() != expected {
            return Err(IoError::parse(
                origin,
                line_no,
                None,
                format!("expected {expected} field(s), got {}", fields.len()),
            ));
        }
        let endpoint = |idx: usize, bound: u64| -> Result<VertexId, IoError> {
            let raw = fields[idx].parse::<u64>().map_err(|_| {
                IoError::parse(
                    origin,
                    line_no,
                    Some(idx as u64 + 1),
                    format!(
                        "invalid index '{}' (expected a positive integer)",
                        fields[idx]
                    ),
                )
            })?;
            if raw == 0 || raw > bound {
                return Err(IoError::parse(
                    origin,
                    line_no,
                    Some(idx as u64 + 1),
                    format!("index {raw} out of range 1..={bound}"),
                ));
            }
            Ok((raw - 1) as VertexId)
        };
        let src = endpoint(0, rows)?;
        let dst = endpoint(1, cols)?;
        let weight = match field {
            MtxField::Pattern => default_weight(src, dst),
            MtxField::Integer => parse_weight(fields[2], origin, line_no, 3)?,
            MtxField::Real => {
                let v = fields[2].parse::<f64>().map_err(|_| {
                    IoError::parse(
                        origin,
                        line_no,
                        Some(3),
                        format!("invalid value '{}'", fields[2]),
                    )
                })?;
                if !v.is_finite() || v < 0.0 || v > Weight::MAX as f64 {
                    return Err(IoError::parse(
                        origin,
                        line_no,
                        Some(3),
                        format!("value {v} out of the representable weight range"),
                    ));
                }
                v.round() as Weight
            }
        };
        edges.push(Edge::new(src, dst, weight));
        if symmetric && src != dst {
            edges.push(Edge::new(dst, src, weight));
        }
    }
    if seen < nnz {
        return Err(IoError::parse(
            origin,
            line_no,
            None,
            format!("truncated: header declares {nnz} entries, found {seen}"),
        ));
    }
    EdgeList::try_from_edges(num_vertices as u32, edges).map_err(|e| IoError::graph(origin, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::path::PathBuf;

    fn origin() -> PathBuf {
        PathBuf::from("test-input")
    }

    fn parse(text: &str, format: TextFormat) -> Result<EdgeList, IoError> {
        read_text(Cursor::new(text), format, &origin())
    }

    #[test]
    fn plain_edge_list_with_and_without_weights() {
        let el = parse("0 1 10\n2 0\n# comment\n\n1 2 7\n", TextFormat::EdgeList).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.num_edges(), 3);
        assert_eq!(el.edges()[0], Edge::new(0, 1, 10));
        assert_eq!(el.edges()[1].weight, default_weight(2, 0));
    }

    #[test]
    fn snap_tsv_skips_hash_comments() {
        let text = "# Directed graph\n# Nodes: 3 Edges: 2\n0\t1\n1\t2\n";
        let el = parse(text, TextFormat::SnapTsv).unwrap();
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.num_vertices(), 3);
    }

    #[test]
    fn matrix_market_general_integer() {
        let text = "%%MatrixMarket matrix coordinate integer general\n\
                    % a comment\n3 3 2\n1 2 5\n3 1 9\n";
        let el = parse(text, TextFormat::MatrixMarket).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.edges()[0], Edge::new(0, 1, 5));
        assert_eq!(el.edges()[1], Edge::new(2, 0, 9));
    }

    #[test]
    fn matrix_market_symmetric_pattern_mirrors_edges() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n";
        let el = parse(text, TextFormat::MatrixMarket).unwrap();
        // (2,1) mirrors to (1,2); the diagonal (3,3) does not.
        assert_eq!(el.num_edges(), 3);
        assert_eq!(el.edges()[0].weight, el.edges()[1].weight);
    }

    #[test]
    fn matrix_market_real_rounds() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.7\n";
        let el = parse(text, TextFormat::MatrixMarket).unwrap();
        assert_eq!(el.edges()[0].weight, 4);
    }

    #[test]
    fn errors_carry_line_and_field_context() {
        let err = parse("0 1\nx 2\n", TextFormat::EdgeList).unwrap_err();
        match err {
            IoError::Parse { line, col, .. } => {
                assert_eq!(line, 2);
                assert_eq!(col, Some(1));
            }
            other => panic!("expected a parse error, got {other}"),
        }
        assert!(format!("{}", parse("0", TextFormat::EdgeList).unwrap_err()).contains(":1:"));
    }

    #[test]
    fn rejects_malformed_matrix_market() {
        // Not a MatrixMarket banner.
        assert!(parse("0 1\n", TextFormat::MatrixMarket).is_err());
        // Truncated: fewer entries than declared.
        let trunc = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n";
        let err = parse(trunc, TextFormat::MatrixMarket).unwrap_err();
        assert!(format!("{err}").contains("truncated"), "{err}");
        // Out-of-range 1-based index.
        let oob = "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n4 1\n";
        assert!(parse(oob, TextFormat::MatrixMarket).is_err());
        // Zero is out of range in a 1-based format.
        let zero = "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n0 1\n";
        assert!(parse(zero, TextFormat::MatrixMarket).is_err());
        // Negative counts are rejected.
        let neg = "%%MatrixMarket matrix coordinate pattern general\n3 3 -1\n";
        assert!(parse(neg, TextFormat::MatrixMarket).is_err());
        // Extra entries beyond nnz are rejected.
        let extra = "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 2\n2 3\n";
        assert!(parse(extra, TextFormat::MatrixMarket).is_err());
    }

    #[test]
    fn rejects_negative_and_overflowing_ids() {
        assert!(parse("-1 2\n", TextFormat::EdgeList).is_err());
        assert!(parse("0 4294967296\n", TextFormat::EdgeList).is_err());
        assert!(parse("0 1 -3\n", TextFormat::EdgeList).is_err());
        assert!(parse("0 1 2 3\n", TextFormat::EdgeList).is_err());
    }

    #[test]
    fn format_names_round_trip() {
        for f in TextFormat::ALL {
            assert_eq!(TextFormat::parse_name(f.name()), Some(f));
            assert_eq!(format!("{f}"), f.name());
        }
        assert_eq!(TextFormat::parse_name("bogus"), None);
        assert_eq!(
            TextFormat::from_path(Path::new("a/b.mtx")),
            TextFormat::MatrixMarket
        );
        assert_eq!(
            TextFormat::from_path(Path::new("a/b.tsv")),
            TextFormat::SnapTsv
        );
        assert_eq!(
            TextFormat::from_path(Path::new("a/b.txt")),
            TextFormat::EdgeList
        );
    }

    #[test]
    fn default_weight_is_deterministic_and_byte_sized() {
        for (s, d) in [(0u32, 1u32), (7, 7), (123_456, 654_321)] {
            let w = default_weight(s, d);
            assert_eq!(w, default_weight(s, d));
            assert!(w <= 255);
        }
        assert_ne!(default_weight(0, 1), default_weight(1, 0));
    }
}
