//! Vertex property arrays and active-vertex sets.
//!
//! Algorithm 1 of the paper operates on three arrays: `Vprop` (the per-vertex property),
//! `Vtemp` (the temporary property accumulated during edge traversal) and the active
//! vertex set `Vactive`. [`VertexProps`] models the first two and [`ActiveSet`] the third.

use crate::{BitSet, VertexId};

/// A dense per-vertex property array.
///
/// The generic parameter is the property value type (`f64` for PageRank, `u32` distances
/// for BFS/SSSP, component ids for CC, widest-path widths for SSWP ...).
///
/// # Example
///
/// ```
/// use piccolo_graph::VertexProps;
/// let mut props = VertexProps::new(4, 0u32);
/// props[2] = 7;
/// assert_eq!(props[2], 7);
/// assert_eq!(props.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VertexProps<T> {
    values: Vec<T>,
}

impl<T: Clone> VertexProps<T> {
    /// Creates a property array of `num_vertices` entries initialised to `init`.
    pub fn new(num_vertices: u32, init: T) -> Self {
        Self {
            values: vec![init; num_vertices as usize],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> u32 {
        self.values.len() as u32
    }

    /// Returns `true` if there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Mutably borrow the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Resets every entry to `value`.
    pub fn fill(&mut self, value: T) {
        self.values.iter_mut().for_each(|v| *v = value.clone());
    }

    /// Iterates over `(vertex, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &T)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as VertexId, v))
    }
}

impl<T> std::ops::Index<VertexId> for VertexProps<T> {
    type Output = T;

    fn index(&self, index: VertexId) -> &T {
        &self.values[index as usize]
    }
}

impl<T> std::ops::IndexMut<VertexId> for VertexProps<T> {
    fn index_mut(&mut self, index: VertexId) -> &mut T {
        &mut self.values[index as usize]
    }
}

impl<T: Clone> From<Vec<T>> for VertexProps<T> {
    fn from(values: Vec<T>) -> Self {
        Self { values }
    }
}

/// The set of vertices active in the current iteration (the frontier).
///
/// Maintains both a membership bitset (for O(1) dedup) and an insertion-ordered list (for
/// cheap iteration), matching how graph accelerators enumerate active vertices.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    members: BitSet,
    order: Vec<VertexId>,
}

impl ActiveSet {
    /// Creates an empty active set over `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        Self {
            members: BitSet::new(num_vertices as usize),
            order: Vec::new(),
        }
    }

    /// Creates an active set containing every vertex (PageRank's first iteration, and the
    /// `Vactive = V` case discussed in Section II-B).
    pub fn all(num_vertices: u32) -> Self {
        let mut members = BitSet::new(num_vertices as usize);
        members.fill();
        Self {
            members,
            order: (0..num_vertices).collect(),
        }
    }

    /// Activates `v`; returns `true` if it was newly activated.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn activate(&mut self, v: VertexId) -> bool {
        if self.members.insert(v as usize) {
            self.order.push(v);
            true
        } else {
            false
        }
    }

    /// Returns `true` if `v` is active.
    pub fn contains(&self, v: VertexId) -> bool {
        self.members.contains(v as usize)
    }

    /// Number of active vertices.
    pub fn len(&self) -> u32 {
        self.order.len() as u32
    }

    /// Returns `true` if no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total number of vertices the set ranges over.
    pub fn num_vertices(&self) -> u32 {
        self.members.capacity() as u32
    }

    /// Active vertices in activation order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.order.iter().copied()
    }

    /// Active vertices in ascending vertex-id order (the order the prefetcher visits them).
    pub fn iter_sorted(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.members.iter().map(|v| v as VertexId)
    }

    /// Visits the active vertices in ascending order via the word-level bitset scan
    /// ([`BitSet::for_each_set`]) — the fast path for building frontier lists.
    pub fn for_each_sorted(&self, mut f: impl FnMut(VertexId)) {
        self.members.for_each_set(|v| f(v as VertexId));
    }

    /// Fraction of vertices that are active.
    pub fn density(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Removes all vertices.
    pub fn clear(&mut self) {
        self.members.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn props_index_and_fill() {
        let mut p = VertexProps::new(3, 1.0f64);
        p[1] = 2.5;
        assert_eq!(p[1], 2.5);
        assert_eq!(p.as_slice(), &[1.0, 2.5, 1.0]);
        p.fill(0.0);
        assert!(p.iter().all(|(_, &v)| v == 0.0));
    }

    #[test]
    fn props_from_vec() {
        let p: VertexProps<u32> = vec![4, 5, 6].into();
        assert_eq!(p.len(), 3);
        assert_eq!(p[2], 6);
    }

    #[test]
    fn active_set_dedups() {
        let mut a = ActiveSet::new(10);
        assert!(a.activate(3));
        assert!(!a.activate(3));
        assert!(a.activate(7));
        assert_eq!(a.len(), 2);
        assert!(a.contains(3));
        assert!(!a.contains(4));
        let order: Vec<_> = a.iter().collect();
        assert_eq!(order, vec![3, 7]);
    }

    #[test]
    fn active_all_is_dense() {
        let a = ActiveSet::all(100);
        assert_eq!(a.len(), 100);
        assert!((a.density() - 1.0).abs() < 1e-12);
        assert_eq!(a.iter_sorted().count(), 100);
    }

    #[test]
    fn clear_resets() {
        let mut a = ActiveSet::all(5);
        a.clear();
        assert!(a.is_empty());
        assert!(a.activate(2));
    }

    #[test]
    fn sorted_iteration_is_sorted() {
        let mut a = ActiveSet::new(50);
        for v in [42, 3, 17, 8] {
            a.activate(v);
        }
        let sorted: Vec<_> = a.iter_sorted().collect();
        assert_eq!(sorted, vec![3, 8, 17, 42]);
    }
}
