//! Graph tiling: destination-interval tiles and 2-D grid partitioning.
//!
//! Tiling (Section II-B, Fig. 2b of the paper) restricts the destination vertices
//! processed in one pass to a contiguous range so that the per-tile random working set
//! (`Vtemp[dst_range]`) fits in on-chip memory. The cost is that the topology and the
//! sequential source-property stream are re-read once per tile.
//!
//! *Perfect tiling* sizes the tile so the destination properties fit entirely in the
//! on-chip memory (every random access hits except cold misses). Piccolo instead prefers
//! tiles that are a *scaling factor* larger than perfect (Fig. 17), because its cache only
//! stores useful 8 B sectors.

use crate::VertexId;

/// A single destination-interval tile: destinations in `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tile {
    /// First destination vertex (inclusive).
    pub start: VertexId,
    /// One past the last destination vertex (exclusive).
    pub end: VertexId,
}

impl Tile {
    /// Number of destination vertices covered by the tile.
    pub fn width(&self) -> u32 {
        self.end - self.start
    }

    /// Returns `true` if `v` falls inside the tile.
    pub fn contains(&self, v: VertexId) -> bool {
        v >= self.start && v < self.end
    }

    /// The destination range as a `Range`.
    pub fn range(&self) -> std::ops::Range<VertexId> {
        self.start..self.end
    }
}

/// A partition of the destination-vertex space into equal-width tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tiling {
    num_vertices: u32,
    tile_width: u32,
}

impl Tiling {
    /// Creates a tiling of `num_vertices` destinations into tiles of `tile_width`.
    ///
    /// # Panics
    ///
    /// Panics if `tile_width == 0`.
    pub fn by_tile_width(num_vertices: u32, tile_width: u32) -> Self {
        assert!(tile_width > 0, "tile width must be positive");
        Self {
            num_vertices,
            tile_width,
        }
    }

    /// Single tile covering all destinations (the "non-tiling" configuration of Fig. 3).
    pub fn single_tile(num_vertices: u32) -> Self {
        Self {
            num_vertices,
            tile_width: num_vertices.max(1),
        }
    }

    /// Perfect tiling for an on-chip memory of `onchip_bytes` holding `bytes_per_vertex`
    /// of temporary property per destination (Section II-B): the tile width is chosen so
    /// the whole destination slice fits on chip.
    pub fn perfect(num_vertices: u32, onchip_bytes: u64, bytes_per_vertex: u32) -> Self {
        let width = (onchip_bytes / bytes_per_vertex as u64).max(1) as u32;
        Self::by_tile_width(num_vertices, width.min(num_vertices.max(1)))
    }

    /// Perfect tiling scaled by `factor` (the x-axis of Fig. 17). `factor = 1` is perfect
    /// tiling, larger factors mean proportionally wider tiles.
    pub fn scaled(
        num_vertices: u32,
        onchip_bytes: u64,
        bytes_per_vertex: u32,
        factor: u32,
    ) -> Self {
        assert!(factor > 0, "scaling factor must be positive");
        let perfect = Self::perfect(num_vertices, onchip_bytes, bytes_per_vertex);
        let width = perfect
            .tile_width
            .saturating_mul(factor)
            .min(num_vertices.max(1));
        Self::by_tile_width(num_vertices, width)
    }

    /// Number of destination vertices.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Width of each tile (the last tile may be narrower).
    pub fn tile_width(&self) -> u32 {
        self.tile_width
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> u32 {
        if self.num_vertices == 0 {
            1
        } else {
            self.num_vertices.div_ceil(self.tile_width)
        }
    }

    /// Returns the `idx`-th tile.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_tiles()`.
    pub fn tile(&self, idx: u32) -> Tile {
        assert!(idx < self.num_tiles(), "tile index out of range");
        let start = idx * self.tile_width;
        let end = (start + self.tile_width).min(self.num_vertices.max(start));
        Tile { start, end }
    }

    /// Tile index owning destination `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn tile_of(&self, v: VertexId) -> u32 {
        assert!(v < self.num_vertices, "vertex out of range");
        v / self.tile_width
    }

    /// Iterates over all tiles in destination order.
    pub fn iter(&self) -> impl Iterator<Item = Tile> + '_ {
        (0..self.num_tiles()).map(|i| self.tile(i))
    }
}

/// Splits a graph into per-tile CSR slices in a single pass over the edges (every edge
/// lands in exactly one slice, keyed by its destination tile). This is how tiled
/// accelerators store the topology: one row-index array and one column array per tile.
pub fn partition_csr(graph: &crate::Csr, tiling: &Tiling) -> Vec<crate::Csr> {
    let n = graph.num_vertices();
    let mut per_tile: Vec<crate::EdgeList> = (0..tiling.num_tiles())
        .map(|_| crate::EdgeList::new(n))
        .collect();
    for e in graph.iter_edges() {
        per_tile[tiling.tile_of(e.dst) as usize].push(e);
    }
    per_tile.iter().map(crate::Csr::from_edge_list).collect()
}

/// A 2-D grid partition of the edge set used by edge-centric accelerators (Section VII-H):
/// edges are grouped into `src_tiles x dst_tiles` blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridPartition {
    /// Tiling of the source dimension.
    pub src: Tiling,
    /// Tiling of the destination dimension.
    pub dst: Tiling,
}

impl GridPartition {
    /// Creates a grid partition with the given source/destination tile widths.
    pub fn new(num_vertices: u32, src_width: u32, dst_width: u32) -> Self {
        Self {
            src: Tiling::by_tile_width(num_vertices, src_width),
            dst: Tiling::by_tile_width(num_vertices, dst_width),
        }
    }

    /// Total number of grid blocks.
    pub fn num_blocks(&self) -> u64 {
        self.src.num_tiles() as u64 * self.dst.num_tiles() as u64
    }

    /// The block (row-major over source tiles) owning an edge `(src, dst)`.
    pub fn block_of(&self, src: VertexId, dst: VertexId) -> u64 {
        self.src.tile_of(src) as u64 * self.dst.num_tiles() as u64 + self.dst.tile_of(dst) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_cover_all_vertices_without_overlap() {
        let t = Tiling::by_tile_width(1000, 128);
        assert_eq!(t.num_tiles(), 8);
        let mut covered = 0u32;
        let mut prev_end = 0;
        for tile in t.iter() {
            assert_eq!(tile.start, prev_end);
            covered += tile.width();
            prev_end = tile.end;
        }
        assert_eq!(covered, 1000);
        assert_eq!(t.tile(7).width(), 1000 - 7 * 128);
    }

    #[test]
    fn tile_of_is_consistent_with_contains() {
        let t = Tiling::by_tile_width(500, 64);
        for v in [0u32, 63, 64, 499] {
            let idx = t.tile_of(v);
            assert!(t.tile(idx).contains(v));
        }
    }

    #[test]
    fn perfect_tiling_matches_onchip_capacity() {
        // 4 KiB of on-chip memory, 8 B per vertex -> 512-vertex tiles.
        let t = Tiling::perfect(10_000, 4096, 8);
        assert_eq!(t.tile_width(), 512);
        assert_eq!(t.num_tiles(), 20);
    }

    #[test]
    fn scaled_tiling_multiplies_width() {
        let t1 = Tiling::scaled(10_000, 4096, 8, 1);
        let t4 = Tiling::scaled(10_000, 4096, 8, 4);
        assert_eq!(t4.tile_width(), 4 * t1.tile_width());
        // Factor large enough to exceed |V| clamps to a single tile.
        let tbig = Tiling::scaled(10_000, 4096, 8, 1000);
        assert_eq!(tbig.num_tiles(), 1);
    }

    #[test]
    fn single_tile_spans_everything() {
        let t = Tiling::single_tile(777);
        assert_eq!(t.num_tiles(), 1);
        assert_eq!(t.tile(0).range(), 0..777);
    }

    #[test]
    fn grid_partition_blocks() {
        let g = GridPartition::new(100, 25, 50);
        assert_eq!(g.num_blocks(), 4 * 2);
        assert_eq!(g.block_of(0, 0), 0);
        assert_eq!(g.block_of(99, 99), 7);
        assert_eq!(g.block_of(30, 10), 2);
    }

    #[test]
    fn partition_csr_distributes_every_edge_once() {
        let g = crate::generate::kronecker(8, 4, 3);
        let tiling = Tiling::by_tile_width(g.num_vertices(), 37);
        let slices = partition_csr(&g, &tiling);
        assert_eq!(slices.len(), tiling.num_tiles() as usize);
        let total: u64 = slices.iter().map(|s| s.num_edges()).sum();
        assert_eq!(total, g.num_edges());
        for (i, slice) in slices.iter().enumerate() {
            let tile = tiling.tile(i as u32);
            assert!(slice.iter_edges().all(|e| tile.contains(e.dst)));
        }
    }

    #[test]
    fn empty_graph_has_one_tile() {
        let t = Tiling::single_tile(0);
        assert_eq!(t.num_tiles(), 1);
    }
}
