//! Process-global registry of externally-loaded graphs.
//!
//! The synthetic stand-ins of [`crate::datasets`] are pure functions of
//! `(dataset, scale_shift, seed)`, so a [`crate::Dataset`] value alone identifies a
//! graph anywhere in the stack (campaign graph store, `results.json` rows, bench
//! metrics). Real graphs loaded from disk (`piccolo-io`) have no such recipe — the
//! bytes live in memory after parsing. This registry bridges the two worlds: a loaded
//! [`Csr`] is [`register`]ed under a name and receives a stable small id, and
//! [`Dataset::External`] wraps that id so every downstream consumer (graph keys,
//! experiment grids, reports) works unchanged.
//!
//! Ids are assigned in registration order, so a driver that registers its `--external`
//! graphs in CLI order gets deterministic ids (and therefore deterministic output) for
//! any worker count. Re-registering an existing name replaces the graph and keeps the
//! id, so a repeated load is idempotent.
//!
//! # Lazy registration
//!
//! A graph can also be registered by **metadata only** ([`register_lazy`]): name,
//! structural fingerprint and vertex/edge counts, plus a loader closure that produces
//! the CSR on demand. Everything identity-shaped — [`name`], [`lookup`],
//! [`content_fingerprint`], [`vertices_edges`], and therefore campaign plan hashing
//! and `Dataset::spec()` — works without materializing the graph. The loader runs at
//! most once, on the first [`graph`] call; until then a resumed campaign whose journal
//! already covers every unit of that graph never pays the load. The loaded CSR is
//! verified against the registered fingerprint and counts, so a stale loader source is
//! an error, never silent wrong results.
//!
//! # Example
//!
//! ```
//! use piccolo_graph::{external, generate, Dataset};
//!
//! let g = generate::kronecker(10, 4, 1);
//! let ds = external::register("demo-doc", g.clone());
//! assert_eq!(ds.short_name(), "demo-doc");
//! assert_eq!(ds.build(0, 0), g); // shift/seed are ignored for external graphs
//! assert_eq!(external::lookup("demo-doc"), Some(ds));
//! ```

use crate::{Csr, Dataset};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Materialization state of a registry entry.
enum GraphState {
    /// The CSR is in memory (eager registration, or a lazy load that completed).
    Loaded(Arc<Csr>),
    /// A thread is running the lazy loader right now; other accessors block on the
    /// registry condvar until it finishes.
    Loading,
    /// Registered by metadata only; the boxed loader runs on first [`graph`] access.
    Lazy(Box<dyn FnOnce() -> Csr + Send>),
    /// The lazy loader panicked (or produced content that contradicts the registered
    /// fingerprint); every subsequent access propagates the failure.
    Failed,
}

struct Entry {
    name: String,
    state: GraphState,
    /// Structural content hash: computed at [`register`] time (O(edges)), or supplied
    /// by the caller of [`register_lazy`] and verified when the loader runs. Either
    /// way, plan fingerprints over external graphs are a constant-size fold per
    /// invocation and never force a load.
    fingerprint: u64,
    vertices: u64,
    edges: u64,
}

/// FNV-1a 64 over the graph's structure: vertex/edge counts and every `(src, dst,
/// weight)` triple in CSR order. Self-contained (this crate sits below `piccolo-io`,
/// whose hashing helpers therefore cannot be reused here) and stable across platforms.
pub(crate) fn csr_fingerprint(graph: &Csr) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    fold(graph.num_vertices() as u64);
    fold(graph.num_edges());
    for e in graph.iter_edges() {
        fold(e.src as u64);
        fold(e.dst as u64);
        fold(e.weight as u64);
    }
    h
}

struct Registry {
    entries: Mutex<Vec<Entry>>,
    /// Signalled whenever an entry leaves the [`GraphState::Loading`] state.
    loaded: Condvar,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        entries: Mutex::new(Vec::new()),
        loaded: Condvar::new(),
    })
}

/// Locks the entry table, tolerating poison: every mutation of the table is a single
/// whole-entry or whole-state write, so a panic elsewhere (e.g. a [`GraphState::Failed`]
/// propagation) never leaves a half-updated entry behind.
fn lock_entries(reg: &Registry) -> std::sync::MutexGuard<'_, Vec<Entry>> {
    reg.entries.lock().unwrap_or_else(|e| e.into_inner())
}

/// Inserts `entry` under its name: replaces in place (keeping the id) if the name is
/// already registered, appends (assigning the next id) otherwise.
fn insert(entry: Entry) -> Dataset {
    let reg = registry();
    let mut entries = lock_entries(reg);
    if let Some(id) = entries.iter().position(|e| e.name == entry.name) {
        entries[id] = entry;
        return Dataset::External { id: id as u32 };
    }
    entries.push(entry);
    Dataset::External {
        id: (entries.len() - 1) as u32,
    }
}

/// Registers `graph` under `name` and returns the [`Dataset::External`] handle for it.
///
/// If `name` is already registered, its graph is replaced and the existing id is
/// reused, so repeated loads of the same source are idempotent and ids stay stable
/// for the life of the process.
pub fn register(name: &str, graph: Csr) -> Dataset {
    let fingerprint = csr_fingerprint(&graph);
    let vertices = graph.num_vertices() as u64;
    let edges = graph.num_edges();
    insert(Entry {
        name: name.to_string(),
        state: GraphState::Loaded(Arc::new(graph)),
        fingerprint,
        vertices,
        edges,
    })
}

/// Registers a graph by metadata only; `loader` runs (at most once) on the first
/// [`graph`] access.
///
/// `fingerprint`, `vertices` and `edges` must describe the graph `loader` will
/// produce — they come from a previous full load of the same content (the bench
/// drivers persist them in a snapshot sidecar). The loaded CSR is checked against all
/// three; a mismatch poisons the entry and panics, because silently simulating a
/// different graph than the one the campaign plan was hashed over would corrupt
/// results. Name/id semantics match [`register`].
pub fn register_lazy(
    name: &str,
    fingerprint: u64,
    vertices: u64,
    edges: u64,
    loader: impl FnOnce() -> Csr + Send + 'static,
) -> Dataset {
    insert(Entry {
        name: name.to_string(),
        state: GraphState::Lazy(Box::new(loader)),
        fingerprint,
        vertices,
        edges,
    })
}

/// Looks up a previously registered name; `None` if it was never registered.
pub fn lookup(name: &str) -> Option<Dataset> {
    lock_entries(registry())
        .iter()
        .position(|e| e.name == name)
        .map(|id| Dataset::External { id: id as u32 })
}

/// The name `id` was registered under, if any.
pub fn name(id: u32) -> Option<String> {
    lock_entries(registry())
        .get(id as usize)
        .map(|e| e.name.clone())
}

/// Vertex and edge counts of `id`'s graph, if registered — available without
/// materializing a lazily-registered graph.
pub fn vertices_edges(id: u32) -> Option<(u64, u64)> {
    lock_entries(registry())
        .get(id as usize)
        .map(|e| (e.vertices, e.edges))
}

/// Whether `id`'s graph is currently materialized in memory. `None` if `id` was never
/// registered. Lazily-registered graphs report `false` until the first [`graph`] call.
pub fn is_loaded(id: u32) -> Option<bool> {
    lock_entries(registry())
        .get(id as usize)
        .map(|e| matches!(e.state, GraphState::Loaded(_)))
}

/// The registered graph for `id`, if any. The `Arc` is shared with the registry, so
/// handing it to a consumer does not copy the CSR.
///
/// A lazily-registered graph is materialized here: the loader runs **outside** the
/// registry lock (other names stay accessible during a long parse), concurrent callers
/// for the same id block until it finishes, and the result is verified against the
/// registered fingerprint and counts before anyone sees it.
///
/// # Panics
///
/// If the lazy loader panics or produces content that does not match the registered
/// metadata — on the loading thread and on every subsequent access to the same id.
pub fn graph(id: u32) -> Option<Arc<Csr>> {
    let reg = registry();
    let mut entries = lock_entries(reg);
    loop {
        let entry = entries.get_mut(id as usize)?;
        match &mut entry.state {
            GraphState::Loaded(g) => return Some(Arc::clone(g)),
            GraphState::Failed => {
                let name = entry.name.clone();
                // Release the lock before panicking so the registry stays usable for
                // other graphs (and other tests in the same process).
                drop(entries);
                panic!("lazy load of external graph '{name}' failed");
            }
            GraphState::Loading => {
                entries = reg.loaded.wait(entries).unwrap_or_else(|e| e.into_inner());
            }
            state @ GraphState::Lazy(_) => {
                let GraphState::Lazy(loader) = std::mem::replace(state, GraphState::Loading) else {
                    unreachable!("matched Lazy above");
                };
                let name = entry.name.clone();
                let expected = (entry.fingerprint, entry.vertices, entry.edges);
                drop(entries);

                // If the loader (or the verification below) panics, mark the entry
                // failed and wake waiters before the panic continues unwinding —
                // otherwise concurrent callers would block on `Loading` forever.
                struct FailGuard(u32);
                impl Drop for FailGuard {
                    fn drop(&mut self) {
                        let reg = registry();
                        if let Some(e) = lock_entries(reg).get_mut(self.0 as usize) {
                            e.state = GraphState::Failed;
                        }
                        reg.loaded.notify_all();
                    }
                }
                let guard = FailGuard(id);
                let graph = loader();
                let actual = (
                    csr_fingerprint(&graph),
                    graph.num_vertices() as u64,
                    graph.num_edges(),
                );
                assert_eq!(
                    actual, expected,
                    "lazy loader for external graph '{name}' produced different content \
                     (fingerprint, vertices, edges) than was registered"
                );
                std::mem::forget(guard);

                let graph = Arc::new(graph);
                let mut entries = lock_entries(reg);
                if let Some(e) = entries.get_mut(id as usize) {
                    e.state = GraphState::Loaded(Arc::clone(&graph));
                }
                reg.loaded.notify_all();
                return Some(graph);
            }
        }
    }
}

/// The structural content hash of `id`'s registered graph, if any — computed once at
/// [`register`] time (or carried over from the sidecar for [`register_lazy`]). Two
/// registrations with equal fingerprints hold identical graphs (same counts, same
/// `(src, dst, weight)` sequence), which is what campaign plan hashing folds in so
/// stale shard files / journal entries computed over an edited external source are
/// refused without re-hashing — or even loading — the graph per invocation.
pub fn content_fingerprint(id: u32) -> Option<u64> {
    lock_entries(registry())
        .get(id as usize)
        .map(|e| e.fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn register_assigns_stable_ids_and_replaces_by_name() {
        let g1 = generate::uniform(100, 300, 1);
        let g2 = generate::uniform(200, 500, 2);
        let a = register("ext-test-a", g1.clone());
        let b = register("ext-test-b", g2.clone());
        assert_ne!(a, b);
        assert_eq!(lookup("ext-test-a"), Some(a));
        let Dataset::External { id: ida } = a else {
            panic!("register returns an External dataset");
        };
        assert_eq!(name(ida).as_deref(), Some("ext-test-a"));
        assert_eq!(*graph(ida).unwrap(), g1);
        assert_eq!(
            vertices_edges(ida),
            Some((g1.num_vertices() as u64, g1.num_edges()))
        );
        // Re-registering the same name keeps the id and replaces the graph — and the
        // content fingerprint follows the content, not the id.
        let fp1 = content_fingerprint(ida).unwrap();
        let a2 = register("ext-test-a", g2.clone());
        assert_eq!(a, a2);
        assert_eq!(*graph(ida).unwrap(), g2);
        let fp2 = content_fingerprint(ida).unwrap();
        assert_ne!(fp1, fp2, "different content, different fingerprint");
        register("ext-test-a", g1.clone());
        assert_eq!(
            content_fingerprint(ida).unwrap(),
            fp1,
            "identical content restores the fingerprint"
        );
    }

    #[test]
    fn unknown_ids_and_names_are_none() {
        assert_eq!(lookup("ext-test-never-registered"), None);
        assert_eq!(name(u32::MAX), None);
        assert!(graph(u32::MAX).is_none());
        assert!(content_fingerprint(u32::MAX).is_none());
        assert!(vertices_edges(u32::MAX).is_none());
        assert!(is_loaded(u32::MAX).is_none());
    }

    #[test]
    fn lazy_registration_defers_the_load_until_first_graph_access() {
        let g = generate::uniform(300, 1200, 5);
        let fp = csr_fingerprint(&g);
        let loads = Arc::new(AtomicUsize::new(0));
        let loader = {
            let g = g.clone();
            let loads = Arc::clone(&loads);
            move || {
                loads.fetch_add(1, Ordering::SeqCst);
                g
            }
        };
        let ds = register_lazy(
            "ext-test-lazy",
            fp,
            g.num_vertices() as u64,
            g.num_edges(),
            loader,
        );
        let Dataset::External { id } = ds else {
            panic!("register_lazy returns an External dataset");
        };

        // Everything identity-shaped works without running the loader.
        assert_eq!(lookup("ext-test-lazy"), Some(ds));
        assert_eq!(name(id).as_deref(), Some("ext-test-lazy"));
        assert_eq!(content_fingerprint(id), Some(fp));
        assert_eq!(
            vertices_edges(id),
            Some((g.num_vertices() as u64, g.num_edges()))
        );
        assert_eq!(is_loaded(id), Some(false));
        assert_eq!(loads.load(Ordering::SeqCst), 0, "no access, no load");

        // First graph() call materializes; later calls share the Arc.
        assert_eq!(*graph(id).unwrap(), g);
        assert_eq!(is_loaded(id), Some(true));
        assert_eq!(*graph(id).unwrap(), g);
        assert_eq!(
            loads.load(Ordering::SeqCst),
            1,
            "the loader ran exactly once"
        );
    }

    #[test]
    fn lazy_loader_with_wrong_content_poisons_the_entry() {
        let real = generate::uniform(128, 400, 9);
        let other = generate::uniform(128, 400, 10);
        let ds = register_lazy(
            "ext-test-lazy-bad",
            csr_fingerprint(&real),
            real.num_vertices() as u64,
            real.num_edges(),
            move || other,
        );
        let Dataset::External { id } = ds else {
            panic!("register_lazy returns an External dataset");
        };
        let first = std::panic::catch_unwind(|| graph(id));
        assert!(first.is_err(), "fingerprint mismatch must panic");
        // The entry is poisoned: later accesses fail too instead of hanging.
        let second = std::panic::catch_unwind(|| graph(id));
        assert!(second.is_err(), "a failed load stays failed");
    }
}
