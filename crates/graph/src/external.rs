//! Process-global registry of externally-loaded graphs.
//!
//! The synthetic stand-ins of [`crate::datasets`] are pure functions of
//! `(dataset, scale_shift, seed)`, so a [`crate::Dataset`] value alone identifies a
//! graph anywhere in the stack (campaign graph store, `results.json` rows, bench
//! metrics). Real graphs loaded from disk (`piccolo-io`) have no such recipe — the
//! bytes live in memory after parsing. This registry bridges the two worlds: a loaded
//! [`Csr`] is [`register`]ed under a name and receives a stable small id, and
//! [`Dataset::External`] wraps that id so every downstream consumer (graph keys,
//! experiment grids, reports) works unchanged.
//!
//! Ids are assigned in registration order, so a driver that registers its `--external`
//! graphs in CLI order gets deterministic ids (and therefore deterministic output) for
//! any worker count. Re-registering an existing name replaces the graph and keeps the
//! id, so a repeated load is idempotent.
//!
//! # Lazy registration
//!
//! A graph can also be registered by **metadata only** ([`register_lazy`]): name,
//! structural fingerprint and vertex/edge counts, plus a loader closure that produces
//! the CSR on demand. Everything identity-shaped — [`name`], [`lookup`],
//! [`content_fingerprint`], [`vertices_edges`], and therefore campaign plan hashing
//! and `Dataset::spec()` — works without materializing the graph. The loader runs on
//! the first [`graph`] call; until then a resumed campaign whose journal already
//! covers every unit of that graph never pays the load. The loaded CSR is verified
//! against the registered fingerprint and counts, so a stale loader source is an
//! error, never silent wrong results.
//!
//! # Reclaim
//!
//! The registry pins a loaded graph by default. [`release`] downgrades a
//! lazily-registered graph's pin to a weak handle, so its memory is returned to the
//! allocator as soon as the last consumer drops its `Arc` — the campaign graph store
//! calls this when it evicts an external graph, and the retained loader transparently
//! re-materializes the graph if it is ever needed again. [`deregister`] removes a name
//! outright, leaving a tombstone so ids (which are positional) never shift or alias.
//!
//! # Example
//!
//! ```
//! use piccolo_graph::{external, generate, Dataset};
//!
//! let g = generate::kronecker(10, 4, 1);
//! let ds = external::register("demo-doc", g.clone());
//! assert_eq!(ds.short_name(), "demo-doc");
//! assert_eq!(ds.build(0, 0), g); // shift/seed are ignored for external graphs
//! assert_eq!(external::lookup("demo-doc"), Some(ds));
//! ```

use crate::{Csr, Dataset};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};

/// Materialization state of a registry entry.
enum GraphState {
    /// The CSR is in memory and pinned by the registry (eager registration, or a lazy
    /// load that completed and has not been [`release`]d).
    Loaded(Arc<Csr>),
    /// The registry holds only a weak handle: consumers that still hold the `Arc`
    /// keep sharing it, but once the last one drops, the memory is returned to the
    /// allocator. A later [`graph`] call upgrades the weak handle if anyone still
    /// holds the graph, and re-runs the retained loader otherwise.
    Cached(Weak<Csr>),
    /// A thread is running the lazy loader right now; other accessors block on the
    /// registry condvar until it finishes.
    Loading,
    /// Registered by metadata only; the retained loader runs on first [`graph`]
    /// access.
    Unloaded,
    /// The lazy loader panicked (or produced content that contradicts the registered
    /// fingerprint); every subsequent access propagates the failure.
    Failed,
    /// Tombstone left by [`deregister`]: the id stays allocated (ids are positional
    /// and must never shift) but the name, metadata and graph are gone.
    Deregistered,
}

struct Entry {
    name: String,
    state: GraphState,
    /// Reloader for lazily-registered graphs, retained across loads so a released
    /// graph can be materialized again ([`GraphState::Cached`] → dead weak →
    /// reload). `None` for eager registrations, whose registry `Arc` is the owner.
    loader: Option<Arc<dyn Fn() -> Csr + Send + Sync>>,
    /// Structural content hash: computed at [`register`] time (O(edges)), or supplied
    /// by the caller of [`register_lazy`] and verified when the loader runs. Either
    /// way, plan fingerprints over external graphs are a constant-size fold per
    /// invocation and never force a load.
    fingerprint: u64,
    vertices: u64,
    edges: u64,
}

/// FNV-1a 64 over the graph's structure: vertex/edge counts and every `(src, dst,
/// weight)` triple in CSR order. Self-contained (this crate sits below `piccolo-io`,
/// whose hashing helpers therefore cannot be reused here) and stable across platforms.
/// Public so callers of [`register_lazy`] that already hold the CSR (tests, tools) can
/// produce the exact fingerprint the loader will be verified against.
pub fn csr_fingerprint(graph: &Csr) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    fold(graph.num_vertices() as u64);
    fold(graph.num_edges());
    for e in graph.iter_edges() {
        fold(e.src as u64);
        fold(e.dst as u64);
        fold(e.weight as u64);
    }
    h
}

struct Registry {
    entries: Mutex<Vec<Entry>>,
    /// Signalled whenever an entry leaves the [`GraphState::Loading`] state.
    loaded: Condvar,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        entries: Mutex::new(Vec::new()),
        loaded: Condvar::new(),
    })
}

/// Locks the entry table, tolerating poison: every mutation of the table is a single
/// whole-entry or whole-state write, so a panic elsewhere (e.g. a [`GraphState::Failed`]
/// propagation) never leaves a half-updated entry behind.
fn lock_entries(reg: &Registry) -> std::sync::MutexGuard<'_, Vec<Entry>> {
    reg.entries.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether an entry is live (not a [`GraphState::Deregistered`] tombstone).
fn is_live(e: &Entry) -> bool {
    !matches!(e.state, GraphState::Deregistered)
}

/// Inserts `entry` under its name: replaces in place (keeping the id) if the name is
/// already registered, appends (assigning the next id) otherwise. Deregistered
/// tombstones never match by name, so re-registering a deregistered name allocates a
/// fresh id.
fn insert(entry: Entry) -> Dataset {
    let reg = registry();
    let mut entries = lock_entries(reg);
    if let Some(id) = entries
        .iter()
        .position(|e| is_live(e) && e.name == entry.name)
    {
        entries[id] = entry;
        return Dataset::External { id: id as u32 };
    }
    entries.push(entry);
    Dataset::External {
        id: (entries.len() - 1) as u32,
    }
}

/// Registers `graph` under `name` and returns the [`Dataset::External`] handle for it.
///
/// If `name` is already registered, its graph is replaced and the existing id is
/// reused, so repeated loads of the same source are idempotent and ids stay stable
/// for the life of the process.
pub fn register(name: &str, graph: Csr) -> Dataset {
    let fingerprint = csr_fingerprint(&graph);
    let vertices = graph.num_vertices() as u64;
    let edges = graph.num_edges();
    insert(Entry {
        name: name.to_string(),
        state: GraphState::Loaded(Arc::new(graph)),
        loader: None,
        fingerprint,
        vertices,
        edges,
    })
}

/// Registers a graph by metadata only; `loader` runs on the first [`graph`] access
/// (and again only if the graph was [`release`]d and every consumer dropped it).
///
/// `fingerprint`, `vertices` and `edges` must describe the graph `loader` will
/// produce — they come from a previous full load of the same content (the bench
/// drivers persist them in a snapshot sidecar). The loaded CSR is checked against all
/// three on every load; a mismatch poisons the entry and panics, because silently
/// simulating a different graph than the one the campaign plan was hashed over would
/// corrupt results. Name/id semantics match [`register`].
pub fn register_lazy(
    name: &str,
    fingerprint: u64,
    vertices: u64,
    edges: u64,
    loader: impl Fn() -> Csr + Send + Sync + 'static,
) -> Dataset {
    insert(Entry {
        name: name.to_string(),
        state: GraphState::Unloaded,
        loader: Some(Arc::new(loader)),
        fingerprint,
        vertices,
        edges,
    })
}

/// Looks up a previously registered name; `None` if it was never registered (or has
/// been [`deregister`]ed).
pub fn lookup(name: &str) -> Option<Dataset> {
    lock_entries(registry())
        .iter()
        .position(|e| is_live(e) && e.name == name)
        .map(|id| Dataset::External { id: id as u32 })
}

/// The name `id` was registered under, if any.
pub fn name(id: u32) -> Option<String> {
    lock_entries(registry())
        .get(id as usize)
        .filter(|e| is_live(e))
        .map(|e| e.name.clone())
}

/// Vertex and edge counts of `id`'s graph, if registered — available without
/// materializing a lazily-registered graph.
pub fn vertices_edges(id: u32) -> Option<(u64, u64)> {
    lock_entries(registry())
        .get(id as usize)
        .filter(|e| is_live(e))
        .map(|e| (e.vertices, e.edges))
}

/// Whether `id`'s graph is currently materialized in memory. `None` if `id` was never
/// registered. Lazily-registered graphs report `false` until the first [`graph`] call;
/// a [`release`]d graph reports `true` only while some consumer still holds its `Arc`.
pub fn is_loaded(id: u32) -> Option<bool> {
    lock_entries(registry())
        .get(id as usize)
        .filter(|e| is_live(e))
        .map(|e| match &e.state {
            GraphState::Loaded(_) => true,
            GraphState::Cached(w) => w.strong_count() > 0,
            _ => false,
        })
}

/// The registered graph for `id`, if any. The `Arc` is shared with the registry, so
/// handing it to a consumer does not copy the CSR.
///
/// A lazily-registered graph is materialized here: the loader runs **outside** the
/// registry lock (other names stay accessible during a long parse), concurrent callers
/// for the same id block until it finishes, and the result is verified against the
/// registered fingerprint and counts before anyone sees it.
///
/// # Panics
///
/// If the lazy loader panics or produces content that does not match the registered
/// metadata — on the loading thread and on every subsequent access to the same id.
pub fn graph(id: u32) -> Option<Arc<Csr>> {
    let reg = registry();
    let mut entries = lock_entries(reg);
    loop {
        let entry = entries.get_mut(id as usize)?;
        match &mut entry.state {
            GraphState::Loaded(g) => return Some(Arc::clone(g)),
            GraphState::Cached(w) => {
                if let Some(g) = w.upgrade() {
                    return Some(g);
                }
                // Last consumer dropped the graph; fall through to a reload.
                entry.state = GraphState::Unloaded;
            }
            GraphState::Deregistered => return None,
            GraphState::Failed => {
                let name = entry.name.clone();
                // Release the lock before panicking so the registry stays usable for
                // other graphs (and other tests in the same process).
                drop(entries);
                panic!("lazy load of external graph '{name}' failed");
            }
            GraphState::Loading => {
                entries = reg.loaded.wait(entries).unwrap_or_else(|e| e.into_inner());
            }
            GraphState::Unloaded => {
                let Some(loader) = entry.loader.clone() else {
                    // Unreachable by construction (Unloaded entries always retain a
                    // loader), but a poisoned entry beats a deadlock.
                    entry.state = GraphState::Failed;
                    continue;
                };
                entry.state = GraphState::Loading;
                let name = entry.name.clone();
                let expected = (entry.fingerprint, entry.vertices, entry.edges);
                drop(entries);

                // If the loader (or the verification below) panics, mark the entry
                // failed and wake waiters before the panic continues unwinding —
                // otherwise concurrent callers would block on `Loading` forever.
                struct FailGuard(u32);
                impl Drop for FailGuard {
                    fn drop(&mut self) {
                        let reg = registry();
                        if let Some(e) = lock_entries(reg).get_mut(self.0 as usize) {
                            e.state = GraphState::Failed;
                        }
                        reg.loaded.notify_all();
                    }
                }
                let guard = FailGuard(id);
                let graph = loader();
                let actual = (
                    csr_fingerprint(&graph),
                    graph.num_vertices() as u64,
                    graph.num_edges(),
                );
                assert_eq!(
                    actual, expected,
                    "lazy loader for external graph '{name}' produced different content \
                     (fingerprint, vertices, edges) than was registered"
                );
                std::mem::forget(guard);

                let graph = Arc::new(graph);
                let mut entries = lock_entries(reg);
                if let Some(e) = entries.get_mut(id as usize) {
                    e.state = GraphState::Loaded(Arc::clone(&graph));
                }
                reg.loaded.notify_all();
                return Some(graph);
            }
        }
    }
}

/// Releases the registry's strong pin on `id`'s graph, downgrading it to a weak
/// handle so the memory is returned once the last consumer drops its `Arc`.
///
/// Only meaningful for lazily-registered graphs, whose retained loader can
/// materialize the graph again on a later [`graph`] call; an eager [`register`]
/// entry keeps its pin (the registry *is* the owner there) and reports `false`.
/// Returns `true` when the entry no longer holds a strong reference. The campaign
/// graph store calls this on eviction, so finishing the last unit of an external
/// graph returns its memory mid-process instead of holding it until exit.
pub fn release(id: u32) -> bool {
    let mut entries = lock_entries(registry());
    let Some(entry) = entries.get_mut(id as usize) else {
        return false;
    };
    match &entry.state {
        GraphState::Loaded(g) if entry.loader.is_some() => {
            entry.state = GraphState::Cached(Arc::downgrade(g));
            true
        }
        GraphState::Cached(_) | GraphState::Unloaded => true,
        _ => false,
    }
}

/// Removes `name` from the registry: its id becomes a tombstone (ids are positional
/// and never shift), every accessor returns `None` for it, and the graph, loader and
/// metadata are dropped immediately — consumers still holding the `Arc` keep it alive
/// until they drop it. Re-registering the same name later allocates a fresh id.
/// Returns whether the name was registered.
pub fn deregister(name: &str) -> bool {
    let mut entries = lock_entries(registry());
    let Some(entry) = entries.iter_mut().find(|e| is_live(e) && e.name == name) else {
        return false;
    };
    entry.state = GraphState::Deregistered;
    entry.loader = None;
    true
}

/// The structural content hash of `id`'s registered graph, if any — computed once at
/// [`register`] time (or carried over from the sidecar for [`register_lazy`]). Two
/// registrations with equal fingerprints hold identical graphs (same counts, same
/// `(src, dst, weight)` sequence), which is what campaign plan hashing folds in so
/// stale shard files / journal entries computed over an edited external source are
/// refused without re-hashing — or even loading — the graph per invocation.
pub fn content_fingerprint(id: u32) -> Option<u64> {
    lock_entries(registry())
        .get(id as usize)
        .map(|e| e.fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn register_assigns_stable_ids_and_replaces_by_name() {
        let g1 = generate::uniform(100, 300, 1);
        let g2 = generate::uniform(200, 500, 2);
        let a = register("ext-test-a", g1.clone());
        let b = register("ext-test-b", g2.clone());
        assert_ne!(a, b);
        assert_eq!(lookup("ext-test-a"), Some(a));
        let Dataset::External { id: ida } = a else {
            panic!("register returns an External dataset");
        };
        assert_eq!(name(ida).as_deref(), Some("ext-test-a"));
        assert_eq!(*graph(ida).unwrap(), g1);
        assert_eq!(
            vertices_edges(ida),
            Some((g1.num_vertices() as u64, g1.num_edges()))
        );
        // Re-registering the same name keeps the id and replaces the graph — and the
        // content fingerprint follows the content, not the id.
        let fp1 = content_fingerprint(ida).unwrap();
        let a2 = register("ext-test-a", g2.clone());
        assert_eq!(a, a2);
        assert_eq!(*graph(ida).unwrap(), g2);
        let fp2 = content_fingerprint(ida).unwrap();
        assert_ne!(fp1, fp2, "different content, different fingerprint");
        register("ext-test-a", g1);
        assert_eq!(
            content_fingerprint(ida).unwrap(),
            fp1,
            "identical content restores the fingerprint"
        );
    }

    #[test]
    fn unknown_ids_and_names_are_none() {
        assert_eq!(lookup("ext-test-never-registered"), None);
        assert_eq!(name(u32::MAX), None);
        assert!(graph(u32::MAX).is_none());
        assert!(content_fingerprint(u32::MAX).is_none());
        assert!(vertices_edges(u32::MAX).is_none());
        assert!(is_loaded(u32::MAX).is_none());
    }

    #[test]
    fn lazy_registration_defers_the_load_until_first_graph_access() {
        let g = generate::uniform(300, 1200, 5);
        let fp = csr_fingerprint(&g);
        let loads = Arc::new(AtomicUsize::new(0));
        let loader = {
            let g = g.clone();
            let loads = Arc::clone(&loads);
            move || {
                loads.fetch_add(1, Ordering::SeqCst);
                g.clone()
            }
        };
        let ds = register_lazy(
            "ext-test-lazy",
            fp,
            g.num_vertices() as u64,
            g.num_edges(),
            loader,
        );
        let Dataset::External { id } = ds else {
            panic!("register_lazy returns an External dataset");
        };

        // Everything identity-shaped works without running the loader.
        assert_eq!(lookup("ext-test-lazy"), Some(ds));
        assert_eq!(name(id).as_deref(), Some("ext-test-lazy"));
        assert_eq!(content_fingerprint(id), Some(fp));
        assert_eq!(
            vertices_edges(id),
            Some((g.num_vertices() as u64, g.num_edges()))
        );
        assert_eq!(is_loaded(id), Some(false));
        assert_eq!(loads.load(Ordering::SeqCst), 0, "no access, no load");

        // First graph() call materializes; later calls share the Arc.
        assert_eq!(*graph(id).unwrap(), g);
        assert_eq!(is_loaded(id), Some(true));
        assert_eq!(*graph(id).unwrap(), g);
        assert_eq!(
            loads.load(Ordering::SeqCst),
            1,
            "the loader ran exactly once"
        );
    }

    #[test]
    fn lazy_loader_with_wrong_content_poisons_the_entry() {
        let real = generate::uniform(128, 400, 9);
        let other = generate::uniform(128, 400, 10);
        let ds = register_lazy(
            "ext-test-lazy-bad",
            csr_fingerprint(&real),
            real.num_vertices() as u64,
            real.num_edges(),
            move || other.clone(),
        );
        let Dataset::External { id } = ds else {
            panic!("register_lazy returns an External dataset");
        };
        let first = std::panic::catch_unwind(|| graph(id));
        assert!(first.is_err(), "fingerprint mismatch must panic");
        // The entry is poisoned: later accesses fail too instead of hanging.
        let second = std::panic::catch_unwind(|| graph(id));
        assert!(second.is_err(), "a failed load stays failed");
    }

    #[test]
    fn release_returns_memory_and_the_loader_reloads_on_demand() {
        let g = generate::uniform(256, 900, 21);
        let loads = Arc::new(AtomicUsize::new(0));
        let ds = {
            let g = g.clone();
            let loads = Arc::clone(&loads);
            register_lazy(
                "ext-test-release",
                csr_fingerprint(&g),
                g.num_vertices() as u64,
                g.num_edges(),
                move || {
                    loads.fetch_add(1, Ordering::SeqCst);
                    g.clone()
                },
            )
        };
        let Dataset::External { id } = ds else {
            panic!("register_lazy returns an External dataset");
        };

        // Releasing before any load is a no-op that still reports "no strong pin".
        assert!(release(id));
        assert_eq!(loads.load(Ordering::SeqCst), 0);

        let held = graph(id).unwrap();
        assert_eq!(loads.load(Ordering::SeqCst), 1);
        assert_eq!(is_loaded(id), Some(true));

        // Release while a consumer still holds the Arc: the graph stays shared (no
        // reload for the next access) until that consumer drops it.
        assert!(release(id));
        assert_eq!(is_loaded(id), Some(true), "consumer still pins the graph");
        let again = graph(id).unwrap();
        assert!(Arc::ptr_eq(&held, &again), "weak upgrade shares the Arc");
        assert_eq!(loads.load(Ordering::SeqCst), 1, "no reload while held");
        drop(again);
        drop(held);

        // Last consumer gone: memory is back with the allocator, and the retained
        // loader materializes the graph again on demand.
        assert_eq!(is_loaded(id), Some(false));
        assert_eq!(*graph(id).unwrap(), g);
        assert_eq!(loads.load(Ordering::SeqCst), 2, "reload after full release");
        assert_eq!(is_loaded(id), Some(true), "reload re-pins the graph");
    }

    #[test]
    fn release_keeps_eager_registrations_pinned() {
        let g = generate::uniform(64, 200, 7);
        let Dataset::External { id } = register("ext-test-release-eager", g.clone()) else {
            panic!("register returns an External dataset");
        };
        assert!(!release(id), "no loader, nothing to reload from");
        assert_eq!(is_loaded(id), Some(true));
        assert_eq!(*graph(id).unwrap(), g);
        assert!(!release(u32::MAX), "unknown ids are a no-op");
    }

    #[test]
    fn deregister_tombstones_the_id_and_reregistration_gets_a_fresh_one() {
        let g1 = generate::uniform(90, 250, 3);
        let g2 = generate::uniform(110, 320, 4);
        let Dataset::External { id: old } = register("ext-test-dereg", g1.clone()) else {
            panic!("register returns an External dataset");
        };
        let held = graph(old).unwrap();
        let Dataset::External { id: other } = register("ext-test-dereg-other", g2.clone()) else {
            panic!("register returns an External dataset");
        };

        assert!(deregister("ext-test-dereg"));
        assert!(!deregister("ext-test-dereg"), "already gone");
        assert_eq!(lookup("ext-test-dereg"), None);
        assert_eq!(name(old), None);
        assert!(graph(old).is_none());
        assert_eq!(vertices_edges(old), None);
        assert_eq!(is_loaded(old), None);
        // Consumers holding the Arc keep it alive; ids of other entries never shift.
        assert_eq!(*held, g1);
        assert_eq!(name(other).as_deref(), Some("ext-test-dereg-other"));
        assert_eq!(*graph(other).unwrap(), g2);

        // Re-registering the name allocates a fresh id — the tombstone stays dead, so
        // stale Dataset::External values from before the deregistration can never
        // silently alias new content.
        let Dataset::External { id: new } = register("ext-test-dereg", g2.clone()) else {
            panic!("register returns an External dataset");
        };
        assert_ne!(new, old, "tombstoned ids are never reused");
        assert!(graph(old).is_none());
        assert_eq!(*graph(new).unwrap(), g2);
    }
}
