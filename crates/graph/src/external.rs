//! Process-global registry of externally-loaded graphs.
//!
//! The synthetic stand-ins of [`crate::datasets`] are pure functions of
//! `(dataset, scale_shift, seed)`, so a [`crate::Dataset`] value alone identifies a
//! graph anywhere in the stack (campaign graph store, `results.json` rows, bench
//! metrics). Real graphs loaded from disk (`piccolo-io`) have no such recipe — the
//! bytes live in memory after parsing. This registry bridges the two worlds: a loaded
//! [`Csr`] is [`register`]ed under a name and receives a stable small id, and
//! [`Dataset::External`] wraps that id so every downstream consumer (graph keys,
//! experiment grids, reports) works unchanged.
//!
//! Ids are assigned in registration order, so a driver that registers its `--external`
//! graphs in CLI order gets deterministic ids (and therefore deterministic output) for
//! any worker count. Re-registering an existing name replaces the graph and keeps the
//! id, so a repeated load is idempotent.
//!
//! # Example
//!
//! ```
//! use piccolo_graph::{external, generate, Dataset};
//!
//! let g = generate::kronecker(10, 4, 1);
//! let ds = external::register("demo-doc", g.clone());
//! assert_eq!(ds.short_name(), "demo-doc");
//! assert_eq!(ds.build(0, 0), g); // shift/seed are ignored for external graphs
//! assert_eq!(external::lookup("demo-doc"), Some(ds));
//! ```

use crate::{Csr, Dataset};
use std::sync::{Arc, Mutex, OnceLock};

struct Entry {
    name: String,
    graph: Arc<Csr>,
    /// Structural content hash, computed once at registration (O(edges)) so plan
    /// fingerprints over external graphs are a constant-size fold per invocation.
    fingerprint: u64,
}

/// FNV-1a 64 over the graph's structure: vertex/edge counts and every `(src, dst,
/// weight)` triple in CSR order. Self-contained (this crate sits below `piccolo-io`,
/// whose hashing helpers therefore cannot be reused here) and stable across platforms.
fn csr_fingerprint(graph: &Csr) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    fold(graph.num_vertices() as u64);
    fold(graph.num_edges());
    for e in graph.iter_edges() {
        fold(e.src as u64);
        fold(e.dst as u64);
        fold(e.weight as u64);
    }
    h
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers `graph` under `name` and returns the [`Dataset::External`] handle for it.
///
/// If `name` is already registered, its graph is replaced and the existing id is
/// reused, so repeated loads of the same source are idempotent and ids stay stable
/// for the life of the process.
pub fn register(name: &str, graph: Csr) -> Dataset {
    let fingerprint = csr_fingerprint(&graph);
    let mut entries = registry().lock().unwrap();
    let graph = Arc::new(graph);
    if let Some(id) = entries.iter().position(|e| e.name == name) {
        entries[id].graph = graph;
        entries[id].fingerprint = fingerprint;
        return Dataset::External { id: id as u32 };
    }
    entries.push(Entry {
        name: name.to_string(),
        graph,
        fingerprint,
    });
    Dataset::External {
        id: (entries.len() - 1) as u32,
    }
}

/// Looks up a previously registered name; `None` if it was never registered.
pub fn lookup(name: &str) -> Option<Dataset> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .position(|e| e.name == name)
        .map(|id| Dataset::External { id: id as u32 })
}

/// The name `id` was registered under, if any.
pub fn name(id: u32) -> Option<String> {
    registry()
        .lock()
        .unwrap()
        .get(id as usize)
        .map(|e| e.name.clone())
}

/// The registered graph for `id`, if any. The `Arc` is shared with the registry, so
/// handing it to a consumer does not copy the CSR.
pub fn graph(id: u32) -> Option<Arc<Csr>> {
    registry()
        .lock()
        .unwrap()
        .get(id as usize)
        .map(|e| Arc::clone(&e.graph))
}

/// The structural content hash of `id`'s registered graph, if any — computed once at
/// [`register`] time. Two registrations with equal fingerprints hold identical graphs
/// (same counts, same `(src, dst, weight)` sequence), which is what campaign plan
/// hashing folds in so stale shard files / journal entries computed over an edited
/// external source are refused without re-hashing the graph per invocation.
pub fn content_fingerprint(id: u32) -> Option<u64> {
    registry()
        .lock()
        .unwrap()
        .get(id as usize)
        .map(|e| e.fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn register_assigns_stable_ids_and_replaces_by_name() {
        let g1 = generate::uniform(100, 300, 1);
        let g2 = generate::uniform(200, 500, 2);
        let a = register("ext-test-a", g1.clone());
        let b = register("ext-test-b", g2.clone());
        assert_ne!(a, b);
        assert_eq!(lookup("ext-test-a"), Some(a));
        let Dataset::External { id: ida } = a else {
            panic!("register returns an External dataset");
        };
        assert_eq!(name(ida).as_deref(), Some("ext-test-a"));
        assert_eq!(*graph(ida).unwrap(), g1);
        // Re-registering the same name keeps the id and replaces the graph — and the
        // content fingerprint follows the content, not the id.
        let fp1 = content_fingerprint(ida).unwrap();
        let a2 = register("ext-test-a", g2.clone());
        assert_eq!(a, a2);
        assert_eq!(*graph(ida).unwrap(), g2);
        let fp2 = content_fingerprint(ida).unwrap();
        assert_ne!(fp1, fp2, "different content, different fingerprint");
        register("ext-test-a", g1.clone());
        assert_eq!(
            content_fingerprint(ida).unwrap(),
            fp1,
            "identical content restores the fingerprint"
        );
    }

    #[test]
    fn unknown_ids_and_names_are_none() {
        assert_eq!(lookup("ext-test-never-registered"), None);
        assert_eq!(name(u32::MAX), None);
        assert!(graph(u32::MAX).is_none());
        assert!(content_fingerprint(u32::MAX).is_none());
    }
}
