//! A compact fixed-size bit set used for active-vertex tracking.

/// A fixed-capacity bit set over `0..len`.
///
/// The simulator uses this for active-vertex sets (Algorithm 1 of the paper) and for
/// visited markers inside reference algorithm implementations.
///
/// # Example
///
/// ```
/// use piccolo_graph::BitSet;
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty bit set with capacity for `len` elements (`0..len`).
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of elements the set can hold (`0..len`).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `idx` into the set. Returns `true` if the element was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity()`.
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bitset index {idx} out of range {}",
            self.len
        );
        let w = idx / 64;
        let b = 1u64 << (idx % 64);
        let newly = self.words[w] & b == 0;
        self.words[w] |= b;
        newly
    }

    /// Removes `idx` from the set. Returns `true` if the element was present.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity()`.
    pub fn remove(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bitset index {idx} out of range {}",
            self.len
        );
        let w = idx / 64;
        let b = 1u64 << (idx % 64);
        let present = self.words[w] & b != 0;
        self.words[w] &= !b;
        present
    }

    /// Returns `true` if `idx` is in the set. Out-of-range indices return `false`.
    pub fn contains(&self, idx: usize) -> bool {
        if idx >= self.len {
            return false;
        }
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of elements currently in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Calls `f` for every element in increasing order.
    ///
    /// This is the word-level scan behind frontier iteration: each 64-bit word is
    /// consumed with `trailing_zeros` + clear-lowest-bit, so cost scales with the number
    /// of set bits (plus one branch per word), not with capacity — and unlike
    /// [`Self::iter`] there is no per-element iterator state to maintain.
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (word_idx, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(word_idx * 64 + bit);
                w &= w - 1;
            }
        }
    }

    /// Adds every element of `other` to this set (word-wise `|=`).
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(
            self.len, other.len,
            "bitset capacity mismatch in union_with"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Sets all of `0..capacity()`.
    pub fn fill(&mut self) {
        for (i, w) in self.words.iter_mut().enumerate() {
            let remaining = self.len.saturating_sub(i * 64);
            *w = if remaining >= 64 {
                u64::MAX
            } else if remaining == 0 {
                0
            } else {
                (1u64 << remaining) - 1
            };
        }
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a bit set sized to hold the maximum element of the iterator.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert is not new");
        assert_eq!(s.count(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn iter_sorted() {
        let mut s = BitSet::new(200);
        for i in [5usize, 199, 64, 63, 0] {
            s.insert(i);
        }
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn fill_and_clear() {
        let mut s = BitSet::new(70);
        s.fill();
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [1usize, 2, 10].into_iter().collect();
        assert_eq!(s.capacity(), 11);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn word_scan_matches_per_bit_probe_property_loop() {
        // Property loop: for random sets of varied density and capacity (including
        // word-boundary capacities), the word-level scan visits exactly the elements a
        // per-bit `contains` probe finds, in the same ascending order as `iter()`.
        let mut rng = crate::rng::Rng64::seed_from_u64(0x5eed_b175);
        for case in 0..200u64 {
            let cap = (rng.next_u64() % 300) as usize + [0, 1, 63, 64, 65][case as usize % 5];
            let mut s = BitSet::new(cap);
            if cap > 0 {
                let inserts = rng.next_u64() % (cap as u64 * 2);
                for _ in 0..inserts {
                    s.insert((rng.next_u64() % cap as u64) as usize);
                }
            }
            let mut scanned = Vec::new();
            s.for_each_set(|i| scanned.push(i));
            let probed: Vec<usize> = (0..cap).filter(|&i| s.contains(i)).collect();
            let iterated: Vec<usize> = s.iter().collect();
            assert_eq!(scanned, probed, "cap {cap}");
            assert_eq!(scanned, iterated, "cap {cap}");
            assert_eq!(scanned.len(), s.count(), "cap {cap}");
        }
    }

    #[test]
    fn union_with_is_bitwise_or() {
        let mut rng = crate::rng::Rng64::seed_from_u64(0xfeed);
        for _ in 0..50 {
            let cap = (rng.next_u64() % 200) as usize + 1;
            let mut a = BitSet::new(cap);
            let mut b = BitSet::new(cap);
            for _ in 0..cap {
                if rng.next_u64().is_multiple_of(3) {
                    a.insert((rng.next_u64() % cap as u64) as usize);
                }
                if rng.next_u64().is_multiple_of(3) {
                    b.insert((rng.next_u64() % cap as u64) as usize);
                }
            }
            let mut merged = a.clone();
            merged.union_with(&b);
            for i in 0..cap {
                assert_eq!(merged.contains(i), a.contains(i) || b.contains(i));
            }
        }
    }

    #[test]
    #[should_panic]
    fn union_with_capacity_mismatch_panics() {
        let mut a = BitSet::new(10);
        a.union_with(&BitSet::new(11));
    }
}
