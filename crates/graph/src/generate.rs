//! Synthetic graph generators.
//!
//! The paper evaluates on large real-world graphs plus two families of synthetic graphs:
//! Kronecker (power-law, used for the scalability study) and Watts–Strogatz (small-world,
//! without a power-law degree distribution). Because the real traces are not available in
//! this environment, the dataset stand-ins in [`crate::datasets`] are built from the
//! generators in this module (see `DESIGN.md`, substitution table).

use crate::rng::Rng64;
use crate::{Edge, EdgeList, VertexId};

/// R-MAT / Kronecker-style power-law graph.
///
/// Generates `2^scale` vertices and roughly `avg_degree * 2^scale` directed edges using
/// the classic R-MAT recursion with the Graph500 partition probabilities
/// `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`, which is the standard instantiation of the
/// Kronecker generator referenced by the paper (Leskovec et al.).
///
/// Self-loops and duplicate edges are removed, so the exact edge count is slightly below
/// the target; weights are uniform in `0..=255` as the paper assigns to unweighted graphs.
///
/// # Example
///
/// ```
/// let g = piccolo_graph::generate::kronecker(10, 4, 1);
/// assert_eq!(g.num_vertices(), 1024);
/// assert!(g.num_edges() > 0);
/// ```
pub fn kronecker(scale: u32, avg_degree: u32, seed: u64) -> crate::Csr {
    rmat(scale, avg_degree, (0.57, 0.19, 0.19, 0.05), seed)
}

/// R-MAT generator with explicit quadrant probabilities.
///
/// # Panics
///
/// Panics if `scale >= 31` or the probabilities do not sum to (approximately) 1.
pub fn rmat(scale: u32, avg_degree: u32, probs: (f64, f64, f64, f64), seed: u64) -> crate::Csr {
    assert!(scale < 31, "scale {scale} too large for u32 vertex ids");
    let (a, b, c, d) = probs;
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-6,
        "R-MAT probabilities must sum to 1"
    );
    let n: u64 = 1 << scale;
    let target_edges = n * avg_degree as u64;
    let mut rng = Rng64::seed_from_u64(seed);
    let mut el = EdgeList::new(n as u32);

    // The raw R-MAT recursion concentrates high-degree vertices at low vertex ids, which
    // would give coarse-grained caches artificial spatial locality that real-world vertex
    // numberings do not have (Graph500 likewise prescribes a vertex permutation). Shuffle
    // the id space with a random permutation before emitting edges.
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    rng.shuffle(&mut perm);

    for _ in 0..target_edges {
        let mut x_lo = 0u64;
        let mut y_lo = 0u64;
        let mut half = n / 2;
        while half >= 1 {
            let r: f64 = rng.gen_f64();
            // Add small per-level noise so the degree distribution is not perfectly
            // self-similar (standard R-MAT smoothing).
            let noise: f64 = rng.gen_f64_range(-0.05, 0.05);
            let aa = (a + noise * a).clamp(0.0, 1.0);
            let (dx, dy) = if r < aa {
                (0, 0)
            } else if r < aa + b {
                (0, 1)
            } else if r < aa + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            x_lo += dx * half;
            y_lo += dy * half;
            if half == 1 {
                break;
            }
            half /= 2;
        }
        let w = rng.gen_u32_below(256);
        el.push(Edge::new(perm[x_lo as usize], perm[y_lo as usize], w));
    }
    el.dedup_and_clean();
    el.to_csr()
}

/// Watts–Strogatz small-world graph.
///
/// Builds a ring lattice of `2^scale` vertices where each vertex connects to its `k`
/// clockwise neighbors, then rewires each edge's destination with probability `beta`.
/// This mirrors the WS graphs in Table II (average degree 5, i.e. `k = 5`).
///
/// # Example
///
/// ```
/// let g = piccolo_graph::generate::watts_strogatz(10, 5, 0.1, 7);
/// assert_eq!(g.num_vertices(), 1024);
/// assert_eq!(g.num_edges(), 1024 * 5);
/// ```
pub fn watts_strogatz(scale: u32, k: u32, beta: f64, seed: u64) -> crate::Csr {
    assert!(scale < 31, "scale {scale} too large for u32 vertex ids");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let n: u64 = 1 << scale;
    assert!(k as u64 > 0 && (k as u64) < n, "k must be in 1..n");
    let mut rng = Rng64::seed_from_u64(seed);
    let mut el = EdgeList::new(n as u32);
    for u in 0..n {
        for j in 1..=k as u64 {
            let mut v = (u + j) % n;
            if rng.gen_bool(beta) {
                // Rewire to a uniformly random destination (avoiding a self-loop).
                loop {
                    v = rng.gen_u64_below(n);
                    if v != u {
                        break;
                    }
                }
            }
            let w = rng.gen_u32_below(256);
            el.push(Edge::new(u as VertexId, v as VertexId, w));
        }
    }
    el.to_csr()
}

/// Uniform (Erdős–Rényi-style) random directed graph with `num_vertices` vertices and
/// `num_edges` edges drawn uniformly at random (self-loops excluded, duplicates allowed
/// before cleanup).
pub fn uniform(num_vertices: u32, num_edges: u64, seed: u64) -> crate::Csr {
    assert!(num_vertices >= 2, "need at least two vertices");
    let mut rng = Rng64::seed_from_u64(seed);
    let mut el = EdgeList::new(num_vertices);
    for _ in 0..num_edges {
        let src = rng.gen_u32_below(num_vertices);
        let mut dst = rng.gen_u32_below(num_vertices);
        if dst == src {
            dst = (dst + 1) % num_vertices;
        }
        let w = rng.gen_u32_below(256);
        el.push(Edge::new(src, dst, w));
    }
    el.dedup_and_clean();
    el.to_csr()
}

/// A directed path `0 -> 1 -> ... -> n-1` with unit weights. Useful in tests where the
/// traversal order must be fully predictable.
pub fn path(num_vertices: u32) -> crate::Csr {
    let mut el = EdgeList::new(num_vertices.max(1));
    for v in 1..num_vertices {
        el.push(Edge::new(v - 1, v, 1));
    }
    el.to_csr()
}

/// A star graph: vertex 0 points at every other vertex, with unit weights.
pub fn star(num_vertices: u32) -> crate::Csr {
    let mut el = EdgeList::new(num_vertices.max(1));
    for v in 1..num_vertices {
        el.push(Edge::new(0, v, 1));
    }
    el.to_csr()
}

/// A 2-D grid graph of `rows x cols` vertices with edges to the right and down neighbors,
/// unit weights. Row-major vertex numbering.
pub fn grid(rows: u32, cols: u32) -> crate::Csr {
    let n = rows * cols;
    let mut el = EdgeList::new(n.max(1));
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                el.push(Edge::new(v, v + 1, 1));
            }
            if r + 1 < rows {
                el.push(Edge::new(v, v + cols, 1));
            }
        }
    }
    el.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_is_power_law_ish() {
        let g = kronecker(12, 8, 3);
        assert_eq!(g.num_vertices(), 4096);
        // Power-law: the max degree should be far above the average degree.
        assert!(g.max_degree() as f64 > 4.0 * g.average_degree());
        // Dedup keeps at least half of the target edges for this configuration.
        assert!(g.num_edges() > 4096 * 4);
    }

    #[test]
    fn kronecker_deterministic_per_seed() {
        let a = kronecker(8, 4, 11);
        let b = kronecker(8, 4, 11);
        let c = kronecker(8, 4, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn watts_strogatz_exact_edge_count_and_no_self_loops() {
        let g = watts_strogatz(9, 5, 0.2, 5);
        assert_eq!(g.num_edges(), 512 * 5);
        assert!(g.iter_edges().all(|e| e.src != e.dst));
    }

    #[test]
    fn watts_strogatz_beta_zero_is_ring_lattice() {
        let g = watts_strogatz(6, 2, 0.0, 0);
        for v in 0..g.num_vertices() {
            let nbrs: Vec<u32> = g.neighbors(v).map(|(d, _)| d).collect();
            let n = g.num_vertices();
            let mut expect = vec![(v + 1) % n, (v + 2) % n];
            expect.sort_unstable();
            let mut got = nbrs.clone();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let g = uniform(100, 1000, 9);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() <= 1000);
        assert!(g
            .iter_edges()
            .all(|e| e.src < 100 && e.dst < 100 && e.src != e.dst));
    }

    #[test]
    fn path_star_grid_shapes() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.out_degree(4), 0);
        let s = star(6);
        assert_eq!(s.out_degree(0), 5);
        assert_eq!(s.num_edges(), 5);
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), (3 * 3 + 2 * 4) as u64);
    }
}
