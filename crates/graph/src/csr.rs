//! Compressed sparse row (CSR) graph representation.
//!
//! The paper's accelerators stream the graph topology in CSR form: a row-offset array
//! proportional to `|V|` and a column-index (+ weight) array proportional to `|E|`
//! (Section II-B). This module provides the push-oriented (out-edge) CSR plus an optional
//! transpose for pull-style traversal, and per-tile CSR slicing used by the tiling
//! accelerators.

use crate::storage::SharedSlice;
use crate::{Edge, EdgeList, GraphError, VertexId, Weight};

/// A directed graph in compressed sparse row form, ordered by source vertex.
///
/// # Example
///
/// ```
/// use piccolo_graph::{Csr, Edge, EdgeList};
/// let mut el = EdgeList::new(3);
/// el.push(Edge::new(0, 1, 10));
/// el.push(Edge::new(0, 2, 20));
/// el.push(Edge::new(2, 0, 5));
/// let g = Csr::from_edge_list(&el);
/// assert_eq!(g.out_degree(0), 2);
/// let neighbors: Vec<u32> = g.neighbors(0).map(|(v, _)| v).collect();
/// assert_eq!(neighbors, vec![1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `row_offsets[v]..row_offsets[v + 1]` indexes the out-edges of `v`.
    row_offsets: SharedSlice<u64>,
    /// Destination vertex per edge.
    col_indices: SharedSlice<VertexId>,
    /// Weight per edge, parallel to `col_indices`.
    weights: SharedSlice<Weight>,
}

impl Csr {
    /// Builds a CSR from an edge list. Edges are sorted by `(src, dst)`.
    pub fn from_edge_list(edges: &EdgeList) -> Self {
        let n = edges.num_vertices() as usize;
        let mut sorted: Vec<Edge> = edges.edges().to_vec();
        sorted.sort_unstable_by_key(|e| (e.src, e.dst));

        let mut row_offsets = vec![0u64; n + 1];
        for e in &sorted {
            row_offsets[e.src as usize + 1] += 1;
        }
        for i in 0..n {
            row_offsets[i + 1] += row_offsets[i];
        }
        let col_indices: Vec<VertexId> = sorted.iter().map(|e| e.dst).collect();
        let weights: Vec<Weight> = sorted.iter().map(|e| e.weight).collect();
        Self {
            row_offsets: row_offsets.into(),
            col_indices: col_indices.into(),
            weights: weights.into(),
        }
    }

    /// Builds a CSR directly from raw arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent (offsets not monotone, lengths mismatch, or
    /// a column index out of range). Use [`Csr::try_from_raw`] on ingestion paths where
    /// the input is untrusted (files, network) and a typed error is needed instead.
    pub fn from_raw(
        row_offsets: Vec<u64>,
        col_indices: Vec<VertexId>,
        weights: Vec<Weight>,
    ) -> Self {
        match Self::try_from_raw(row_offsets, col_indices, weights) {
            Ok(csr) => csr,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked variant of [`Csr::from_raw`]: validates that `row_offsets` is non-empty
    /// and monotone, that its last entry equals the edge count, that `col_indices` and
    /// `weights` agree in length, and that every column index is in range. Every file
    /// ingestion path (`piccolo-io`) routes through this, so a malformed snapshot fails
    /// with a [`GraphError`] instead of a panic or silent corruption.
    pub fn try_from_raw(
        row_offsets: Vec<u64>,
        col_indices: Vec<VertexId>,
        weights: Vec<Weight>,
    ) -> Result<Self, GraphError> {
        Self::try_from_shared(row_offsets.into(), col_indices.into(), weights.into())
    }

    /// Like [`Csr::try_from_raw`], but over [`SharedSlice`] sections, so storage that is
    /// already shared — notably sections of a memory-mapped snapshot — becomes a graph
    /// without copying. Runs the exact same validation as `try_from_raw`.
    pub fn try_from_shared(
        row_offsets: SharedSlice<u64>,
        col_indices: SharedSlice<VertexId>,
        weights: SharedSlice<Weight>,
    ) -> Result<Self, GraphError> {
        if row_offsets.is_empty() {
            return Err(GraphError::EmptyOffsets);
        }
        if col_indices.len() != weights.len() {
            return Err(GraphError::WeightLengthMismatch {
                col_indices: col_indices.len(),
                weights: weights.len(),
            });
        }
        if let Some(index) = row_offsets.windows(2).position(|w| w[0] > w[1]) {
            return Err(GraphError::NonMonotonicOffsets { index });
        }
        let last = *row_offsets.last().unwrap();
        if last != col_indices.len() as u64 {
            return Err(GraphError::OffsetEdgeMismatch {
                last_offset: last,
                num_edges: col_indices.len(),
            });
        }
        let n = (row_offsets.len() - 1) as u32;
        if let Some(edge) = col_indices.iter().position(|&c| c >= n) {
            return Err(GraphError::ColIndexOutOfRange {
                edge,
                dst: col_indices[edge],
                num_vertices: n,
            });
        }
        Ok(Self {
            row_offsets,
            col_indices,
            weights,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.row_offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.col_indices.len() as u64
    }

    /// Average out-degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: VertexId) -> u64 {
        let v = v as usize;
        self.row_offsets[v + 1] - self.row_offsets[v]
    }

    /// The row offset array (length `|V| + 1`).
    pub fn row_offsets(&self) -> &[u64] {
        &self.row_offsets
    }

    /// The column index array (length `|E|`).
    pub fn col_indices(&self) -> &[VertexId] {
        &self.col_indices
    }

    /// The edge weight array (length `|E|`).
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Iterates over `(dst, weight)` out-neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        let v = v as usize;
        let start = self.row_offsets[v] as usize;
        let end = self.row_offsets[v + 1] as usize;
        Neighbors {
            cols: &self.col_indices[start..end],
            weights: &self.weights[start..end],
            idx: 0,
        }
    }

    /// Iterates over the edge indices (positions in the column array) of `v`'s out-edges.
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<u64> {
        let v = v as usize;
        self.row_offsets[v]..self.row_offsets[v + 1]
    }

    /// Iterates over all edges as [`Edge`] values in CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices())
            .flat_map(move |u| self.neighbors(u).map(move |(v, w)| Edge::new(u, v, w)))
    }

    /// Returns the transposed graph (in-edges become out-edges).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut el = EdgeList::new(n);
        for e in self.iter_edges() {
            el.push(Edge::new(e.dst, e.src, e.weight));
        }
        Csr::from_edge_list(&el)
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> u64 {
        (0..self.num_vertices())
            .map(|v| self.out_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Counts, per destination-interval tile of width `tile_width`, how many edges land in
    /// each tile. Useful for sizing tiled CSR slices.
    pub fn edges_per_tile(&self, tile_width: u32) -> Vec<u64> {
        assert!(tile_width > 0, "tile width must be positive");
        let tiles = (self.num_vertices() as u64).div_ceil(tile_width as u64) as usize;
        let mut counts = vec![0u64; tiles.max(1)];
        for &dst in self.col_indices.iter() {
            counts[(dst / tile_width) as usize] += 1;
        }
        counts
    }

    /// Extracts the sub-CSR restricted to destination vertices in `dst_range`, following
    /// the tiling structure of Algorithm 1 (line 1/3): sources keep their ids, only edges
    /// whose destination lies in the range are retained.
    pub fn tile_slice(&self, dst_range: std::ops::Range<VertexId>) -> Csr {
        let n = self.num_vertices();
        let mut el = EdgeList::new(n);
        for e in self.iter_edges() {
            if e.dst >= dst_range.start && e.dst < dst_range.end {
                el.push(e);
            }
        }
        Csr::from_edge_list(&el)
    }
}

/// Iterator over `(dst, weight)` pairs produced by [`Csr::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    cols: &'a [VertexId],
    weights: &'a [Weight],
    idx: usize,
}

impl Iterator for Neighbors<'_> {
    type Item = (VertexId, Weight);

    fn next(&mut self) -> Option<Self::Item> {
        if self.idx < self.cols.len() {
            let item = (self.cols[self.idx], self.weights[self.idx]);
            self.idx += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.cols.len() - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        let mut el = EdgeList::new(5);
        for (s, d, w) in [
            (0, 1, 1),
            (0, 4, 2),
            (1, 2, 3),
            (3, 0, 4),
            (3, 4, 5),
            (4, 3, 6),
        ] {
            el.push(Edge::new(s, d, w));
        }
        Csr::from_edge_list(&el)
    }

    #[test]
    fn degrees_and_counts() {
        let g = small();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(2), 0);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn neighbors_sorted_by_destination() {
        let g = small();
        let n: Vec<_> = g.neighbors(3).collect();
        assert_eq!(n, vec![(0, 4), (4, 5)]);
        assert_eq!(g.neighbors(3).len(), 2);
    }

    #[test]
    fn transpose_roundtrip_preserves_edges() {
        let g = small();
        let tt = g.transpose().transpose();
        let mut a: Vec<Edge> = g.iter_edges().collect();
        let mut b: Vec<Edge> = tt.iter_edges().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn tile_slice_keeps_only_in_range_destinations() {
        let g = small();
        let slice = g.tile_slice(0..2);
        assert_eq!(slice.num_vertices(), 5);
        let edges: Vec<Edge> = slice.iter_edges().collect();
        assert!(edges.iter().all(|e| e.dst < 2));
        assert_eq!(edges.len(), 2); // (0,1) and (3,0)
    }

    #[test]
    fn edges_per_tile_sums_to_total() {
        let g = small();
        let per_tile = g.edges_per_tile(2);
        assert_eq!(per_tile.iter().sum::<u64>(), g.num_edges());
        assert_eq!(per_tile.len(), 3);
    }

    #[test]
    fn from_raw_validates_and_matches_builder() {
        let g = small();
        let g2 = Csr::from_raw(
            g.row_offsets().to_vec(),
            g.col_indices().to_vec(),
            g.weights().to_vec(),
        );
        assert_eq!(g, g2);
    }

    #[test]
    #[should_panic]
    fn from_raw_rejects_bad_offsets() {
        Csr::from_raw(vec![0, 2, 1], vec![0, 0], vec![1, 1]);
    }

    #[test]
    fn try_from_raw_reports_typed_errors() {
        assert_eq!(
            Csr::try_from_raw(vec![], vec![], vec![]),
            Err(GraphError::EmptyOffsets)
        );
        assert_eq!(
            Csr::try_from_raw(vec![0, 2, 1], vec![0, 0], vec![1, 1]),
            Err(GraphError::NonMonotonicOffsets { index: 1 })
        );
        assert_eq!(
            Csr::try_from_raw(vec![0, 1], vec![0], vec![]),
            Err(GraphError::WeightLengthMismatch {
                col_indices: 1,
                weights: 0
            })
        );
        assert_eq!(
            Csr::try_from_raw(vec![0, 3], vec![0], vec![1]),
            Err(GraphError::OffsetEdgeMismatch {
                last_offset: 3,
                num_edges: 1
            })
        );
        assert_eq!(
            Csr::try_from_raw(vec![0, 1], vec![5], vec![1]),
            Err(GraphError::ColIndexOutOfRange {
                edge: 0,
                dst: 5,
                num_vertices: 1
            })
        );
        // The empty graph (one offset, no edges) is valid.
        let empty = Csr::try_from_raw(vec![0], vec![], vec![]).unwrap();
        assert_eq!(empty.num_vertices(), 0);
        assert!(!format!("{}", GraphError::EmptyOffsets).is_empty());
    }

    #[test]
    fn edge_range_matches_degree() {
        let g = small();
        assert_eq!(g.edge_range(0), 0..2);
        let r = g.edge_range(2);
        assert_eq!(r.end - r.start, g.out_degree(2));
    }
}
