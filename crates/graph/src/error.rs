//! Structural validation errors for graph construction.
//!
//! The raw constructors ([`crate::Csr::from_raw`], [`crate::EdgeList::from_edges`])
//! historically trusted their inputs and panicked on inconsistency — fine for
//! generator-produced graphs, fatal for file ingestion. The checked variants
//! ([`crate::Csr::try_from_raw`], [`crate::EdgeList::try_from_edges`]) return a
//! [`GraphError`] instead, so `piccolo-io` can turn a malformed file into a typed error
//! with context rather than a panic or silent corruption.

/// Why a raw CSR / edge-list construction was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// `row_offsets` was empty (a valid CSR has at least one entry, `[0]`).
    EmptyOffsets,
    /// `row_offsets[index] > row_offsets[index + 1]` — offsets must be monotone.
    NonMonotonicOffsets {
        /// Index of the first offending entry.
        index: usize,
    },
    /// The last row offset disagrees with the column-array length.
    OffsetEdgeMismatch {
        /// Value of `row_offsets.last()`.
        last_offset: u64,
        /// Length of `col_indices`.
        num_edges: usize,
    },
    /// `col_indices` and `weights` have different lengths.
    WeightLengthMismatch {
        /// Length of `col_indices`.
        col_indices: usize,
        /// Length of `weights`.
        weights: usize,
    },
    /// A column index references a vertex outside `0..num_vertices`.
    ColIndexOutOfRange {
        /// Position in the column array.
        edge: usize,
        /// The offending destination id.
        dst: u32,
        /// The vertex count implied by `row_offsets`.
        num_vertices: u32,
    },
    /// An edge endpoint references a vertex outside `0..num_vertices`.
    EdgeOutOfRange {
        /// Position in the edge vector.
        index: usize,
        /// Source id of the offending edge.
        src: u32,
        /// Destination id of the offending edge.
        dst: u32,
        /// The declared vertex count.
        num_vertices: u32,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::EmptyOffsets => write!(f, "row_offsets must have at least one entry"),
            GraphError::NonMonotonicOffsets { index } => {
                write!(
                    f,
                    "row offsets must be monotone (violated at index {index})"
                )
            }
            GraphError::OffsetEdgeMismatch {
                last_offset,
                num_edges,
            } => write!(
                f,
                "last row offset ({last_offset}) must equal edge count ({num_edges})"
            ),
            GraphError::WeightLengthMismatch {
                col_indices,
                weights,
            } => write!(
                f,
                "col/weight length mismatch ({col_indices} column indices, {weights} weights)"
            ),
            GraphError::ColIndexOutOfRange {
                edge,
                dst,
                num_vertices,
            } => write!(
                f,
                "column index out of range: edge {edge} targets vertex {dst} of {num_vertices}"
            ),
            GraphError::EdgeOutOfRange {
                index,
                src,
                dst,
                num_vertices,
            } => write!(
                f,
                "edge {index} ({src}, {dst}) out of range for {num_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for GraphError {}
