//! Shared, immutable slice storage backing [`crate::Csr`] sections.
//!
//! The paper's premise is graphs larger than fast memory; on the host side the repro
//! mirrors that by letting CSR sections be *views* into storage owned elsewhere — an
//! owned `Vec` for graphs built in memory, or a memory-mapped snapshot (`piccolo-io`)
//! for out-of-core graphs. [`SharedSlice`] abstracts over both: a `(ptr, len)` view
//! plus a reference-counted owner that keeps the underlying bytes alive. Cloning is a
//! refcount bump, never a copy, so `Csr::clone` stays cheap even for mapped graphs.

use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable slice of `T` whose backing storage is kept alive by a shared owner.
///
/// Constructed either from an owned `Vec<T>` ([`SharedSlice::from_vec`]) or as a
/// projection out of an arbitrary shared owner ([`SharedSlice::from_arc_with`], used by
/// `piccolo-io` to expose sections of a memory-mapped snapshot without copying).
///
/// # Example
///
/// ```
/// use piccolo_graph::storage::SharedSlice;
/// let s = SharedSlice::from_vec(vec![1u64, 2, 3]);
/// assert_eq!(&s[..], &[1, 2, 3]);
/// let t = s.clone(); // refcount bump, no copy
/// assert_eq!(s, t);
/// ```
pub struct SharedSlice<T: 'static> {
    ptr: *const T,
    len: usize,
    /// Keeps the storage behind `ptr` alive. Dropped last.
    owner: Arc<dyn Any + Send + Sync>,
}

// SAFETY: a `SharedSlice` is an immutable view plus an `Arc` owner; sharing or sending
// it is exactly as safe as sharing `&[T]` and `Arc<O>`, both of which require the
// element/owner types to be `Send + Sync`. The owner is type-erased but the
// constructors require `Send + Sync` owners, and `T` is constrained here.
unsafe impl<T: Send + Sync> Send for SharedSlice<T> {}
// SAFETY: same argument as `Send` directly above — the view is immutable, and a
// `&SharedSlice<T>` exposes nothing `&[T]`/`&Arc<O>` would not.
unsafe impl<T: Send + Sync> Sync for SharedSlice<T> {}

impl<T: 'static> SharedSlice<T> {
    /// Wraps an owned vector. The vector becomes the shared owner; no copy is made.
    pub fn from_vec(v: Vec<T>) -> Self
    where
        T: Send + Sync,
    {
        let owner: Arc<Vec<T>> = Arc::new(v);
        let ptr = owner.as_ptr();
        let len = owner.len();
        Self { ptr, len, owner }
    }

    /// Projects a slice out of a shared owner.
    ///
    /// `project` receives a borrow of the owner and returns the sub-slice this view
    /// covers. The owner is held in an `Arc` for the lifetime of the view (and all its
    /// clones), so the returned pointer stays valid as long as the owner's buffer is
    /// stable — which holds for any owner without interior mutability (a `Vec`, a
    /// memory mapping, a boxed byte buffer). Owners that can reallocate or unmap their
    /// storage while shared must not be used here.
    pub fn from_arc_with<O, F>(owner: Arc<O>, project: F) -> Self
    where
        O: Send + Sync + 'static,
        F: FnOnce(&O) -> &[T],
    {
        let slice = project(&owner);
        let ptr = slice.as_ptr();
        let len = slice.len();
        Self { ptr, len, owner }
    }

    /// The view as a plain slice.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `ptr`/`len` were derived from a live slice of the owner's storage,
        // and `owner` (an `Arc` we hold) keeps that storage alive and unmoved.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: 'static> Deref for SharedSlice<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: 'static> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        Self {
            ptr: self.ptr,
            len: self.len,
            owner: Arc::clone(&self.owner),
        }
    }
}

impl<T: fmt::Debug + 'static> fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: PartialEq + 'static> PartialEq for SharedSlice<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq + 'static> Eq for SharedSlice<T> {}

impl<T: Send + Sync + 'static> From<Vec<T>> for SharedSlice<T> {
    fn from(v: Vec<T>) -> Self {
        Self::from_vec(v)
    }
}

impl<T: Send + Sync + 'static> Default for SharedSlice<T> {
    fn default() -> Self {
        Self::from_vec(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_round_trips() {
        let s = SharedSlice::from_vec(vec![3u32, 1, 4, 1, 5]);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(&s[..], &[3, 1, 4, 1, 5]);
        assert_eq!(s.iter().sum::<u32>(), 14);
    }

    #[test]
    fn clone_shares_storage() {
        let s = SharedSlice::from_vec(vec![7u64; 1024]);
        let base = s.as_slice().as_ptr();
        let t = s.clone();
        assert_eq!(t.as_slice().as_ptr(), base, "clone must not copy");
        drop(s);
        assert_eq!(t[0], 7, "storage survives dropping the original view");
    }

    #[test]
    fn projection_keeps_owner_alive() {
        let owner = Arc::new(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let view: SharedSlice<u8> = SharedSlice::from_arc_with(owner, |o| &o[2..6]);
        assert_eq!(&view[..], &[2, 3, 4, 5]);
    }

    #[test]
    fn equality_is_by_content() {
        let a = SharedSlice::from_vec(vec![1u32, 2, 3]);
        let b = SharedSlice::from_vec(vec![1u32, 2, 3]);
        let c = SharedSlice::from_vec(vec![1u32, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(SharedSlice::<u32>::default().len(), 0);
        assert!(!format!("{a:?}").is_empty());
    }
}
