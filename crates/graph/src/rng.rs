//! Minimal deterministic pseudo-random number generator.
//!
//! The reproduction environment has no access to crates.io, so instead of `rand` +
//! `rand_chacha` the generators and the randomized (property-style) tests use this
//! self-contained xoshiro256** implementation (Blackman & Vigna), seeded through
//! SplitMix64 exactly as the reference implementation recommends. Every graph generator
//! takes an explicit `u64` seed, so runs are reproducible across machines and toolchains.
//!
//! # Example
//!
//! ```
//! use piccolo_graph::rng::Rng64;
//!
//! let mut a = Rng64::seed_from_u64(7);
//! let mut b = Rng64::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_f64();
//! assert!((0.0..1.0).contains(&x));
//! ```

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.gen_f64()
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen_f64() < p
    }

    /// Uniform `u64` in `[0, n)` (Lemire's unbiased multiply-shift rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            // Reject the biased low region (hit with probability < n / 2^64).
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `u32` in `[0, n)`.
    pub fn gen_u32_below(&mut self, n: u32) -> u32 {
        self.gen_u64_below(n as u64) as u32
    }

    /// Uniform index in `[0, n)`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_u64_below(n as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        let mut c = Rng64::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = Rng64::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(r.gen_u64_below(7) < 7);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_f64_range(-0.05, 0.05);
            assert!((-0.05..0.05).contains(&g));
        }
        assert_eq!(r.gen_u64_below(1), 0);
    }

    #[test]
    fn bounded_draws_cover_the_range() {
        let mut r = Rng64::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng64::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert_eq!((0..100).filter(|_| r.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| r.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be identity");
    }
}
