//! Edge-list graph representation and helpers.

use crate::{GraphError, VertexId, Weight};

/// A single directed, weighted edge `(src, dst, weight)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (random `0..=255` for originally-unweighted graphs, per the paper).
    pub weight: Weight,
}

impl Edge {
    /// Creates a new edge.
    pub fn new(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        Self { src, dst, weight }
    }
}

/// A growable directed edge list with an explicit vertex count.
///
/// This is the construction-time representation; the simulator converts it into a
/// [`crate::Csr`] before running.
///
/// # Example
///
/// ```
/// use piccolo_graph::{Edge, EdgeList};
/// let mut el = EdgeList::new(4);
/// el.push(Edge::new(0, 1, 7));
/// el.push(Edge::new(1, 2, 3));
/// let csr = el.to_csr();
/// assert_eq!(csr.out_degree(0), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: u32,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates an edge list from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if any edge endpoint is `>= num_vertices`. Use
    /// [`EdgeList::try_from_edges`] on ingestion paths where the input is untrusted.
    pub fn from_edges(num_vertices: u32, edges: Vec<Edge>) -> Self {
        match Self::try_from_edges(num_vertices, edges) {
            Ok(el) => el,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked variant of [`EdgeList::from_edges`]: rejects any edge whose endpoint is
    /// `>= num_vertices` with a typed [`GraphError`] instead of panicking. File parsers
    /// (`piccolo-io`) route through this so a malformed edge list fails cleanly.
    pub fn try_from_edges(num_vertices: u32, edges: Vec<Edge>) -> Result<Self, GraphError> {
        if let Some(index) = edges
            .iter()
            .position(|e| e.src >= num_vertices || e.dst >= num_vertices)
        {
            let e = edges[index];
            return Err(GraphError::EdgeOutOfRange {
                index,
                src: e.src,
                dst: e.dst,
                num_vertices,
            });
        }
        Ok(Self {
            num_vertices,
            edges,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Appends an edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn push(&mut self, edge: Edge) {
        assert!(
            edge.src < self.num_vertices && edge.dst < self.num_vertices,
            "edge ({}, {}) out of range for {} vertices",
            edge.src,
            edge.dst,
            self.num_vertices
        );
        self.edges.push(edge);
    }

    /// Borrow the edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Sorts edges by `(src, dst)` and removes duplicate `(src, dst)` pairs, keeping the
    /// first weight, and removes self-loops. Returns the number of removed edges.
    pub fn dedup_and_clean(&mut self) -> usize {
        let before = self.edges.len();
        self.edges.retain(|e| e.src != e.dst);
        self.edges.sort_unstable_by_key(|e| (e.src, e.dst));
        self.edges.dedup_by_key(|e| (e.src, e.dst));
        before - self.edges.len()
    }

    /// Converts to compressed sparse row form (sorted by source).
    pub fn to_csr(&self) -> crate::Csr {
        crate::Csr::from_edge_list(self)
    }

    /// Average out-degree (`|E| / |V|`).
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.num_vertices as f64
        }
    }
}

impl FromIterator<Edge> for EdgeList {
    /// Builds an edge list sized to the maximum endpoint seen.
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Self {
        let edges: Vec<Edge> = iter.into_iter().collect();
        let num_vertices = edges
            .iter()
            .map(|e| e.src.max(e.dst) + 1)
            .max()
            .unwrap_or(0);
        Self {
            num_vertices,
            edges,
        }
    }
}

impl Extend<Edge> for EdgeList {
    fn extend<I: IntoIterator<Item = Edge>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut el = EdgeList::new(3);
        el.push(Edge::new(0, 1, 1));
        el.push(Edge::new(1, 2, 2));
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.num_vertices(), 3);
        assert!((el.average_degree() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn push_out_of_range_panics() {
        let mut el = EdgeList::new(2);
        el.push(Edge::new(0, 2, 1));
    }

    #[test]
    fn dedup_removes_loops_and_duplicates() {
        let mut el = EdgeList::new(4);
        el.push(Edge::new(0, 1, 1));
        el.push(Edge::new(0, 1, 9));
        el.push(Edge::new(2, 2, 5));
        el.push(Edge::new(3, 0, 2));
        let removed = el.dedup_and_clean();
        assert_eq!(removed, 2);
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.edges()[0], Edge::new(0, 1, 1));
    }

    #[test]
    fn from_iterator_sizes_vertices() {
        let el: EdgeList = vec![Edge::new(0, 5, 1), Edge::new(2, 3, 1)]
            .into_iter()
            .collect();
        assert_eq!(el.num_vertices(), 6);
        assert_eq!(el.num_edges(), 2);
    }

    #[test]
    fn from_edges_validates() {
        let el = EdgeList::from_edges(3, vec![Edge::new(0, 2, 1)]);
        assert_eq!(el.num_edges(), 1);
    }

    #[test]
    fn try_from_edges_reports_the_offending_edge() {
        let err = EdgeList::try_from_edges(2, vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1)])
            .expect_err("edge (1, 2) is out of range");
        assert_eq!(
            err,
            GraphError::EdgeOutOfRange {
                index: 1,
                src: 1,
                dst: 2,
                num_vertices: 2
            }
        );
        assert!(EdgeList::try_from_edges(3, vec![Edge::new(0, 2, 1)]).is_ok());
    }
}
