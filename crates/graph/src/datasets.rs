//! Named dataset stand-ins mirroring Table II of the paper.
//!
//! The paper evaluates on five real-world graphs (Uci-Uni, Sinaweibo, Twitter, Friendster,
//! Papers) and two synthetic families (Watts–Strogatz and Kronecker). The real traces are
//! tens of millions of vertices and billions of edges, which is neither available offline
//! nor tractable for a cycle-level software simulator in this environment. Following the
//! substitution rule documented in `DESIGN.md`, each dataset is replaced by a synthetic
//! stand-in that preserves the properties the evaluation depends on:
//!
//! * the **degree distribution family** (power-law for the social/citation graphs,
//!   near-uniform low degree for Uci-Uni, ring+rewire for Watts–Strogatz),
//! * the **average degree** of Table II, and
//! * the **relative size ordering** between datasets.
//!
//! Sizes are divided by a scale factor (default 256). The accelerator configuration used
//! by the experiment drivers divides the on-chip cache/scratchpad by the same factor, so
//! the working-set-to-cache ratio — the quantity that actually determines hit rates and
//! the tiling trade-off — matches the paper.

use crate::external;
use crate::generate;
use crate::Csr;
use std::sync::Arc;

/// Fetches a registered external graph; registering is the caller's responsibility
/// (the `piccolo-io` drivers do it), so a missing id is a programming error.
fn registered_graph(id: u32) -> Arc<Csr> {
    external::graph(id).unwrap_or_else(|| panic!("external dataset id {id} was never registered"))
}

/// Identifier for the evaluation datasets of Table II (plus the synthetic families).
///
/// `Ord` exists so a `Dataset` (and the `GraphKey` tuples built from it) can key the
/// deterministic `BTreeMap`s the campaign layer uses — hash maps are banned in
/// result-producing crates by `piccolo-lint` (no-hash-collections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dataset {
    /// Uci-Uni (UU): Facebook friendship, 58 M vertices / 92 M edges, avg degree ≈ 1.6.
    UciUni,
    /// Sinaweibo (SW): 21 M vertices / 261 M edges, avg degree ≈ 12.
    Sinaweibo,
    /// Twitter (TW): 41 M vertices / 1 465 M edges, avg degree ≈ 36, dense clusters.
    Twitter,
    /// Friendster (FS): 65 M vertices / 1 806 M edges, avg degree ≈ 28, low locality.
    Friendster,
    /// Papers (PP): 111 M vertices / 1 615 M edges citation graph, avg degree ≈ 15.
    Papers,
    /// Watts–Strogatz synthetic graph at the given scale (paper uses 26 and 27).
    WattsStrogatz {
        /// log2 of the vertex count *in the paper*; the stand-in subtracts the
        /// global scale shift.
        scale: u32,
    },
    /// Kronecker synthetic graph at the given scale (paper uses 25–28).
    Kronecker {
        /// log2 of the vertex count *in the paper*; the stand-in subtracts the
        /// global scale shift.
        scale: u32,
    },
    /// An externally-loaded graph (edge-list / SNAP / MatrixMarket file ingested by
    /// `piccolo-io`), identified by its [`crate::external`] registry id. Scale shift
    /// and seed are ignored when building: the graph is whatever was registered.
    External {
        /// Registry id assigned by [`external::register`].
        id: u32,
    },
}

impl Dataset {
    /// The five real-world datasets of Table II, in the order the figures use.
    pub const REAL_WORLD: [Dataset; 5] = [
        Dataset::UciUni,
        Dataset::Twitter,
        Dataset::Sinaweibo,
        Dataset::Friendster,
        Dataset::Papers,
    ];

    /// Short name used in the paper's figures (UU/TW/SW/FS/PP, WS*, KN*).
    pub fn short_name(&self) -> String {
        match self {
            Dataset::UciUni => "UU".to_string(),
            Dataset::Sinaweibo => "SW".to_string(),
            Dataset::Twitter => "TW".to_string(),
            Dataset::Friendster => "FS".to_string(),
            Dataset::Papers => "PP".to_string(),
            Dataset::WattsStrogatz { scale } => format!("WS{scale}"),
            Dataset::Kronecker { scale } => format!("KN{scale}"),
            Dataset::External { id } => external::name(*id)
                .unwrap_or_else(|| panic!("external dataset id {id} was never registered")),
        }
    }

    /// Returns the specification (paper-scale sizes plus stand-in generator parameters).
    pub fn spec(&self) -> DatasetSpec {
        match *self {
            Dataset::UciUni => DatasetSpec {
                dataset: *self,
                paper_vertices: 58_000_000,
                paper_edges: 92_000_000,
                avg_degree: 2,
                family: Family::Uniform,
            },
            Dataset::Sinaweibo => DatasetSpec {
                dataset: *self,
                paper_vertices: 21_000_000,
                paper_edges: 261_000_000,
                avg_degree: 12,
                family: Family::PowerLaw,
            },
            Dataset::Twitter => DatasetSpec {
                dataset: *self,
                paper_vertices: 41_000_000,
                paper_edges: 1_465_000_000,
                avg_degree: 36,
                family: Family::PowerLawClustered,
            },
            Dataset::Friendster => DatasetSpec {
                dataset: *self,
                paper_vertices: 65_000_000,
                paper_edges: 1_806_000_000,
                avg_degree: 28,
                family: Family::PowerLaw,
            },
            Dataset::Papers => DatasetSpec {
                dataset: *self,
                paper_vertices: 111_000_000,
                paper_edges: 1_615_000_000,
                avg_degree: 15,
                family: Family::PowerLaw,
            },
            Dataset::WattsStrogatz { scale } => DatasetSpec {
                dataset: *self,
                paper_vertices: 1u64 << scale,
                paper_edges: (1u64 << scale) * 5,
                avg_degree: 5,
                family: Family::SmallWorld,
            },
            Dataset::Kronecker { scale } => DatasetSpec {
                dataset: *self,
                paper_vertices: 1u64 << scale,
                paper_edges: (1u64 << scale) * 10,
                avg_degree: 10,
                family: Family::PowerLaw,
            },
            Dataset::External { id } => {
                // Counts come from the registry metadata, not the graph itself, so a
                // lazily-registered external (snapshot sidecar fast path) can be
                // spec'd — and its campaign plan hashed — without materializing it.
                let (vertices, edges) = external::vertices_edges(id)
                    .unwrap_or_else(|| panic!("external dataset id {id} was never registered"));
                let avg_degree = if vertices == 0 {
                    0
                } else {
                    (edges as f64 / vertices as f64).round() as u32
                };
                DatasetSpec {
                    dataset: *self,
                    paper_vertices: vertices,
                    paper_edges: edges,
                    avg_degree,
                    family: Family::External,
                }
            }
        }
    }

    /// Builds the stand-in graph at a reduction of `1 / 2^scale_shift` of the paper's
    /// vertex count (the edge count follows via the preserved average degree).
    ///
    /// `scale_shift = 8` (the default used by the experiment drivers) reduces a
    /// 41 M-vertex graph to ~160 K vertices.
    pub fn build(&self, scale_shift: u32, seed: u64) -> Csr {
        self.spec().build(scale_shift, seed)
    }

    /// Like [`Dataset::build`], but returns a shared handle. For synthetic stand-ins
    /// this wraps a fresh build; for [`Dataset::External`] it hands out the registry's
    /// `Arc` directly, so loaded graphs are never copied per consumer — the campaign
    /// graph store builds on this.
    pub fn build_shared(&self, scale_shift: u32, seed: u64) -> Arc<Csr> {
        match *self {
            Dataset::External { id } => registered_graph(id),
            _ => Arc::new(self.build(scale_shift, seed)),
        }
    }
}

/// Degree-distribution family of a dataset stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Near-uniform low-degree graph (Uci-Uni).
    Uniform,
    /// Power-law graph generated with R-MAT / Kronecker recursion.
    PowerLaw,
    /// Power-law with stronger community structure (higher `a` quadrant probability),
    /// modelling the dense clusters the paper attributes to Twitter.
    PowerLawClustered,
    /// Watts–Strogatz small-world ring with rewiring.
    SmallWorld,
    /// An externally-loaded graph — no generator; `build` reads the
    /// [`crate::external`] registry.
    External,
}

/// Full specification of a dataset: paper-scale sizes plus stand-in parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Which dataset this describes.
    pub dataset: Dataset,
    /// Vertex count reported in Table II.
    pub paper_vertices: u64,
    /// Edge count reported in Table II.
    pub paper_edges: u64,
    /// Average degree (rounded) preserved by the stand-in.
    pub avg_degree: u32,
    /// Generator family for the stand-in.
    pub family: Family,
}

impl DatasetSpec {
    /// Vertex count of the stand-in graph for a given scale shift. External graphs are
    /// never scaled: their actual vertex count is returned unchanged.
    pub fn standin_vertices(&self, scale_shift: u32) -> u64 {
        if self.family == Family::External {
            return self.paper_vertices;
        }
        (self.paper_vertices >> scale_shift).max(1024)
    }

    /// Builds the stand-in graph.
    pub fn build(&self, scale_shift: u32, seed: u64) -> Csr {
        if let (Family::External, Dataset::External { id }) = (self.family, self.dataset) {
            return (*registered_graph(id)).clone();
        }
        let n = self.standin_vertices(scale_shift);
        // Round up to a power of two for the recursive generators.
        let scale = (64 - (n - 1).leading_zeros()).max(10);
        match self.family {
            Family::Uniform => {
                let vertices = n as u32;
                generate::uniform(vertices, n * self.avg_degree as u64, seed)
            }
            Family::PowerLaw => generate::kronecker(scale, self.avg_degree, seed),
            Family::PowerLawClustered => {
                generate::rmat(scale, self.avg_degree, (0.45, 0.22, 0.22, 0.11), seed)
            }
            Family::SmallWorld => generate::watts_strogatz(scale, self.avg_degree, 0.1, seed),
            Family::External => {
                unreachable!("Family::External only appears on Dataset::External specs")
            }
        }
    }
}

/// Convenience: builds all five real-world stand-ins at the given scale shift, in figure
/// order (UU, TW, SW, FS, PP).
pub fn real_world_suite(scale_shift: u32, seed: u64) -> Vec<(Dataset, Csr)> {
    Dataset::REAL_WORLD
        .iter()
        .map(|d| (*d, d.build(scale_shift, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_match_paper() {
        assert_eq!(Dataset::UciUni.short_name(), "UU");
        assert_eq!(Dataset::Twitter.short_name(), "TW");
        assert_eq!(Dataset::Kronecker { scale: 27 }.short_name(), "KN27");
        assert_eq!(Dataset::WattsStrogatz { scale: 26 }.short_name(), "WS26");
    }

    #[test]
    fn specs_preserve_relative_ordering() {
        let tw = Dataset::Twitter.spec();
        let uu = Dataset::UciUni.spec();
        assert!(tw.paper_edges > uu.paper_edges);
        assert!(tw.avg_degree > uu.avg_degree);
    }

    #[test]
    fn standin_build_has_expected_density() {
        let spec = Dataset::Sinaweibo.spec();
        let g = spec.build(12, 7);
        // Power-law generators lose some edges to dedup; density should still be in the
        // right ballpark (more than half the nominal average degree).
        assert!(g.average_degree() > spec.avg_degree as f64 * 0.5);
        assert!(g.num_vertices() >= 1024);
    }

    #[test]
    fn uu_standin_is_sparse() {
        let g = Dataset::UciUni.build(12, 3);
        assert!(g.average_degree() < 4.0);
    }

    #[test]
    fn suite_contains_five_graphs() {
        let suite = real_world_suite(14, 1);
        assert_eq!(suite.len(), 5);
        let names: Vec<String> = suite.iter().map(|(d, _)| d.short_name()).collect();
        assert_eq!(names, vec!["UU", "TW", "SW", "FS", "PP"]);
    }

    #[test]
    fn standin_vertices_has_floor() {
        let spec = Dataset::UciUni.spec();
        assert_eq!(spec.standin_vertices(40), 1024);
    }

    #[test]
    fn external_dataset_reflects_the_registered_graph() {
        let g = generate::uniform(2048, 8192, 11);
        let ds = external::register("dataset-test-ext", g.clone());
        assert_eq!(ds.short_name(), "dataset-test-ext");
        let spec = ds.spec();
        assert_eq!(spec.family, Family::External);
        assert_eq!(spec.paper_vertices, g.num_vertices() as u64);
        assert_eq!(spec.paper_edges, g.num_edges());
        // Scale shift and seed are ignored: the external graph is never re-generated.
        assert_eq!(spec.standin_vertices(13), g.num_vertices() as u64);
        assert_eq!(ds.build(13, 99), g);
        let shared = ds.build_shared(0, 0);
        assert_eq!(*shared, g);
    }

    #[test]
    fn lazy_external_spec_never_materializes_the_graph() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let g = generate::uniform(4096, 12288, 21);
        let loaded = Arc::new(AtomicBool::new(false));
        let loader = {
            let g = g.clone();
            let loaded = Arc::clone(&loaded);
            move || {
                loaded.store(true, Ordering::SeqCst);
                g.clone()
            }
        };
        let ds = external::register_lazy(
            "dataset-test-lazy-ext",
            external::csr_fingerprint(&g),
            g.num_vertices() as u64,
            g.num_edges(),
            loader,
        );
        // spec(), short_name() and standin_vertices() are metadata-only.
        let spec = ds.spec();
        assert_eq!(spec.family, Family::External);
        assert_eq!(spec.paper_vertices, g.num_vertices() as u64);
        assert_eq!(spec.paper_edges, g.num_edges());
        assert_eq!(spec.avg_degree, 3);
        assert_eq!(spec.standin_vertices(9), g.num_vertices() as u64);
        assert_eq!(ds.short_name(), "dataset-test-lazy-ext");
        assert!(
            !loaded.load(Ordering::SeqCst),
            "spec() must not run the lazy loader"
        );
        // build_shared materializes on demand, exactly once.
        let shared = ds.build_shared(0, 0);
        assert!(loaded.load(Ordering::SeqCst));
        assert_eq!(*shared, g);
    }
}
