//! Graph substrate for the Piccolo reproduction.
//!
//! This crate provides everything the accelerator simulator needs on the *data* side:
//!
//! * [`EdgeList`] and [`Csr`] graph representations (push/out-edge oriented, with an
//!   optional transpose for pull-style traversal),
//! * synthetic graph generators matching the paper's evaluation graphs
//!   ([`generate::kronecker`] for the R-MAT/Kronecker power-law family,
//!   [`generate::watts_strogatz`] for small-world graphs, plus simple uniform/path/star
//!   helpers),
//! * named dataset stand-ins mirroring Table II of the paper ([`datasets`]),
//! * a registry for externally-loaded graphs ([`external`]) so real files ingested by
//!   `piccolo-io` flow through the same [`Dataset`] plumbing as the stand-ins,
//! * destination-interval [`tiling`] used by the tiling-based accelerators, and
//! * vertex property storage and active-vertex frontiers ([`props`]).
//!
//! # Example
//!
//! ```
//! use piccolo_graph::generate::kronecker;
//! use piccolo_graph::tiling::Tiling;
//!
//! let graph = kronecker(12, 8, 42); // 2^12 vertices, average degree 8
//! assert!(graph.num_edges() > 0);
//! let tiling = Tiling::by_tile_width(graph.num_vertices(), 1024);
//! assert_eq!(tiling.num_tiles() as usize, (graph.num_vertices() as usize + 1023) / 1024);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitset;
pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod error;
pub mod external;
pub mod generate;
pub mod props;
pub mod rng;
pub mod storage;
pub mod tiling;

pub use bitset::BitSet;
pub use csr::Csr;
pub use datasets::{Dataset, DatasetSpec};
pub use edgelist::{Edge, EdgeList};
pub use error::GraphError;
pub use props::{ActiveSet, VertexProps};
pub use storage::SharedSlice;
pub use tiling::{Tile, Tiling};

/// Vertex identifier. Graphs in this crate are addressed by dense `u32` ids.
pub type VertexId = u32;

/// Edge weight type. The paper assigns random integer weights in `0..=255` to unweighted
/// real-world graphs; we keep weights as `u32`.
pub type Weight = u32;
