//! Property-based tests for the graph substrate.

use piccolo_graph::{generate, BitSet, Edge, EdgeList, Tiling};
use proptest::prelude::*;

/// Strategy producing an arbitrary small edge list.
fn arb_edge_list() -> impl Strategy<Value = EdgeList> {
    (2u32..200).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0u32..256), 0..400).prop_map(move |edges| {
            let mut el = EdgeList::new(n);
            for (s, d, w) in edges {
                el.push(Edge::new(s, d, w));
            }
            el
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR construction preserves the (deduplicated) edge multiset when built from a
    /// cleaned edge list.
    #[test]
    fn csr_preserves_edges(mut el in arb_edge_list()) {
        el.dedup_and_clean();
        let csr = el.to_csr();
        prop_assert_eq!(csr.num_edges() as usize, el.num_edges());
        let mut from_csr: Vec<Edge> = csr.iter_edges().collect();
        let mut from_el: Vec<Edge> = el.edges().to_vec();
        from_csr.sort();
        from_el.sort();
        prop_assert_eq!(from_csr, from_el);
    }

    /// Row offsets are monotone and the degree sum equals the edge count.
    #[test]
    fn csr_row_offsets_monotone(el in arb_edge_list()) {
        let csr = el.to_csr();
        prop_assert!(csr.row_offsets().windows(2).all(|w| w[0] <= w[1]));
        let degree_sum: u64 = (0..csr.num_vertices()).map(|v| csr.out_degree(v)).sum();
        prop_assert_eq!(degree_sum, csr.num_edges());
    }

    /// Transposition is an involution on the edge multiset.
    #[test]
    fn transpose_involution(mut el in arb_edge_list()) {
        el.dedup_and_clean();
        let csr = el.to_csr();
        let round = csr.transpose().transpose();
        let mut a: Vec<Edge> = csr.iter_edges().collect();
        let mut b: Vec<Edge> = round.iter_edges().collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Every tile-sliced sub-graph partitions the edges: the union over all tiles equals
    /// the full edge set and the slices are disjoint.
    #[test]
    fn tiling_partitions_edges(mut el in arb_edge_list(), width in 1u32..64) {
        el.dedup_and_clean();
        let csr = el.to_csr();
        let tiling = Tiling::by_tile_width(csr.num_vertices(), width);
        let mut total = 0u64;
        for tile in tiling.iter() {
            let slice = csr.tile_slice(tile.range());
            prop_assert!(slice.iter_edges().all(|e| tile.contains(e.dst)));
            total += slice.num_edges();
        }
        prop_assert_eq!(total, csr.num_edges());
    }

    /// `edges_per_tile` agrees with the slices.
    #[test]
    fn edges_per_tile_agrees_with_slices(mut el in arb_edge_list(), width in 1u32..64) {
        el.dedup_and_clean();
        let csr = el.to_csr();
        let counts = csr.edges_per_tile(width);
        let tiling = Tiling::by_tile_width(csr.num_vertices(), width);
        for (i, tile) in tiling.iter().enumerate() {
            prop_assert_eq!(counts[i], csr.tile_slice(tile.range()).num_edges());
        }
    }

    /// The bitset behaves like a reference `HashSet` under a sequence of inserts/removes.
    #[test]
    fn bitset_matches_hashset(ops in proptest::collection::vec((0usize..500, any::<bool>()), 0..300)) {
        let mut bs = BitSet::new(500);
        let mut hs = std::collections::HashSet::new();
        for (idx, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(idx), hs.insert(idx));
            } else {
                prop_assert_eq!(bs.remove(idx), hs.remove(&idx));
            }
        }
        prop_assert_eq!(bs.count(), hs.len());
        let mut from_bs: Vec<usize> = bs.iter().collect();
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_bs.sort_unstable();
        from_hs.sort_unstable();
        prop_assert_eq!(from_bs, from_hs);
    }

    /// Watts–Strogatz always produces exactly n*k edges and no self loops.
    #[test]
    fn ws_edge_count(scale in 5u32..9, k in 1u32..5, beta in 0.0f64..1.0, seed in any::<u64>()) {
        let g = generate::watts_strogatz(scale, k, beta, seed);
        prop_assert_eq!(g.num_edges(), (1u64 << scale) * k as u64);
        prop_assert!(g.iter_edges().all(|e| e.src != e.dst));
    }

    /// Kronecker graphs stay within the vertex-id range and below the edge target.
    #[test]
    fn kronecker_bounds(scale in 5u32..10, deg in 1u32..8, seed in any::<u64>()) {
        let g = generate::kronecker(scale, deg, seed);
        let n = 1u32 << scale;
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert!(g.num_edges() <= n as u64 * deg as u64);
        prop_assert!(g.iter_edges().all(|e| e.src < n && e.dst < n));
    }
}
