//! Property-style tests for the graph substrate.
//!
//! No crates.io access in the build container, so instead of `proptest` these run seeded
//! random cases through [`piccolo_graph::rng::Rng64`]; a failing seed is printed in the
//! assertion message.

use piccolo_graph::rng::Rng64;
use piccolo_graph::{generate, BitSet, Edge, EdgeList, Tiling};

const CASES: u64 = 64;

/// An arbitrary small edge list: 2..200 vertices, up to 400 edges, weights in 0..256.
fn random_edge_list(rng: &mut Rng64) -> EdgeList {
    let n = 2 + rng.gen_u32_below(198);
    let edges = rng.gen_index(400);
    let mut el = EdgeList::new(n);
    for _ in 0..edges {
        el.push(Edge::new(
            rng.gen_u32_below(n),
            rng.gen_u32_below(n),
            rng.gen_u32_below(256),
        ));
    }
    el
}

/// CSR construction preserves the (deduplicated) edge multiset when built from a
/// cleaned edge list.
#[test]
fn csr_preserves_edges() {
    for seed in 0..CASES {
        let mut el = random_edge_list(&mut Rng64::seed_from_u64(seed));
        el.dedup_and_clean();
        let csr = el.to_csr();
        assert_eq!(csr.num_edges() as usize, el.num_edges(), "seed {seed}");
        let mut from_csr: Vec<Edge> = csr.iter_edges().collect();
        let mut from_el: Vec<Edge> = el.edges().to_vec();
        from_csr.sort();
        from_el.sort();
        assert_eq!(from_csr, from_el, "seed {seed}");
    }
}

/// Row offsets are monotone and the degree sum equals the edge count.
#[test]
fn csr_row_offsets_monotone() {
    for seed in 0..CASES {
        let el = random_edge_list(&mut Rng64::seed_from_u64(seed));
        let csr = el.to_csr();
        assert!(
            csr.row_offsets().windows(2).all(|w| w[0] <= w[1]),
            "seed {seed}"
        );
        let degree_sum: u64 = (0..csr.num_vertices()).map(|v| csr.out_degree(v)).sum();
        assert_eq!(degree_sum, csr.num_edges(), "seed {seed}");
    }
}

/// Transposition is an involution on the edge multiset.
#[test]
fn transpose_involution() {
    for seed in 0..CASES {
        let mut el = random_edge_list(&mut Rng64::seed_from_u64(seed));
        el.dedup_and_clean();
        let csr = el.to_csr();
        let round = csr.transpose().transpose();
        let mut a: Vec<Edge> = csr.iter_edges().collect();
        let mut b: Vec<Edge> = round.iter_edges().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "seed {seed}");
    }
}

/// Every tile-sliced sub-graph partitions the edges: the union over all tiles equals
/// the full edge set and the slices are disjoint.
#[test]
fn tiling_partitions_edges() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut el = random_edge_list(&mut rng);
        let width = 1 + rng.gen_u32_below(63);
        el.dedup_and_clean();
        let csr = el.to_csr();
        let tiling = Tiling::by_tile_width(csr.num_vertices(), width);
        let mut total = 0u64;
        for tile in tiling.iter() {
            let slice = csr.tile_slice(tile.range());
            assert!(
                slice.iter_edges().all(|e| tile.contains(e.dst)),
                "seed {seed}"
            );
            total += slice.num_edges();
        }
        assert_eq!(total, csr.num_edges(), "seed {seed}");
    }
}

/// `edges_per_tile` agrees with the slices.
#[test]
fn edges_per_tile_agrees_with_slices() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut el = random_edge_list(&mut rng);
        let width = 1 + rng.gen_u32_below(63);
        el.dedup_and_clean();
        let csr = el.to_csr();
        let counts = csr.edges_per_tile(width);
        let tiling = Tiling::by_tile_width(csr.num_vertices(), width);
        for (i, tile) in tiling.iter().enumerate() {
            assert_eq!(
                counts[i],
                csr.tile_slice(tile.range()).num_edges(),
                "seed {seed}"
            );
        }
    }
}

/// The bitset behaves like a reference `HashSet` under a sequence of inserts/removes.
#[test]
fn bitset_matches_hashset() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let ops = rng.gen_index(300);
        let mut bs = BitSet::new(500);
        let mut hs = std::collections::HashSet::new();
        for _ in 0..ops {
            let idx = rng.gen_index(500);
            if rng.gen_bool(0.5) {
                assert_eq!(bs.insert(idx), hs.insert(idx), "seed {seed}");
            } else {
                assert_eq!(bs.remove(idx), hs.remove(&idx), "seed {seed}");
            }
        }
        assert_eq!(bs.count(), hs.len(), "seed {seed}");
        let mut from_bs: Vec<usize> = bs.iter().collect();
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_bs.sort_unstable();
        from_hs.sort_unstable();
        assert_eq!(from_bs, from_hs, "seed {seed}");
    }
}

/// Watts–Strogatz always produces exactly n*k edges and no self loops.
#[test]
fn ws_edge_count() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let scale = 5 + rng.gen_u32_below(4);
        let k = 1 + rng.gen_u32_below(4);
        let beta = rng.gen_f64();
        let g = generate::watts_strogatz(scale, k, beta, rng.next_u64());
        assert_eq!(g.num_edges(), (1u64 << scale) * k as u64, "seed {seed}");
        assert!(g.iter_edges().all(|e| e.src != e.dst), "seed {seed}");
    }
}

/// Kronecker graphs stay within the vertex-id range and below the edge target.
#[test]
fn kronecker_bounds() {
    for seed in 0..CASES {
        let mut rng = Rng64::seed_from_u64(seed);
        let scale = 5 + rng.gen_u32_below(5);
        let deg = 1 + rng.gen_u32_below(7);
        let g = generate::kronecker(scale, deg, rng.next_u64());
        let n = 1u32 << scale;
        assert_eq!(g.num_vertices(), n, "seed {seed}");
        assert!(g.num_edges() <= n as u64 * deg as u64, "seed {seed}");
        assert!(
            g.iter_edges().all(|e| e.src < n && e.dst < n),
            "seed {seed}"
        );
    }
}
