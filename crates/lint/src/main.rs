//! The `piccolo-lint` CLI.
//!
//! ```text
//! piccolo-lint [--deny] [--root DIR] [--verbose]   lint the workspace
//! piccolo-lint --list                              print the rule catalog
//! piccolo-lint --explain RULE                      print a rule's rationale
//! ```
//!
//! Without `--deny` findings are printed as warnings and the exit code stays
//! 0 (developer mode); with `--deny` any finding exits 2 (the CI mode). Exit
//! code 1 is reserved for operational errors (unreadable tree, bad budget
//! file), so CI can tell "violations found" from "tool broke".

#![forbid(unsafe_code)]

use piccolo_lint::{find_root, lint_workspace, rules, Budget};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut verbose = false;
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    let mut explain: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--verbose" => verbose = true,
            "--list" => list = true,
            "--explain" => match args.next() {
                Some(rule) => explain = Some(rule),
                None => return usage("--explain needs a rule name"),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    if list {
        for r in rules::RULES {
            println!("{:<24} {}", r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(name) = explain {
        return match rules::rule_info(&name) {
            Some(r) => {
                println!("{}: {}\n\n{}", r.name, r.summary, r.explain);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("piccolo-lint: no rule named '{name}' (try --list for the catalog)");
                ExitCode::FAILURE
            }
        };
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
        Some(r) => r,
        None => {
            eprintln!(
                "piccolo-lint: no workspace root found (no lint-budget.toml up the \
                 tree); pass --root"
            );
            return ExitCode::FAILURE;
        }
    };

    let budget = match Budget::load(&root.join("lint-budget.toml")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("piccolo-lint: lint-budget.toml: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = match lint_workspace(&root, &budget) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("piccolo-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    if verbose {
        for (path, line, rule, reason) in &report.suppressed {
            eprintln!("piccolo-lint: allowed {rule} at {path}:{line} ({reason})");
        }
    }
    eprintln!(
        "piccolo-lint: {} file(s), {} finding(s), {} suppression(s) applied{}",
        report.files,
        report.findings.len(),
        report.suppressed.len(),
        if deny { " [deny]" } else { "" }
    );

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else if deny {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("piccolo-lint: {err}");
    }
    eprintln!(
        "usage: piccolo-lint [--deny] [--root DIR] [--verbose]\n       \
         piccolo-lint --list | --explain RULE"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
