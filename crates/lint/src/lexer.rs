//! A comment- and string-aware Rust lexer.
//!
//! This is not a full Rust lexer: it produces exactly the token stream the rule
//! catalog needs — identifiers, literals, comments, and single-character
//! punctuation, each with a byte range and a 1-based `line:col` position. The
//! hard part (and the reason `grep` is not enough for any of the rules) is
//! telling an identifier from the same characters inside a string literal, a
//! raw string, a char literal, or a nested block comment. Everything here is
//! resolved the way `rustc`'s real lexer resolves it:
//!
//! * line comments run to the newline; block comments nest;
//! * strings handle every escape that can contain a quote (`\\`, `\"`);
//! * raw strings `r##"…"##` match their exact hash count;
//! * byte strings / byte chars are the same with a `b` prefix;
//! * `'a` is a lifetime, `'a'` is a char literal (decided by lookahead, the
//!   same single-quote disambiguation rustc performs);
//! * `1.5`, `1e9`, and `1f64` are float literals, while `1..2` and
//!   `1.max(2)` are not (dot lookahead).
//!
//! An unterminated literal or comment does not abort the file: the token is
//! closed at end-of-input so rules can still run (and the real compiler will
//! reject the file anyway).

/// What a token is. Rules mostly match on `Ident` text and `Punct` characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (the lexer does not distinguish them).
    Ident,
    /// A lifetime such as `'a` or the label in `'outer: loop`.
    Lifetime,
    /// An integer literal, including its suffix if any (`42`, `0xFF`, `7u64`).
    Int,
    /// A float literal (`1.5`, `1e9`, `2f32`), including its suffix if any.
    Float,
    /// A string literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// A char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A `// …` comment (includes doc comments `///` and `//!`).
    LineComment,
    /// A `/* … */` comment (nesting handled), including doc block comments.
    BlockComment,
    /// Any other single character (`{`, `}`, `:`, `#`, `!`, `.`, …).
    Punct,
}

/// One token: kind plus its byte range and 1-based position in the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the same string given to [`lex`]).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// The line this token *ends* on (differs from `line` for block comments
    /// and multi-line strings).
    pub fn end_line(&self, src: &str) -> u32 {
        self.line
            + src[self.start..self.end]
                .bytes()
                .filter(|&b| b == b'\n')
                .count() as u32
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte (or one UTF-8 char for non-ASCII), tracking line/col.
    fn bump(&mut self) {
        if let Some(b) = self.bytes.get(self.pos) {
            if *b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            // Skip the continuation bytes of a multi-byte char in one step so
            // `col` counts characters-ish, not bytes, inside comments.
            let mut next = self.pos + 1;
            while next < self.bytes.len() && (self.bytes[next] & 0xC0) == 0x80 {
                next += 1;
            }
            self.pos = next;
        }
    }

    fn bump_while(&mut self, f: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if f(b) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

/// Tokenizes `src`. Never fails: malformed input produces best-effort tokens.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                cur.bump_while(|b| b != b'\n');
                TokKind::LineComment
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                lex_block_comment(&mut cur);
                TokKind::BlockComment
            }
            b'r' if raw_string_start(&cur, 1) => {
                cur.bump();
                lex_raw_string(&mut cur);
                TokKind::Str
            }
            b'b' => match (cur.peek(1), cur.peek(2)) {
                (Some(b'"'), _) => {
                    cur.bump();
                    lex_quoted(&mut cur, b'"');
                    TokKind::Str
                }
                (Some(b'\''), _) => {
                    cur.bump();
                    lex_quoted(&mut cur, b'\'');
                    TokKind::Char
                }
                (Some(b'r'), _) if raw_string_start(&cur, 2) => {
                    cur.bump();
                    cur.bump();
                    lex_raw_string(&mut cur);
                    TokKind::Str
                }
                _ => lex_ident(&mut cur),
            },
            b'"' => {
                lex_quoted(&mut cur, b'"');
                TokKind::Str
            }
            b'\'' => lex_single_quote(&mut cur),
            b'0'..=b'9' => lex_number(&mut cur),
            _ if is_ident_start(b) => lex_ident(&mut cur),
            _ => {
                cur.bump();
                TokKind::Punct
            }
        };
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    out
}

/// True when the cursor at offset `at` (after an `r` or `br` prefix) starts a
/// raw string: zero or more `#` then `"`.
fn raw_string_start(cur: &Cursor, at: usize) -> bool {
    let mut i = at;
    while cur.peek(i) == Some(b'#') {
        i += 1;
    }
    cur.peek(i) == Some(b'"')
}

fn lex_block_comment(cur: &mut Cursor) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            (Some(_), _) => cur.bump(),
            (None, _) => break,
        }
    }
}

/// Lexes a `"…"` / `'…'` body with escape handling; the cursor sits on the
/// opening quote.
fn lex_quoted(cur: &mut Cursor, quote: u8) {
    cur.bump(); // opening quote
    while let Some(b) = cur.peek(0) {
        if b == b'\\' {
            cur.bump();
            cur.bump(); // the escaped char (any, incl. quote and backslash)
        } else if b == quote {
            cur.bump();
            return;
        } else {
            cur.bump();
        }
    }
}

/// Lexes `#…#"…"#…#` after the `r`/`br` prefix has been consumed.
fn lex_raw_string(cur: &mut Cursor) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    'scan: while let Some(b) = cur.peek(0) {
        cur.bump();
        if b == b'"' {
            for i in 0..hashes {
                if cur.peek(i) != Some(b'#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            return;
        }
    }
}

/// Disambiguates `'a` (lifetime) from `'a'` (char literal), cursor on the `'`.
fn lex_single_quote(cur: &mut Cursor) -> TokKind {
    // `'` + ident-start + no closing `'` right after one ident char => lifetime.
    // Everything else (escapes, `'x'`, `'\u{…}'`, even `'full_ident'` which
    // real Rust rejects) is treated as a char literal.
    if cur.peek(1).is_some_and(is_ident_start) && cur.peek(1) != Some(b'\'') {
        // Find where the identifier run ends.
        let mut i = 2;
        while cur.peek(i).is_some_and(is_ident_continue) {
            i += 1;
        }
        if cur.peek(i) != Some(b'\'') {
            cur.bump(); // '
            cur.bump_while(is_ident_continue);
            return TokKind::Lifetime;
        }
    }
    lex_quoted(cur, b'\'');
    TokKind::Char
}

fn lex_ident(cur: &mut Cursor) -> TokKind {
    cur.bump_while(is_ident_continue);
    TokKind::Ident
}

fn lex_number(cur: &mut Cursor) -> TokKind {
    let mut float = false;
    if cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'x' | b'o' | b'b')) {
        cur.bump();
        cur.bump();
        cur.bump_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        return TokKind::Int;
    }
    cur.bump_while(|b| b.is_ascii_digit() || b == b'_');
    // A dot makes a float only when followed by a digit or nothing number-like:
    // `1.5` is a float, `1..2` is a range, `1.max(2)` is a method call.
    if cur.peek(0) == Some(b'.') {
        match cur.peek(1) {
            Some(b) if b.is_ascii_digit() => {
                float = true;
                cur.bump(); // '.'
                cur.bump_while(|b| b.is_ascii_digit() || b == b'_');
            }
            Some(b'.') => {}                   // range `1..`
            Some(b) if is_ident_start(b) => {} // method call `1.max(…)`
            _ => {
                // Trailing-dot float `1.`
                float = true;
                cur.bump();
            }
        }
    }
    if matches!(cur.peek(0), Some(b'e' | b'E'))
        && (cur.peek(1).is_some_and(|b| b.is_ascii_digit())
            || (matches!(cur.peek(1), Some(b'+' | b'-'))
                && cur.peek(2).is_some_and(|b| b.is_ascii_digit())))
    {
        float = true;
        cur.bump(); // e
        if matches!(cur.peek(0), Some(b'+' | b'-')) {
            cur.bump();
        }
        cur.bump_while(|b| b.is_ascii_digit() || b == b'_');
    }
    // Suffix: `1f64` / `1.5f32` are floats; `1u64` stays an int.
    if cur.peek(0) == Some(b'f')
        && (cur.peek(1) == Some(b'3') && cur.peek(2) == Some(b'2')
            || cur.peek(1) == Some(b'6') && cur.peek(2) == Some(b'4'))
    {
        float = true;
    }
    cur.bump_while(is_ident_continue);
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_inside_strings_and_comments_are_not_idents() {
        let src = r##"
            // HashMap in a comment
            /* nested /* HashMap */ still comment */
            let s = "HashMap";
            let r = r#"HashMap "quoted" inside raw"#;
            let b = b"HashMap";
            let real = HashMap::new();
        "##;
        let toks = kinds(src);
        let ident_hits: Vec<_> = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Ident && t == "HashMap")
            .collect();
        assert_eq!(ident_hits.len(), 1, "{toks:?}");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn float_vs_int_disambiguation() {
        for (src, kind) in [
            ("1.5", TokKind::Float),
            ("1e9", TokKind::Float),
            ("2f64", TokKind::Float),
            ("3.0f32", TokKind::Float),
            ("1.", TokKind::Float),
            ("42", TokKind::Int),
            ("0xFF", TokKind::Int),
            ("7u64", TokKind::Int),
        ] {
            assert_eq!(lex(src)[0].kind, kind, "{src}");
        }
        // Ranges and method calls do not produce floats.
        assert!(lex("1..2").iter().all(|t| t.kind != TokKind::Float));
        assert!(lex("1.max(2)").iter().all(|t| t.kind != TokKind::Float));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let src = "let x = 1;\n  let y = 2;";
        let toks = lex(src);
        let y = toks.iter().find(|t| t.text(src) == "y").expect("y token");
        assert_eq!((y.line, y.col), (2, 7));
    }

    #[test]
    fn unterminated_tokens_do_not_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b\"open"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src}");
        }
    }

    #[test]
    fn raw_string_with_hashes_closes_on_matching_count() {
        let src = r####"let s = r##"body with "# inside"##; let after = 1;"####;
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).expect("str");
        assert!(s.text(src).ends_with("\"##"));
        assert!(toks.iter().any(|t| t.text(src) == "after"));
    }
}
