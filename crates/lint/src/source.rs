//! A lexed source file plus the structural facts rules share: which crate the
//! file belongs to, which byte ranges are `#[cfg(test)]` code, and where
//! `// lint: allow(…)` suppression comments sit.

use crate::lexer::{lex, TokKind, Token};

/// Where in the workspace a file sits — rules scope themselves by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// `src/**` of a library or binary target (`src/bin/**` sets `is_bin`).
    Library { is_bin: bool },
    /// `tests/**`, `benches/**`, or `examples/**` — integration-test-adjacent
    /// code that most rules skip.
    TestOrBench,
}

/// A lexed file with its workspace-relative path and derived facts.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Cargo package name owning the file (e.g. `piccolo-io`), derived from
    /// the directory layout (`crates/<dir>/…`; the repo root is the umbrella).
    pub crate_name: String,
    pub role: FileRole,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Byte ranges of `#[cfg(test)]`-gated items (modules or single items).
    test_ranges: Vec<(usize, usize)>,
    /// Parsed `// lint: allow(rule, reason)` comments.
    suppressions: Vec<Suppression>,
}

/// One `// lint: allow(rule-name, reason)` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub reason: String,
    /// Line the comment ends on; it suppresses findings on this line and the
    /// next ones up through the first non-comment line.
    pub line: u32,
}

/// Maps a workspace-relative path to its Cargo package name. Mirrors the
/// actual layout: `crates/<dir>` packages are named in each `Cargo.toml`, but
/// only two differ from `piccolo-<dir>` (`crates/core` is `piccolo`; the root
/// is the umbrella `piccolo-repro`).
pub fn crate_of(rel_path: &str) -> String {
    match rel_path.split('/').nth(1) {
        Some(dir) if rel_path.starts_with("crates/") => match dir {
            "core" => "piccolo".to_string(),
            other => format!("piccolo-{other}"),
        },
        _ => "piccolo-repro".to_string(),
    }
}

fn role_of(rel_path: &str) -> FileRole {
    let within = match rel_path.strip_prefix("crates/") {
        Some(rest) => rest.split_once('/').map_or(rest, |(_, r)| r),
        None => rel_path,
    };
    if within.starts_with("tests/")
        || within.starts_with("benches/")
        || within.starts_with("examples/")
    {
        FileRole::TestOrBench
    } else {
        FileRole::Library {
            is_bin: within.starts_with("src/bin/"),
        }
    }
}

impl SourceFile {
    /// Lexes `text` and computes the derived facts.
    pub fn new(rel_path: &str, text: String) -> Self {
        let tokens = lex(&text);
        let test_ranges = find_test_ranges(&text, &tokens);
        let suppressions = find_suppressions(&text, &tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_of(rel_path),
            role: role_of(rel_path),
            text,
            tokens,
            test_ranges,
            suppressions,
        }
    }

    /// True when the byte offset falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Returns the suppression covering `line` for `rule`, if any. A
    /// suppression comment covers its own line and every following line up to
    /// and including the first non-comment line (so a comment block directly
    /// above the flagged statement works, as does a trailing same-line
    /// comment).
    pub fn suppressed(&self, rule: &str, line: u32) -> Option<&Suppression> {
        self.suppressions.iter().find(|s| {
            if s.rule != rule {
                return false;
            }
            // A trailing comment (code before it on the same line) covers only
            // that line; a comment-only line covers forward over further
            // comment-only lines through the first code line.
            let mut covered = s.line;
            if self.line_is_comment_only(s.line) {
                loop {
                    let next = covered + 1;
                    if next > s.line + 32 {
                        break; // bound the scan; 32 comment lines is plenty
                    }
                    covered = next;
                    if !self.line_is_comment_only(next) {
                        break;
                    }
                }
            }
            line >= s.line && line <= covered
        })
    }

    fn line_is_comment_only(&self, line: u32) -> bool {
        let mut saw = false;
        for t in &self.tokens {
            if t.line > line {
                break;
            }
            if t.end_line(&self.text) < line {
                continue;
            }
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => saw = true,
                _ => return false,
            }
        }
        saw
    }

    /// All suppressions (for the unused-suppression audit in `main`).
    pub fn suppressions(&self) -> &[Suppression] {
        &self.suppressions
    }
}

/// Finds every `#[cfg(test)]` attribute and the byte range of the item it
/// gates. The attribute match is exact — `cfg(test)`, nothing else — so
/// `#[cfg(not(test))]` code stays linted.
fn find_test_ranges(text: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(text, tokens, i) {
            // Skip the 7 attribute tokens: # [ cfg ( test ) ]
            let mut j = i + 7;
            // Skip any further attributes (`#[…]`) and comments before the item.
            loop {
                while j < tokens.len()
                    && matches!(tokens[j].kind, TokKind::LineComment | TokKind::BlockComment)
                {
                    j += 1;
                }
                if j + 1 < tokens.len()
                    && tokens[j].kind == TokKind::Punct
                    && tokens[j].text(text) == "#"
                    && tokens[j + 1].text(text) == "["
                {
                    j = match skip_balanced(text, tokens, j + 1, "[", "]") {
                        Some(next) => next,
                        None => break,
                    };
                } else {
                    break;
                }
            }
            // The item body: everything to the matching `}` of its first
            // top-level `{`, or to a `;` that arrives first (`mod tests;`).
            let start = tokens[i].start;
            let mut depth_paren = 0i32;
            let mut end = None;
            let mut k = j;
            while k < tokens.len() {
                let t = &tokens[k];
                if t.kind == TokKind::Punct {
                    match t.text(text) {
                        "(" | "[" => depth_paren += 1,
                        ")" | "]" => depth_paren -= 1,
                        ";" if depth_paren == 0 => {
                            end = Some(t.end);
                            break;
                        }
                        "{" if depth_paren == 0 => {
                            end = skip_balanced(text, tokens, k, "{", "}")
                                .map(|next| tokens[next - 1].end);
                            break;
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
            if let Some(e) = end {
                out.push((start, e));
                i = k;
            }
        }
        i += 1;
    }
    out
}

/// True when tokens[i..] start an exact `#[cfg(test)]` attribute.
fn is_cfg_test_attr(text: &str, tokens: &[Token], i: usize) -> bool {
    let want = ["#", "[", "cfg", "(", "test", ")", "]"];
    tokens.len() >= i + want.len()
        && want
            .iter()
            .enumerate()
            .all(|(k, w)| tokens[i + k].text(text) == *w)
}

/// Starting at the index of an `open` token, returns the index one past its
/// matching `close`.
fn skip_balanced(
    text: &str,
    tokens: &[Token],
    open_idx: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct {
            let s = t.text(text);
            if s == open {
                depth += 1;
            } else if s == close {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
        }
    }
    None
}

/// Parses every `// lint: allow(rule-name, reason)` comment. The reason is
/// mandatory: an allow without one is itself reported by the driver.
fn find_suppressions(text: &str, tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        // The directive must be the comment's content, not a prose mention of
        // the syntax: strip the comment markers and require `lint: allow(`
        // first. (Doc comments *describing* the syntax thus never match.)
        let body = t
            .text(text)
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim();
        if !body.starts_with("lint: allow(") {
            continue;
        }
        let rest = &body["lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let inner = &rest[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        out.push(Suppression {
            rule: rule.to_string(),
            reason: reason.to_string(),
            line: t.end_line(text),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_names_follow_the_layout() {
        assert_eq!(crate_of("crates/io/src/pcsr.rs"), "piccolo-io");
        assert_eq!(crate_of("crates/core/src/json.rs"), "piccolo");
        assert_eq!(crate_of("src/lib.rs"), "piccolo-repro");
        assert_eq!(crate_of("tests/end_to_end.rs"), "piccolo-repro");
        assert_eq!(crate_of("examples/quickstart.rs"), "piccolo-repro");
    }

    #[test]
    fn roles_split_library_from_tests_and_bins() {
        assert_eq!(
            role_of("crates/io/src/bin/graphtool.rs"),
            FileRole::Library { is_bin: true }
        );
        assert_eq!(
            role_of("crates/io/src/pcsr.rs"),
            FileRole::Library { is_bin: false }
        );
        assert_eq!(
            role_of("crates/io/tests/roundtrip.rs"),
            FileRole::TestOrBench
        );
        assert_eq!(role_of("tests/end_to_end.rs"), FileRole::TestOrBench);
        assert_eq!(role_of("examples/quickstart.rs"), FileRole::TestOrBench);
        assert_eq!(
            role_of("crates/bench/benches/figures.rs"),
            FileRole::TestOrBench
        );
    }

    #[test]
    fn cfg_test_modules_are_ranged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let x = 1; }\n}\nfn after() {}\n";
        let f = SourceFile::new("crates/io/src/x.rs", src.to_string());
        let live = src.find("live").unwrap();
        let inside = src.find("let x").unwrap();
        let after = src.find("after").unwrap();
        assert!(!f.in_test_code(live));
        assert!(f.in_test_code(inside));
        assert!(!f.in_test_code(after));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_range() {
        let src = "#[cfg(not(test))]\nmod real { fn f() {} }\n";
        let f = SourceFile::new("crates/io/src/x.rs", src.to_string());
        assert!(!f.in_test_code(src.find("fn f").unwrap()));
    }

    #[test]
    fn cfg_test_with_extra_attribute_between() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\n";
        let f = SourceFile::new("crates/io/src/x.rs", src.to_string());
        assert!(f.in_test_code(src.find("fn t").unwrap()));
    }

    #[test]
    fn suppressions_cover_same_line_and_next_code_line() {
        let src = "\
// lint: allow(no-wall-clock, timing the CLI banner)
let t = Instant::now();
let u = Instant::now(); // lint: allow(no-wall-clock, same line)
let v = Instant::now();
";
        let f = SourceFile::new("crates/io/src/x.rs", src.to_string());
        assert!(f.suppressed("no-wall-clock", 2).is_some());
        assert!(f.suppressed("no-wall-clock", 3).is_some());
        assert!(f.suppressed("no-wall-clock", 4).is_none());
        assert!(f.suppressed("some-other-rule", 2).is_none());
    }

    #[test]
    fn suppression_reason_is_parsed() {
        let f = SourceFile::new(
            "crates/io/src/x.rs",
            "// lint: allow(panic-policy, infallible by construction)\nlet x = 1;\n".to_string(),
        );
        let s = &f.suppressions()[0];
        assert_eq!(s.rule, "panic-policy");
        assert_eq!(s.reason, "infallible by construction");
    }
}
