//! The rule catalog.
//!
//! Every rule is grounded in an invariant the workspace already relies on —
//! mostly the headline guarantee that `results.json` is byte-identical across
//! any `--jobs` / `--intra-jobs` / shard / resume split. The rules are
//! token-level analyses over [`SourceFile`]s: no type information, so each
//! rule documents its heuristic precisely and `// lint: allow(rule, reason)`
//! is the escape hatch for the false positives a heuristic admits.

use crate::budget::Budget;
use crate::lexer::{TokKind, Token};
use crate::source::{FileRole, SourceFile};

/// One diagnostic: `file:line:col: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub rel_path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.rel_path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Name, one-line summary, and `--explain` rationale for a rule.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
    pub explain: &'static str,
}

/// The crates whose output feeds `results.json` / the journal / shard docs.
/// A nondeterministic iteration or a lossy float print in any of these can
/// break the byte-identity guarantee.
pub const RESULT_CRATES: &[&str] = &[
    "piccolo-graph",
    "piccolo-accel",
    "piccolo-cache",
    "piccolo-dram",
    "piccolo",
    "piccolo-io",
    "piccolo-serve",
];

/// Files allowed to call `Instant::now` / `SystemTime::now`: the phase
/// wall-profiler in the pipeline (its numbers flow out through piccolo-obs,
/// never into results.json), and the serve coordinator (lease deadlines and
/// heartbeat timeouts are liveness mechanics — they decide *when* work is
/// re-dispatched, never what any result contains). The bench harness crate
/// and piccolo-obs (which owns event timestamps) are exempted wholesale by
/// crate name, not listed here.
pub const WALL_CLOCK_ALLOWED_FILES: &[&str] = &[
    "crates/accel/src/pipeline.rs",
    "crates/serve/src/coordinator.rs",
];

/// Files allowed to format floats: the lossless shortest-round-trip JSON
/// writer and the unit-result codec built on it.
pub const FLOAT_FORMAT_ALLOWED_FILES: &[&str] = &[
    "crates/core/src/json.rs",
    "crates/core/src/campaign/codec.rs",
];

/// The full catalog, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "no-hash-collections",
        summary: "std HashMap/HashSet forbidden in result-producing crates",
        explain: "\
std::collections::HashMap and HashSet use SipHash with a per-process random
seed: iterating one yields a different order every run. A single iteration
order leaking into anything that feeds results.json, the run journal, or a
shard document silently breaks the byte-identity guarantee the campaign
tests, shard merge, and resume all depend on. In the result-producing crates
(piccolo-graph, -accel, -cache, -dram, piccolo, -io, -serve) use BTreeMap/BTreeSet,
a Vec, or a key-indexed table instead — lookups stay O(log n) and every
iteration is sorted, hence deterministic. The rule is name-based (any
identifier token `HashMap`/`HashSet` outside comments, strings, and
#[cfg(test)] code), so a deliberately deterministic wrapper with the same
name still needs an allow comment.",
    },
    RuleInfo {
        name: "no-wall-clock",
        summary: "Instant::now/SystemTime::now only in bench + the phase profiler",
        explain: "\
Wall-clock reads are the classic nondeterminism leak: a timestamp that flows
into an output document, a timing-dependent branch, or an ordering decision
makes two identical runs differ. Simulated time in this workspace is derived
from DRAM clocks (RunResult::elapsed_ns = accel_cycles / clock_ghz), so
library code never needs a real clock. The only legitimate consumers are the
bench harness crate (wall time IS its product), piccolo-obs (event
timestamps and phase durations are its product, and they only ever flow OUT
into obs artifacts), the pipeline phase wall-profiler
(crates/accel/src/pipeline.rs, whose numbers reach stderr/events/BENCH.json,
never results.json), and the serve coordinator
(crates/serve/src/coordinator.rs, whose lease deadlines decide when units
are re-dispatched — at-least-once execution with by-slot dedup makes the
result bytes independent of that timing). Everything else is an error.",
    },
    RuleInfo {
        name: "no-bare-eprintln",
        summary: "driver crates must log through the piccolo-obs stderr sink",
        explain: "\
The repro binary, the bench harness, and the graphtool CLI route their
diagnostics through the piccolo-obs stderr sink, so `--log-level quiet`
really silences them and every message carries a level. A bare `eprintln!`
(or `eprint!`) bypasses the sink: it ignores the level filter, garbles the
`--progress` renderer's line rewriting, and is invisible to any attached
event sink. This rule forbids the two macros in the driver surfaces —
piccolo-bench outside tests/, piccolo-io's src/bin/ CLIs, and all of
piccolo-serve (the daemon and worker are driver surfaces end to end) — where
obs::error/warn/info/debug are the drop-in replacements. Library crates are
out of scope (they do not print), as is piccolo-obs itself (the stderr sink
is the one legitimate writer).",
    },
    RuleInfo {
        name: "float-format-via-codec",
        summary: "float formatting outside the lossless codec files",
        explain: "\
`{}`/`{:?}`/precision formatting of an f64 is lossy ({} prints the shortest
string that still round-trips, but {:.3} and friends do not), and hand-rolled
float prints are how a value that no longer round-trips reaches results.json
or the journal. Every float that lands in an output document must go through
crates/core/src/json.rs (shortest-round-trip writer) or the unit-result
codec built on it (crates/core/src/campaign/codec.rs). This rule is a
heuristic over tokens in the result-producing crates: it flags (a) format
placeholders whose argument expression contains a float literal, an
`as f64`/`as f32` cast, or an identifier declared with type f64/f32 in the
same file; (b) any placeholder using precision or exponent specs ({:.3},
{:e}) — precision formatting is float formatting in practice; (c)
`.to_string()` called directly on such an expression. Human-facing CLI
output that genuinely wants a rounded float takes an allow comment with a
reason stating it is never parsed back.",
    },
    RuleInfo {
        name: "safety-comment",
        summary: "every `unsafe` needs an immediately preceding // SAFETY: comment",
        explain: "\
The workspace's unsafe code is concentrated in the hand-rolled mmap wrapper,
the zero-copy .pcsr section casts, and the SharedSlice storage layer — all
places where the safety argument is a real proof obligation (alignment,
lifetime of the mapping, Send/Sync of a raw pointer). The convention those
sites established is a `// SAFETY:` comment directly above each unsafe
token. This rule pins the convention: every `unsafe` occurrence (block, fn,
impl, trait) must have a comment containing `SAFETY:` either earlier on the
same line or in the contiguous comment block on the lines immediately above.
Two adjacent unsafe impls need two comments — each site carries its own
argument.",
    },
    RuleInfo {
        name: "unsafe-budget",
        summary: "per-crate unsafe counts must match lint-budget.toml",
        explain: "\
lint-budget.toml at the workspace root commits the number of `unsafe` tokens
per crate. The linter counts actual occurrences (all files of the crate,
tests included — token-level, so comments and strings never count) and
errors on any drift in either direction: new unsafe requires an explicit
budget bump in the same diff (a reviewable, greppable event), and removed
unsafe requires the budget to come down so it stays honest. Crates at zero
also carry #![forbid(unsafe_code)], making the zero compiler-enforced.",
    },
    RuleInfo {
        name: "panic-policy",
        summary: "no unwrap/expect/panic! in piccolo-io non-test library code",
        explain: "\
piccolo-io parses untrusted bytes: text graphs, snapshots, journals — a
corrupt file must surface as the typed IoError the callers match on (corrupt
journal lines cost one re-run; corrupt snapshots are re-parsed), never as a
process abort. This rule forbids `.unwrap()`, `.expect(…)`, and `panic!` in
piccolo-io library code (src/, excluding src/bin/ CLI tools and #[cfg(test)]
modules). Infallible conversions should be restructured so the
infallibility is in the types (e.g. fixed-size array reads) rather than
asserted at runtime; where that is genuinely impossible, an allow comment
must state why the panic is unreachable.",
    },
];

/// Looks up a rule by name.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Runs every per-file rule on `file`. Suppressions are applied by the
/// caller (so it can also audit unused allows).
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    no_hash_collections(file, &mut out);
    no_wall_clock(file, &mut out);
    no_bare_eprintln(file, &mut out);
    float_format_via_codec(file, &mut out);
    safety_comment(file, &mut out);
    panic_policy(file, &mut out);
    out
}

/// Runs the workspace-level rule: per-crate unsafe counts vs the budget.
pub fn check_unsafe_budget(files: &[SourceFile], budget: &Budget) -> Vec<Finding> {
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for f in files {
        let n = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text(&f.text) == "unsafe")
            .count();
        *counts.entry(f.crate_name.as_str()).or_insert(0) += n;
    }
    let mut out = Vec::new();
    for (krate, &actual) in &counts {
        match budget.get(krate) {
            Some(allowed) if allowed == actual => {}
            Some(allowed) => out.push(Finding {
                rule: "unsafe-budget",
                rel_path: "lint-budget.toml".to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "crate {krate} has {actual} unsafe token(s) but the budget says \
                     {allowed}; change requires an explicit lint-budget.toml update"
                ),
            }),
            None => {
                if actual > 0 {
                    out.push(Finding {
                        rule: "unsafe-budget",
                        rel_path: "lint-budget.toml".to_string(),
                        line: 1,
                        col: 1,
                        message: format!(
                            "crate {krate} has {actual} unsafe token(s) but no \
                             lint-budget.toml entry"
                        ),
                    });
                }
            }
        }
    }
    for krate in budget.crates() {
        if !counts.contains_key(krate.as_str()) {
            out.push(Finding {
                rule: "unsafe-budget",
                rel_path: "lint-budget.toml".to_string(),
                line: 1,
                col: 1,
                message: format!("budget entry for unknown crate {krate}"),
            });
        }
    }
    out
}

fn finding(rule: &'static str, file: &SourceFile, tok: &Token, message: String) -> Finding {
    Finding {
        rule,
        rel_path: file.rel_path.clone(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

fn ident_is(file: &SourceFile, i: usize, s: &str) -> bool {
    file.tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text(&file.text) == s)
}

fn punct_is(file: &SourceFile, i: usize, s: &str) -> bool {
    file.tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text(&file.text) == s)
}

// ---------------------------------------------------------------------------
// Rule: no-hash-collections
// ---------------------------------------------------------------------------

fn no_hash_collections(file: &SourceFile, out: &mut Vec<Finding>) {
    if !RESULT_CRATES.contains(&file.crate_name.as_str())
        || !matches!(file.role, FileRole::Library { .. })
    {
        return;
    }
    for t in &file.tokens {
        if t.kind != TokKind::Ident || file.in_test_code(t.start) {
            continue;
        }
        let name = t.text(&file.text);
        if name == "HashMap" || name == "HashSet" {
            out.push(finding(
                "no-hash-collections",
                file,
                t,
                format!(
                    "{name} iteration order is nondeterministic; use \
                     BTreeMap/BTreeSet or a Vec (byte-identical results.json)"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-wall-clock
// ---------------------------------------------------------------------------

fn no_wall_clock(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.crate_name == "piccolo-bench"
        || file.crate_name == "piccolo-obs"
        || WALL_CLOCK_ALLOWED_FILES.contains(&file.rel_path.as_str())
        || file.role == FileRole::TestOrBench
    {
        return;
    }
    for i in 0..file.tokens.len() {
        let t = &file.tokens[i];
        if t.kind != TokKind::Ident || file.in_test_code(t.start) {
            continue;
        }
        let name = t.text(&file.text);
        if (name == "Instant" || name == "SystemTime")
            && punct_is(file, i + 1, ":")
            && punct_is(file, i + 2, ":")
            && ident_is(file, i + 3, "now")
        {
            out.push(finding(
                "no-wall-clock",
                file,
                t,
                format!(
                    "{name}::now outside the bench harness / phase profiler; \
                     derive time from simulated clocks"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-bare-eprintln
// ---------------------------------------------------------------------------

fn no_bare_eprintln(file: &SourceFile, out: &mut Vec<Finding>) {
    // Driver surfaces only: the bench harness / repro binary (everything in
    // piccolo-bench outside tests/) and piccolo-io's src/bin CLIs. piccolo-obs
    // itself — the stderr sink — is the one legitimate eprintln writer.
    let in_scope = match file.crate_name.as_str() {
        "piccolo-bench" => !file.rel_path.contains("/tests/"),
        "piccolo-io" => file.role == (FileRole::Library { is_bin: true }),
        // The serve daemon and worker are driver surfaces end to end.
        "piccolo-serve" => true,
        _ => false,
    };
    if !in_scope {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test_code(t.start) {
            continue;
        }
        let name = t.text(&file.text);
        if (name == "eprintln" || name == "eprint") && punct_is(file, i + 1, "!") {
            out.push(finding(
                "no-bare-eprintln",
                file,
                t,
                format!(
                    "{name}! in a driver crate bypasses the piccolo-obs stderr \
                     sink; use obs::error/warn/info/debug so --log-level applies"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: float-format-via-codec
// ---------------------------------------------------------------------------

const FORMAT_MACROS: &[&str] = &[
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "format_args",
];

/// Macros whose first argument is a writer, not the format string.
const WRITER_FIRST: &[&str] = &["write", "writeln"];

fn float_format_via_codec(file: &SourceFile, out: &mut Vec<Finding>) {
    if !RESULT_CRATES.contains(&file.crate_name.as_str())
        || !matches!(file.role, FileRole::Library { .. })
        || FLOAT_FORMAT_ALLOWED_FILES.contains(&file.rel_path.as_str())
    {
        return;
    }
    let floats = local_float_idents(file);
    let toks = &file.tokens;

    // `.to_string()` on a float literal or known-float identifier.
    for (i, tok) in toks.iter().enumerate() {
        if file.in_test_code(tok.start) {
            continue;
        }
        let receiver_is_float = match tok.kind {
            TokKind::Float => true,
            TokKind::Ident => floats.contains(&tok.text(&file.text).to_string()),
            _ => false,
        };
        if receiver_is_float
            && punct_is(file, i + 1, ".")
            && ident_is(file, i + 2, "to_string")
            && punct_is(file, i + 3, "(")
        {
            out.push(finding(
                "float-format-via-codec",
                file,
                &toks[i],
                "float .to_string() outside the codec; floats reaching output \
                 documents must use the shortest-round-trip writer (json.rs)"
                    .to_string(),
            ));
        }
    }

    // Format macro calls.
    let mut i = 0;
    while i + 2 < toks.len() {
        let is_macro = toks[i].kind == TokKind::Ident
            && FORMAT_MACROS.contains(&toks[i].text(&file.text))
            && punct_is(file, i + 1, "!")
            && punct_is(file, i + 2, "(");
        if !is_macro || file.in_test_code(toks[i].start) {
            i += 1;
            continue;
        }
        let macro_tok = i;
        let name = toks[i].text(&file.text);
        // Collect tokens of the balanced (…) region and split depth-1 commas.
        let mut depth = 0i32;
        let mut args: Vec<Vec<usize>> = vec![Vec::new()];
        let mut j = i + 2;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text(&file.text) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "," if depth == 1 => {
                        args.push(Vec::new());
                        j += 1;
                        continue;
                    }
                    _ => {}
                }
            }
            if depth >= 1 && !(depth == 1 && t.text(&file.text) == "(" && j == i + 2) {
                args.last_mut().expect("non-empty").push(j);
            }
            j += 1;
        }
        let end = j;
        let mut arg_slices: Vec<&[usize]> = args.iter().map(Vec::as_slice).collect();
        if WRITER_FIRST.contains(&name) && !arg_slices.is_empty() {
            arg_slices.remove(0);
        }
        let Some(fmt_slice) = arg_slices.first().copied() else {
            i = end.max(i + 1);
            continue;
        };
        let fmt_tok = fmt_slice
            .iter()
            .map(|&k| &toks[k])
            .find(|t| t.kind == TokKind::Str);
        if let Some(fmt_tok) = fmt_tok {
            let positional: Vec<&[usize]> = arg_slices
                .iter()
                .skip(1)
                .filter(|s| !is_named_arg(file, s))
                .copied()
                .collect();
            let named: Vec<(&str, &[usize])> = arg_slices
                .iter()
                .skip(1)
                .filter(|s| is_named_arg(file, s))
                .map(|s| (toks[s[0]].text(&file.text), &s[2..]))
                .collect();
            check_placeholders(file, &floats, fmt_tok, &positional, &named, macro_tok, out);
        }
        i = end.max(i + 1);
    }
}

/// `name = expr` at the top level of a format arg.
fn is_named_arg(file: &SourceFile, slice: &[usize]) -> bool {
    slice.len() >= 3
        && file.tokens[slice[0]].kind == TokKind::Ident
        && punct_is(file, slice[1], "=")
        && !punct_is(file, slice[2], "=")
}

/// Everything the float heuristic can see in one expression slice.
fn expr_is_floatish(file: &SourceFile, floats: &[String], slice: &[usize]) -> bool {
    for (k, &idx) in slice.iter().enumerate() {
        let t = &file.tokens[idx];
        match t.kind {
            TokKind::Float => return true,
            TokKind::Ident => {
                let s = t.text(&file.text);
                if (s == "f64" || s == "f32") && k > 0 && ident_is(file, slice[k - 1], "as") {
                    return true;
                }
                if floats.contains(&s.to_string()) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Walks the placeholders of a format-string literal and flags float-ish ones.
#[allow(clippy::too_many_arguments)]
fn check_placeholders(
    file: &SourceFile,
    floats: &[String],
    fmt_tok: &Token,
    positional: &[&[usize]],
    named: &[(&str, &[usize])],
    macro_tok: usize,
    out: &mut Vec<Finding>,
) {
    let raw = fmt_tok.text(&file.text);
    // Strip the quotes (and any r#/b prefix) to get the literal body.
    let body = raw
        .trim_start_matches(['b', 'r', '#'])
        .trim_start_matches('"')
        .trim_end_matches('#')
        .trim_end_matches('"');
    let mut next_positional = 0usize;
    let bytes = body.as_bytes();
    let mut k = 0usize;
    while k < bytes.len() {
        if bytes[k] == b'{' {
            if bytes.get(k + 1) == Some(&b'{') {
                k += 2;
                continue;
            }
            let Some(close_rel) = body[k + 1..].find('}') else {
                break;
            };
            let inner = &body[k + 1..k + 1 + close_rel];
            k += close_rel + 2;
            let (arg_ref, spec) = match inner.split_once(':') {
                Some((a, s)) => (a, s),
                None => (inner, ""),
            };
            let precision_spec = spec_implies_float(spec);
            // Resolve the argument expression this placeholder formats.
            let floatish_arg = if arg_ref.is_empty() {
                let r = positional
                    .get(next_positional)
                    .is_some_and(|s| expr_is_floatish(file, floats, s));
                next_positional += 1;
                r
            } else if let Ok(pos) = arg_ref.parse::<usize>() {
                positional
                    .get(pos)
                    .is_some_and(|s| expr_is_floatish(file, floats, s))
            } else if let Some((_, s)) = named.iter().find(|(n, _)| *n == arg_ref) {
                expr_is_floatish(file, floats, s)
            } else {
                // Inline capture `{x}` / `{x:?}`.
                floats.contains(&arg_ref.to_string())
            };
            if floatish_arg || precision_spec {
                let why = if floatish_arg {
                    format!("placeholder {{{inner}}} formats a float-typed expression")
                } else {
                    format!(
                        "placeholder {{{inner}}} uses a precision/exponent spec \
                         (float formatting in practice)"
                    )
                };
                let t = &file.tokens[macro_tok];
                out.push(finding(
                    "float-format-via-codec",
                    file,
                    t,
                    format!(
                        "{why}; floats reaching output documents must use the \
                         shortest-round-trip writer (json.rs / campaign/codec.rs)"
                    ),
                ));
            }
        } else {
            k += 1;
        }
    }
}

/// Precision (`.3`, `.*`, `.prec$`) or exponent (`e`/`E` type) specs.
fn spec_implies_float(spec: &str) -> bool {
    if spec.ends_with('e') || spec.ends_with('E') {
        return true;
    }
    spec.find('.')
        .is_some_and(|dot| matches!(spec.as_bytes().get(dot + 1), Some(b'0'..=b'9') | Some(b'*')))
}

/// Identifiers declared with an explicit `: f64` / `: f32` in this file —
/// let bindings, fn params, and struct fields all match the same
/// `ident : f64` token triple.
fn local_float_idents(file: &SourceFile) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..file.tokens.len() {
        if file.tokens[i].kind == TokKind::Ident
            && punct_is(file, i + 1, ":")
            && !punct_is(file, i + 2, ":")
            && (ident_is(file, i + 2, "f64") || ident_is(file, i + 2, "f32"))
            && !punct_is(file, i + 3, ":")
        {
            let name = file.tokens[i].text(&file.text).to_string();
            if !out.contains(&name) {
                out.push(name);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: safety-comment
// ---------------------------------------------------------------------------

fn safety_comment(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text(&file.text) != "unsafe" {
            continue;
        }
        if has_safety_comment(file, i) {
            continue;
        }
        out.push(finding(
            "safety-comment",
            file,
            t,
            "unsafe without an immediately preceding // SAFETY: comment".to_string(),
        ));
    }
}

/// A comment containing `SAFETY:` either earlier on the same line as token
/// `i`, or in the contiguous comment-block on the lines directly above it
/// (no code lines in between).
fn has_safety_comment(file: &SourceFile, i: usize) -> bool {
    let tok = &file.tokens[i];
    // Same-line: any comment before this token on its line.
    for t in &file.tokens {
        if t.start >= tok.start {
            break;
        }
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
            && t.end_line(&file.text) == tok.line
            && t.text(&file.text).contains("SAFETY:")
        {
            return true;
        }
    }
    // Lines above: walk up while each line ends a comment token (attributes
    // between a SAFETY comment and the unsafe token are not bridged — the
    // comment must sit directly on top of the item).
    let mut line = tok.line;
    while line > 1 {
        line -= 1;
        let mut line_tokens = file
            .tokens
            .iter()
            .filter(|t| t.line <= line && t.end_line(&file.text) >= line)
            .peekable();
        if line_tokens.peek().is_none() {
            return false; // blank line breaks the block
        }
        let mut all_comments = true;
        let mut has_safety = false;
        for t in line_tokens {
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => {
                    if t.text(&file.text).contains("SAFETY:") {
                        has_safety = true;
                    }
                }
                _ => all_comments = false,
            }
        }
        if !all_comments {
            return false;
        }
        if has_safety {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: panic-policy
// ---------------------------------------------------------------------------

fn panic_policy(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.crate_name != "piccolo-io" || file.role != (FileRole::Library { is_bin: false }) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test_code(t.start) {
            continue;
        }
        let name = t.text(&file.text);
        let hit = match name {
            "unwrap" | "expect" => {
                i > 0 && punct_is(file, i - 1, ".") && punct_is(file, i + 1, "(")
            }
            "panic" => punct_is(file, i + 1, "!"),
            _ => false,
        };
        if hit {
            out.push(finding(
                "panic-policy",
                file,
                t,
                format!(
                    "{name} in piccolo-io library code; corrupt input must surface \
                     as a typed IoError, not a panic"
                ),
            ));
        }
    }
}
