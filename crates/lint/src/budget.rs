//! Parser for `lint-budget.toml` — the committed per-crate unsafe budget.
//!
//! The file is deliberately a tiny TOML subset (one `[unsafe-budget]` table of
//! `name = integer` pairs, `#` comments), parsed by hand like every other
//! format in this workspace; no TOML crate, no surprises.

use std::collections::BTreeMap;
use std::path::Path;

/// The committed per-crate `unsafe` token counts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Budget {
    entries: BTreeMap<String, usize>,
}

impl Budget {
    /// The budgeted count for `krate`, if listed.
    pub fn get(&self, krate: &str) -> Option<usize> {
        self.entries.get(krate).copied()
    }

    /// Crate names in the budget, sorted.
    pub fn crates(&self) -> impl Iterator<Item = &String> {
        self.entries.keys()
    }

    /// Parses the `[unsafe-budget]` table. Errors carry the offending line.
    pub fn parse(text: &str) -> Result<Budget, String> {
        let mut entries = BTreeMap::new();
        let mut in_section = false;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_section = line == "[unsafe-budget]";
                if !in_section && line.ends_with(']') {
                    continue;
                }
                if !line.ends_with(']') {
                    return Err(format!("line {}: malformed section header", n + 1));
                }
                continue;
            }
            if !in_section {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `crate = count`", n + 1));
            };
            let key = key.trim().trim_matches('"').to_string();
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("line {}: count is not an integer", n + 1))?;
            if entries.insert(key.clone(), count).is_some() {
                return Err(format!("line {}: duplicate entry for {key}", n + 1));
            }
        }
        if entries.is_empty() {
            return Err("no [unsafe-budget] entries found".to_string());
        }
        Ok(Budget { entries })
    }

    /// Reads and parses the budget file at `path`.
    pub fn load(path: &Path) -> Result<Budget, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_format() {
        let b = Budget::parse(
            "# per-crate unsafe counts\n[unsafe-budget]\npiccolo-io = 6\npiccolo-graph = 3 # ptr\n",
        )
        .unwrap();
        assert_eq!(b.get("piccolo-io"), Some(6));
        assert_eq!(b.get("piccolo-graph"), Some(3));
        assert_eq!(b.get("piccolo-algo"), None);
        assert_eq!(b.crates().count(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Budget::parse("[unsafe-budget]\npiccolo-io 6\n").is_err());
        assert!(Budget::parse("[unsafe-budget]\npiccolo-io = six\n").is_err());
        assert!(Budget::parse("[unsafe-budget]\na = 1\na = 2\n").is_err());
        assert!(Budget::parse("").is_err());
        assert!(Budget::parse("[other]\nx = 1\n").is_err());
    }
}
