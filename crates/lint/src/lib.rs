//! `piccolo-lint` — a workspace-wide determinism & safety analyzer.
//!
//! The workspace's core guarantee — byte-identical `results.json` across any
//! `--jobs` / `--intra-jobs` / shard / resume split — is protected after the
//! fact by property tests. This crate protects it *before* the fact: a
//! hand-rolled, comment- and string-aware Rust lexer ([`lexer`]) feeds a rule
//! catalog ([`rules`]) that statically rejects the classic regressions
//! (nondeterministic `HashMap` iteration in a result path, wall-clock reads
//! outside the profiler, lossy float formatting outside the codec, `unsafe`
//! without a safety argument, unbudgeted unsafe growth, panics in the typed
//! I/O error path).
//!
//! The offline stable-only toolchain rules out Miri and nightly sanitizers,
//! so — in the same spirit as the in-crate PRNG, JSON writer, and DEFLATE
//! inflater — the analysis lives in the workspace itself and runs in CI in
//! `--deny` mode.
//!
//! Diagnostics are `file:line:col: rule: message`; individual findings can be
//! waived with an inline `// lint: allow(rule-name, reason)` comment on the
//! same line or directly above (the reason is mandatory and audited). See
//! `docs/static-analysis.md` for the catalog and the how-to-add-a-rule
//! walkthrough.

#![forbid(unsafe_code)]

pub mod budget;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use budget::Budget;
pub use rules::{Finding, RuleInfo, RULES};
pub use source::SourceFile;
pub use workspace::{find_root, lint_workspace, LintReport};
