//! Workspace traversal: find every `.rs` file under a root, lex it, and run
//! the catalog. This is the library entry point the CLI, the self-tests, and
//! the CI meta-test all share.

use crate::budget::Budget;
use crate::rules::{check_file, check_unsafe_budget, rule_info, Finding};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Directories never descended into. `fixtures` holds the rule self-tests'
/// deliberate violations (under `crates/lint/tests/fixtures/`); the rest are
/// build/VCS artifacts.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures"];

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survived suppression, in path/line order.
    pub findings: Vec<Finding>,
    /// `(file, line, rule, reason)` of every applied suppression.
    pub suppressed: Vec<(String, u32, String, String)>,
    /// Number of files scanned.
    pub files: usize,
}

/// Recursively collects workspace-relative paths of every `.rs` file under
/// `root`, sorted for deterministic reports.
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip {}: {e}", path.display()))?;
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root` against `budget`.
///
/// Every per-file rule runs over every `.rs` file (each rule applies its own
/// scope), suppression comments are applied (and audited: an allow naming an
/// unknown rule or missing a reason is itself a finding), and the
/// workspace-level unsafe budget is checked last.
pub fn lint_workspace(root: &Path, budget: &Budget) -> Result<LintReport, String> {
    let rel_paths = collect_rs_files(root)?;
    let mut files = Vec::with_capacity(rel_paths.len());
    for rel in &rel_paths {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {}: {e}", rel.display()))?;
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::new(&rel_str, text));
    }
    let mut report = LintReport {
        files: files.len(),
        ..LintReport::default()
    };
    for file in &files {
        // Audit the suppression comments themselves first.
        for s in file.suppressions() {
            if rule_info(&s.rule).is_none() {
                report.findings.push(Finding {
                    rule: "unknown-suppression",
                    rel_path: file.rel_path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!("lint: allow names unknown rule '{}'", s.rule),
                });
            } else if s.reason.is_empty() {
                report.findings.push(Finding {
                    rule: "missing-suppression-reason",
                    rel_path: file.rel_path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "lint: allow({}) without a reason; write \
                         `// lint: allow({}, why)`",
                        s.rule, s.rule
                    ),
                });
            }
        }
        for f in check_file(file) {
            match file.suppressed(f.rule, f.line) {
                Some(s) => report.suppressed.push((
                    file.rel_path.clone(),
                    f.line,
                    s.rule.clone(),
                    s.reason.clone(),
                )),
                None => report.findings.push(f),
            }
        }
    }
    report.findings.extend(check_unsafe_budget(&files, budget));
    report
        .findings
        .sort_by(|a, b| (&a.rel_path, a.line, a.col).cmp(&(&b.rel_path, b.line, b.col)));
    Ok(report)
}

/// Finds the workspace root by walking up from `start` until a directory
/// containing `lint-budget.toml` (committed at the root) appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint-budget.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
