//! Clean fixture: binaries may unwrap at the CLI boundary.

fn main() {
    println!("{}", "7".parse::<u32>().unwrap());
}
