//! Clean fixture: test code may unwrap.

#[test]
fn parses() {
    assert_eq!("7".parse::<u32>().unwrap(), 7);
}
