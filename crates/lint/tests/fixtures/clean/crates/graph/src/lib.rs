//! Clean fixture: deterministic collections, budgeted unsafe, audited waiver.

use std::collections::BTreeMap;

/// A `BTreeMap` keeps iteration deterministic.
pub fn ordered() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

/// One budgeted `unsafe` with its safety argument.
pub fn first_byte(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees the slice is non-empty, so its base
    // pointer is valid to read.
    unsafe { *bytes.as_ptr() }
}

/// A waived HashMap mention, with the mandatory reason.
pub fn waived() -> usize {
    // lint: allow(no-hash-collections, fixture exercising an audited suppression)
    let m = std::collections::HashMap::<u32, u32>::new();
    m.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_collections_are_fine_in_tests() {
        let m = std::collections::HashMap::<u32, u32>::new();
        assert_eq!(m.len(), 0);
    }
}
