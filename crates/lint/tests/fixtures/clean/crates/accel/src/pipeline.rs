//! Clean fixture: the phase-profiler allowlist admits wall-clock reads here.

pub fn profile() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
