//! Clean fixture: the codec files are the one place floats may be formatted.

pub fn fmt(x: f64) -> String {
    format!("{x:.17}")
}
