//! Clean fixture: the bench harness may read clocks and format floats.

pub fn timed() -> String {
    let start = std::time::Instant::now();
    let secs: f64 = start.elapsed().as_secs_f64();
    format!("{secs:.3}")
}
