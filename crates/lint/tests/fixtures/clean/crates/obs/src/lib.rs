//! Clean fixture: piccolo-obs owns event timestamps, so wall-clock reads are
//! allowed crate-wide (they only ever flow OUT into obs artifacts).

pub fn now_ns() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
