//! Violation fixture: a driver-crate eprintln bypassing the obs stderr sink.

pub fn report(msg: &str) {
    eprintln!("bench: {msg}");
}
