//! Violation fixture: nondeterministic map in a result-producing crate.

pub fn lookup() -> usize {
    let m = std::collections::HashMap::<u32, u32>::new();
    m.len()
}
