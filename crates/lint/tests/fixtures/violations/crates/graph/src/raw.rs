//! Violation fixture: `unsafe` without a SAFETY comment (also over budget).

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
