//! Violation fixture: parallel.rs is no longer on the wall-clock allowlist.

pub fn profile() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
