//! Violation fixture: panic in the typed-IoError crate.

pub fn must_parse(s: &str) -> u32 {
    s.parse().unwrap()
}
