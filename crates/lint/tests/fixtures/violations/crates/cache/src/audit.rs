//! Violation fixture: suppression audit — unknown rule name, missing reason.

pub fn noop() {
    // lint: allow(totally-made-up-rule, the rule name is wrong on purpose)
    // lint: allow(no-hash-collections)
}
