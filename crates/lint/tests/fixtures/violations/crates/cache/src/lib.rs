//! Violation fixture: wall-clock read and float formatting in a result crate.

pub fn stamp() -> String {
    let t = std::time::Instant::now();
    let secs: f64 = t.elapsed().as_secs_f64();
    format!("{secs:.3}")
}
