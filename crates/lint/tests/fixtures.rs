//! Rule self-tests over the fixture trees in `tests/fixtures/`, plus the
//! meta-test that the real workspace lints clean.
//!
//! Each tree is a miniature workspace (a `lint-budget.toml` plus `crates/*/src`
//! files) driven through the same [`lint_workspace`] entry point the CLI uses,
//! so these tests cover the directory walker, the suppression audit, and every
//! rule's positive (`violations/`) and negative (`clean/`) case.

use piccolo_lint::{lint_workspace, Budget, LintReport};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_tree(root: &Path) -> LintReport {
    let budget = Budget::load(&root.join("lint-budget.toml")).unwrap();
    lint_workspace(root, &budget).unwrap()
}

#[test]
fn violations_tree_trips_every_rule_at_the_exact_location() {
    let report = lint_tree(&fixture_root("violations"));
    let got: Vec<(&str, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.rel_path.as_str(), f.line))
        .collect();
    let expected: Vec<(&str, &str, u32)> = vec![
        ("no-wall-clock", "crates/accel/src/parallel.rs", 4),
        ("no-bare-eprintln", "crates/bench/src/lib.rs", 4),
        ("unknown-suppression", "crates/cache/src/audit.rs", 4),
        ("missing-suppression-reason", "crates/cache/src/audit.rs", 5),
        ("no-wall-clock", "crates/cache/src/lib.rs", 4),
        ("float-format-via-codec", "crates/cache/src/lib.rs", 6),
        ("no-hash-collections", "crates/graph/src/lib.rs", 4),
        ("safety-comment", "crates/graph/src/raw.rs", 4),
        ("panic-policy", "crates/io/src/lib.rs", 4),
        ("unsafe-budget", "lint-budget.toml", 1),
    ];
    assert_eq!(got, expected, "full report: {:#?}", report.findings);
    assert!(report.suppressed.is_empty());
}

#[test]
fn violations_are_reported_with_file_line_col_diagnostics() {
    let report = lint_tree(&fixture_root("violations"));
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    // `HashMap` starts at column 31 of `    let m = std::collections::HashMap...`.
    assert!(
        rendered
            .iter()
            .any(|l| l.starts_with("crates/graph/src/lib.rs:4:31: no-hash-collections:")),
        "diagnostics: {rendered:#?}"
    );
}

#[test]
fn clean_tree_is_silent_and_audits_the_one_waiver() {
    let report = lint_tree(&fixture_root("clean"));
    assert_eq!(
        report.findings,
        vec![],
        "the clean tree must produce no findings"
    );
    assert_eq!(report.suppressed.len(), 1);
    let (file, line, rule, reason) = &report.suppressed[0];
    assert_eq!(file, "crates/graph/src/lib.rs");
    assert_eq!(*line, 21);
    assert_eq!(rule, "no-hash-collections");
    assert_eq!(reason, "fixture exercising an audited suppression");
}

#[test]
fn the_real_workspace_lints_clean() {
    // CARGO_MANIFEST_DIR is crates/lint; two levels up is the repository root.
    // This is the same invariant CI enforces with `piccolo-lint --deny`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let budget = Budget::load(&root.join("lint-budget.toml")).unwrap();
    let report = lint_workspace(&root, &budget).unwrap();
    assert_eq!(
        report.findings,
        vec![],
        "the committed workspace must lint clean; fix the finding or add an \
         audited `// lint: allow(rule, reason)`"
    );
    assert!(
        report.files > 50,
        "walker found only {} files",
        report.files
    );
}
